"""Bug-carrying workload variants for section 6.4's sanitizer validation.

Four seeded real-world bugs, one per validated finding in the paper:

* ``memcached_tls_leak`` — memcached issue #538: SSL objects leaked on
  connection teardown (SSLSan leak report at program exit);
* ``memcached_tls_shutdown`` — memcached thread.c misuse: SSL_free
  before the shutdown handshake completes;
* ``nginx_tls_shutdown`` — the nginx "SSL: fixed shutdown handling" bug;
* ``ffmpeg_zstream`` — FFmpeg commit d1487659: an uninitialized
  ``z_stream`` driven through ``inflate``.

Clean TLS/zlib twins (``*_ok``) verify the sanitizers stay silent on
correct library usage.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.libssl import SSLLibrary
from repro.workloads.libzlib import ZLibrary
from repro.workloads.realworld import build_ffmpeg, build_memcached, build_nginx


def _ssl_externs():
    return SSLLibrary().externs()


def _zlib_externs():
    return ZLibrary().externs()


WORKLOADS = {
    "memcached_tls_leak": Workload(
        "memcached_tls_leak", "bugs",
        lambda scale=1: build_memcached(scale, tls=True, leak_bug=True),
        threads=4, extern_factory=_ssl_externs,
        notes="memcached issue #538: TLS termination leaks SSL objects",
    ),
    "memcached_tls_shutdown": Workload(
        "memcached_tls_shutdown", "bugs",
        lambda scale=1: build_memcached(scale, tls=True, shutdown_bug=True),
        threads=4, extern_factory=_ssl_externs,
        notes="memcached thread.c: SSL_free without completed shutdown",
    ),
    "memcached_tls_ok": Workload(
        "memcached_tls_ok", "bugs",
        lambda scale=1: build_memcached(scale, tls=True),
        threads=4, extern_factory=_ssl_externs,
        notes="correct TLS usage: SSLSan must stay silent",
    ),
    "nginx_tls_shutdown": Workload(
        "nginx_tls_shutdown", "bugs",
        lambda scale=1: build_nginx(scale, tls=True, shutdown_bug=True),
        threads=4, extern_factory=_ssl_externs,
        notes="nginx e01cdfbd: shutdown handling misuse",
    ),
    "nginx_tls_ok": Workload(
        "nginx_tls_ok", "bugs",
        lambda scale=1: build_nginx(scale, tls=True),
        threads=4, extern_factory=_ssl_externs,
        notes="correct TLS usage: SSLSan must stay silent",
    ),
    "ffmpeg_zstream": Workload(
        "ffmpeg_zstream", "bugs",
        lambda scale=1: build_ffmpeg(scale, zbug=True),
        threads=4, extern_factory=_zlib_externs,
        notes="FFmpeg d1487659: uninitialized z_stream inflate",
    ),
    "ffmpeg_zlib_ok": Workload(
        "ffmpeg_zlib_ok", "bugs",
        lambda scale=1: build_ffmpeg(scale),
        threads=4, extern_factory=_zlib_externs,
        notes="correct zlib usage: ZlibSan must stay silent",
    ),
}
