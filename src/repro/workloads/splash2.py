"""Splash2-like two-thread kernels.

Each kernel reproduces its namesake's sharing pattern: disjoint-slice
writes over shared read-only inputs (fft, lu, raytrace), mutex-merged
private histograms (radix), dynamic work queues under a lock (cholesky,
radiosity), lock-heavy accumulation (water_ns), and stencil sweeps
(ocean).  barnes/fmm read startup parameters through ``gets`` (the
Table 3 MSan false-positive sites); ocean/volrend carry genuine seeded
uninitialized reads at the paper's reported locations.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.workloads.base import Workload, array_at, fill_random, mark_loc


def _finish_main(b: IRBuilder, tid_reg: str) -> None:
    b.call("join", [tid_reg], void=True)
    b.ret(0)


def build_fft(scale: int = 1) -> Module:
    """Butterfly passes: strided reads of a shared source, split output."""
    n = 256 * scale
    half = n // 2
    b = IRBuilder(Module("fft"))
    b.module.add_global("sum_lock", 64)
    b.module.add_global("total", 8)

    b.function("fft_worker", ["src", "dst", "start", "count"])
    with b.loop("count") as i:
        index = b.add("start", i)
        partner = b.rem(b.add(index, half), n)
        even = b.load(array_at(b, "src", index))
        odd = b.load(array_at(b, "src", partner))
        b.store(b.add(even, odd), array_at(b, "dst", index))
    lock = b.global_addr("sum_lock")
    total = b.global_addr("total")
    b.call("mutex_lock", [lock], void=True)
    running = b.load(total)
    first = b.load(array_at(b, "dst", "start"))
    b.store(b.add(running, first), total)
    b.call("mutex_unlock", [lock], void=True)
    b.ret(0)

    b.function("main")
    src = b.call("malloc", [n * 8])
    dst = b.call("malloc", [n * 8])
    fill_random(b, src, n)
    total = b.global_addr("total")
    b.store(0, total)
    child = b.call("spawn$fft_worker", [src, dst, half, half])
    b.call("fft_worker", [src, dst, 0, half], void=True)
    _finish_main(b, child)
    return b.module


def _build_lu(name: str, contiguous: bool, scale: int) -> Module:
    """Blocked LU elimination; the _nc variant walks columns (strided)."""
    dim = 20 + 4 * scale
    b = IRBuilder(Module(name))

    b.function("lu_worker", ["matrix", "row_start", "row_count"])
    with b.loop("row_count") as r:
        row = b.add("row_start", r)
        with b.loop(dim - 1) as k:
            if contiguous:
                index = b.add(b.mul(row, dim), k)
            else:
                index = b.add(b.mul(k, dim), row)  # column-major: strided
            pivot = b.load(array_at(b, "matrix", k))  # shared pivot row/col
            cell = b.load(array_at(b, "matrix", index))
            factor = b.and_(pivot, 15)
            b.store(b.sub(cell, b.mul(factor, 3)), array_at(b, "matrix", index))
    b.ret(0)

    b.function("main")
    matrix = b.call("malloc", [dim * dim * 8])
    fill_random(b, matrix, dim * dim)
    half = dim // 2
    child = b.call("spawn$lu_worker", [matrix, half, dim - half])
    b.call("lu_worker", [matrix, 1, half - 1], void=True)
    _finish_main(b, child)
    return b.module


def build_lu_c(scale: int = 1) -> Module:
    return _build_lu("lu_c", True, scale)


def build_lu_nc(scale: int = 1) -> Module:
    return _build_lu("lu_nc", False, scale)


def build_radix(scale: int = 1) -> Module:
    """Radix sort pass: private histograms merged under a mutex."""
    n = 300 * scale
    buckets = 16
    b = IRBuilder(Module("radix"))
    b.module.add_global("hist_lock", 64)

    b.function("radix_worker", ["keys", "shared_hist", "start", "count"])
    private = b.call("calloc", [buckets, 8])
    with b.loop("count") as i:
        key = b.load(array_at(b, "keys", b.add("start", i)))
        bucket = b.and_(key, buckets - 1)
        slot = array_at(b, private, bucket)
        b.store(b.add(b.load(slot), 1), slot)
    lock = b.global_addr("hist_lock")
    b.call("mutex_lock", [lock], void=True)
    with b.loop(buckets) as j:
        mine = b.load(array_at(b, private, j))
        shared = array_at(b, "shared_hist", j)
        b.store(b.add(b.load(shared), mine), shared)
    b.call("mutex_unlock", [lock], void=True)
    b.call("free", [private], void=True)
    b.ret(0)

    b.function("main")
    keys = b.call("malloc", [n * 8])
    hist = b.call("calloc", [buckets, 8])
    fill_random(b, keys, n)
    half = n // 2
    child = b.call("spawn$radix_worker", [keys, hist, half, n - half])
    b.call("radix_worker", [keys, hist, 0, half], void=True)
    b.call("join", [child], void=True)
    # Prefix-sum the merged histogram (single-threaded).
    with b.loop(buckets - 1) as j:
        here = array_at(b, hist, b.add(j, 1))
        prev = b.load(array_at(b, hist, j))
        b.store(b.add(b.load(here), prev), here)
    b.ret(0)
    return b.module


def build_cholesky(scale: int = 1) -> Module:
    """Triangular factorization with a lock-guarded dynamic column queue."""
    dim = 16 + 2 * scale
    b = IRBuilder(Module("cholesky"))
    b.module.add_global("queue_lock", 64)
    b.module.add_global("next_col", 8)

    b.function("chol_worker", ["matrix"])
    lock = b.global_addr("queue_lock")
    counter = b.global_addr("next_col")
    with b.loop(dim):  # at most dim attempts each
        b.call("mutex_lock", [lock], void=True)
        col = b.load(counter)
        b.store(b.add(col, 1), counter)
        b.call("mutex_unlock", [lock], void=True)
        in_range = b.cmp("lt", col, dim)
        with b.if_then(in_range):
            with b.loop(dim - 1) as r:
                index = b.add(b.mul(r, dim), col)
                diag = b.load(array_at(b, "matrix", b.mul(col, dim + 1)))
                cell = b.load(array_at(b, "matrix", index))
                b.store(b.sub(cell, b.and_(diag, 7)), array_at(b, "matrix", index))
    b.ret(0)

    b.function("main")
    matrix = b.call("malloc", [dim * dim * 8])
    fill_random(b, matrix, dim * dim)
    counter = b.global_addr("next_col")
    b.store(0, counter)
    child = b.call("spawn$chol_worker", [matrix])
    b.call("chol_worker", [matrix], void=True)
    _finish_main(b, child)
    return b.module


def _build_nbody(name: str, gets_loc: str, scale: int) -> Module:
    """Shared n-body pattern for barnes/fmm: gets-read params, force loop.

    The startup parameter is read with ``gets`` — LLVM MSan (hand-tuned
    baseline) lacks a gets interceptor, so branching on the parsed
    parameter is its Table 3 false positive; ALDA MSan intercepts gets
    and stays quiet.
    """
    bodies = 48 * scale
    b = IRBuilder(Module(name))

    b.function("force_worker", ["pos", "force", "start", "count"])
    with b.loop("count") as i:
        me = b.add("start", i)
        acc_slot = b.alloca(8)
        b.store(0, acc_slot)
        with b.loop(bodies) as j:
            other = b.load(array_at(b, "pos", j))
            mine = b.load(array_at(b, "pos", me))
            dist = b.and_(b.sub(other, mine), 1023)
            nonzero = b.cmp("ne", dist, 0)
            with b.if_then(nonzero):
                acc = b.load(acc_slot)
                b.store(b.add(acc, dist), acc_slot)
        b.store(b.load(acc_slot), array_at(b, "force", me))
    b.ret(0)

    b.function("main")
    # Parameter parsing via gets (the interception-gap site).
    param_buf = b.call("malloc", [16])
    b.call("gets", [param_buf], void=True)
    param = b.load(param_buf)
    use_quad = b.cmp("ne", b.and_(param, 1), 0)
    with b.if_then(use_quad, loc=gets_loc):
        b.call("puts", [param_buf], void=True)

    pos = b.call("malloc", [bodies * 8])
    force = b.call("malloc", [bodies * 8])
    fill_random(b, pos, bodies)
    half = bodies // 2
    child = b.call("spawn$force_worker", [pos, force, half, bodies - half])
    b.call("force_worker", [pos, force, 0, half], void=True)
    _finish_main(b, child)
    return b.module


def build_barnes(scale: int = 1) -> Module:
    return _build_nbody("barnes", "getparam.c:53", scale)


def build_fmm(scale: int = 1) -> Module:
    return _build_nbody("fmm", "fmm.c:313", scale)


def build_ocean(scale: int = 1) -> Module:
    """Grid stencil sweep with a genuinely uninitialized interior cell.

    The red-black init loop skips one cell (the seeded multi.c:261 bug);
    the residual check reads it and branches — a true MSan positive.
    """
    dim = 18 + 2 * scale
    b = IRBuilder(Module("ocean"))

    b.function("ocean_worker", ["grid", "row_start", "row_count"])
    with b.loop("row_count") as r:
        row = b.add("row_start", r)
        with b.loop(dim - 2) as c:
            col = b.add(c, 1)
            index = b.add(b.mul(row, dim), col)
            north = b.load(array_at(b, "grid", b.sub(index, dim)))
            west = b.load(array_at(b, "grid", b.sub(index, 1)))
            b.store(b.add(b.and_(north, 255), b.and_(west, 255)),
                    array_at(b, "grid", index))
    b.ret(0)

    b.function("main")
    grid = b.call("malloc", [dim * dim * 8])
    # Initialize every cell EXCEPT one boundary cell the sweep never
    # writes (row 0 is read-only for the stencil): the seeded bug.
    skip = 5
    with b.loop(dim * dim) as i:
        hit = b.cmp("ne", i, skip)
        with b.if_then(hit):
            b.store(b.and_(b.call("rand"), 255), array_at(b, grid, i))
    half = (dim - 2) // 2
    child = b.call("spawn$ocean_worker", [grid, 1 + half, dim - 2 - half])
    b.call("ocean_worker", [grid, 1, half], void=True)
    b.call("join", [child], void=True)
    # Residual check touches the uninitialized cell and branches on it.
    residual = b.load(array_at(b, grid, skip))
    mark_loc(b, "multi.c:261")
    diverged = b.cmp("gt", residual, 100000)
    with b.if_then(diverged, loc="multi.c:261"):
        b.call("puts", [grid], void=True)
    b.ret(0)
    return b.module


def build_raytrace(scale: int = 1) -> Module:
    """Per-ray independent traversal of a shared read-only scene."""
    spheres = 24
    rays = 120 * scale
    b = IRBuilder(Module("raytrace"))

    b.function("trace_worker", ["scene", "image", "start", "count"])
    with b.loop("count") as i:
        ray = b.add("start", i)
        hit_slot = b.alloca(8)
        b.store(0, hit_slot)
        with b.loop(spheres) as s:
            center = b.load(array_at(b, "scene", s))
            d = b.and_(b.sub(center, b.mul(ray, 17)), 127)
            near = b.cmp("lt", d, 9)
            with b.if_then(near):
                b.store(b.add(b.load(hit_slot), 1), hit_slot)
        b.store(b.load(hit_slot), array_at(b, "image", ray))
    b.ret(0)

    b.function("main")
    scene = b.call("malloc", [spheres * 8])
    image = b.call("malloc", [rays * 8])
    fill_random(b, scene, spheres)
    half = rays // 2
    child = b.call("spawn$trace_worker", [scene, image, half, rays - half])
    b.call("trace_worker", [scene, image, 0, half], void=True)
    _finish_main(b, child)
    return b.module


def build_water_ns(scale: int = 1) -> Module:
    """Molecular pair forces with lock-guarded shared accumulation."""
    mols = 20 + 4 * scale
    b = IRBuilder(Module("water_ns"))
    b.module.add_global("force_lock", 64)

    b.function("water_worker", ["pos", "forces", "start", "count"])
    lock = b.global_addr("force_lock")
    with b.loop("count") as i:
        me = b.add("start", i)
        with b.loop(mols) as j:
            different = b.cmp("ne", me, j)
            with b.if_then(different):
                a = b.load(array_at(b, "pos", me))
                c = b.load(array_at(b, "pos", j))
                f = b.and_(b.sub(a, c), 63)
                b.call("mutex_lock", [lock], void=True)
                mine = array_at(b, "forces", me)
                b.store(b.add(b.load(mine), f), mine)
                theirs = array_at(b, "forces", j)
                b.store(b.sub(b.load(theirs), f), theirs)
                b.call("mutex_unlock", [lock], void=True)
    b.ret(0)

    b.function("main")
    pos = b.call("malloc", [mols * 8])
    forces = b.call("calloc", [mols, 8])
    fill_random(b, pos, mols)
    half = mols // 2
    child = b.call("spawn$water_worker", [pos, forces, half, mols - half])
    b.call("water_worker", [pos, forces, 0, half], void=True)
    _finish_main(b, child)
    return b.module


def build_volrend(scale: int = 1) -> Module:
    """Volume ray casting with one uninitialized boundary voxel."""
    side = 12 + scale * 2
    rays = 60 * scale
    b = IRBuilder(Module("volrend"))

    b.function("vol_worker", ["volume", "out", "start", "count"])
    with b.loop("count") as i:
        ray = b.add("start", i)
        sample_slot = b.alloca(8)
        b.store(0, sample_slot)
        with b.loop(side) as step:
            # Sample everywhere except the last (uninitialized) voxel, so
            # the only uninitialized read is the seeded one in main.
            index = b.rem(b.add(b.mul(ray, 31), b.mul(step, 7)), side * side - 1)
            voxel = b.load(array_at(b, "volume", index))
            opaque = b.cmp("gt", b.and_(voxel, 255), 200)
            with b.if_then(opaque):
                b.store(b.add(b.load(sample_slot), 1), sample_slot)
        b.store(b.load(sample_slot), array_at(b, "out", ray))
    b.ret(0)

    b.function("main")
    volume = b.call("malloc", [side * side * 8])
    out = b.call("malloc", [rays * 8])
    # Initialize all but the last voxel (seeded main.c:503 bug).
    fill_random(b, volume, side * side - 1)
    half = rays // 2
    child = b.call("spawn$vol_worker", [volume, out, half, rays - half])
    b.call("vol_worker", [volume, out, 0, half], void=True)
    b.call("join", [child], void=True)
    # The shading pass reads the uninitialized boundary voxel.
    boundary = b.load(array_at(b, volume, side * side - 1))
    mark_loc(b, "main.c:503")
    bright = b.cmp("gt", b.and_(boundary, 255), 128)
    with b.if_then(bright, loc="main.c:503"):
        b.call("puts", [out], void=True)
    b.ret(0)
    return b.module


def build_radiosity(scale: int = 1) -> Module:
    """Task-queue patch interactions: lock-guarded work index."""
    patches = 48 * scale
    b = IRBuilder(Module("radiosity"))
    b.module.add_global("task_lock", 64)
    b.module.add_global("next_task", 8)

    b.function("rad_worker", ["energy", "result"])
    lock = b.global_addr("task_lock")
    counter = b.global_addr("next_task")
    with b.loop(patches):
        b.call("mutex_lock", [lock], void=True)
        task = b.load(counter)
        b.store(b.add(task, 1), counter)
        b.call("mutex_unlock", [lock], void=True)
        in_range = b.cmp("lt", task, patches)
        with b.if_then(in_range):
            gathered_slot = b.alloca(8)
            b.store(0, gathered_slot)
            with b.loop(8) as j:
                other = b.rem(b.add(task, b.mul(j, 5)), patches)
                e = b.load(array_at(b, "energy", other))
                b.store(b.add(b.load(gathered_slot), b.and_(e, 31)), gathered_slot)
            b.store(b.load(gathered_slot), array_at(b, "result", task))
    b.ret(0)

    b.function("main")
    energy = b.call("malloc", [patches * 8])
    result = b.call("calloc", [patches, 8])
    fill_random(b, energy, patches)
    counter = b.global_addr("next_task")
    b.store(0, counter)
    child = b.call("spawn$rad_worker", [energy, result])
    b.call("rad_worker", [energy, result], void=True)
    _finish_main(b, child)
    return b.module


WORKLOADS = {
    "fft": Workload("fft", "splash2", build_fft, threads=2),
    "lu_c": Workload("lu_c", "splash2", build_lu_c, threads=2),
    "lu_nc": Workload("lu_nc", "splash2", build_lu_nc, threads=2),
    "radix": Workload("radix", "splash2", build_radix, threads=2),
    "cholesky": Workload("cholesky", "splash2", build_cholesky, threads=2),
    "barnes": Workload(
        "barnes", "splash2", build_barnes, threads=2,
        notes="gets-read param: LLVM MSan false positive at getparam.c:53",
    ),
    "fmm": Workload(
        "fmm", "splash2", build_fmm, threads=2,
        notes="gets-read param: LLVM MSan false positive at fmm.c:313",
    ),
    "ocean": Workload(
        "ocean", "splash2", build_ocean, threads=2,
        notes="seeded uninitialized read at multi.c:261 (Table 3)",
    ),
    "raytrace": Workload("raytrace", "splash2", build_raytrace, threads=2),
    "water_ns": Workload("water_ns", "splash2", build_water_ns, threads=2),
    "volrend": Workload(
        "volrend", "splash2", build_volrend, threads=2,
        notes="seeded uninitialized read at main.c:503 (Table 3)",
    ),
    "radiosity": Workload("radiosity", "splash2", build_radiosity, threads=2),
}
