"""Simulated OpenSSL API surface (DESIGN.md substitution for §6.4.1).

SSLSan only observes the library *call boundary*, so this model keeps
just enough state for faithful call semantics: object allocation from
the simulated heap (objects get real addresses — the sanitizer keys its
metadata on them), a two-step ``SSL_shutdown`` handshake (returns 0
after sending close_notify, 1 once the peer's arrives), and I/O that
moves real bytes through simulated memory with realistic cycle costs.

The library itself is *tolerant* of misuse (free-without-shutdown just
works, leaks just leak) — detecting misuse is SSLSan's job, exactly as
with the real libraries in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Set


class SSLLibrary:
    """One run's OpenSSL state; create a fresh instance per VM."""

    def __init__(self) -> None:
        self.contexts: Set[int] = set()
        self.sessions: Dict[int, dict] = {}
        self.bytes_moved = 0

    # -- lifecycle ---------------------------------------------------------
    def ctx_new(self, vm, thread, args) -> int:
        vm.profile.base_cycles += 400
        ctx = vm.heap.malloc(96)
        self.contexts.add(ctx)
        return ctx

    def ctx_free(self, vm, thread, args) -> int:
        vm.profile.base_cycles += 100
        self.contexts.discard(args[0])
        return 0

    def ssl_new(self, vm, thread, args) -> int:
        vm.profile.base_cycles += 300
        ssl = vm.heap.malloc(160)
        self.sessions[ssl] = {"shutdown": 0, "freed": False}
        return ssl

    def ssl_free(self, vm, thread, args) -> int:
        vm.profile.base_cycles += 120
        session = self.sessions.get(args[0])
        if session is not None:
            session["freed"] = True
        return 0

    def ssl_accept(self, vm, thread, args) -> int:
        vm.profile.base_cycles += 600  # handshake
        return 1

    # -- I/O -------------------------------------------------------------
    def ssl_read(self, vm, thread, args) -> int:
        ssl, buf, n = args
        vm.profile.base_cycles += 80 + n // 8
        for offset in range(0, n, 8):
            vm.mem_write(buf + offset, vm.rand(), min(8, n - offset))
        self.bytes_moved += n
        return n

    def ssl_write(self, vm, thread, args) -> int:
        ssl, buf, n = args
        vm.profile.base_cycles += 80 + n // 8
        for offset in range(0, n, 8):
            vm.mem_read(buf + offset, min(8, n - offset))
        self.bytes_moved += n
        return n

    # -- shutdown handshake -------------------------------------------------
    def ssl_shutdown(self, vm, thread, args) -> int:
        """First call: close_notify sent (0).  Second: peer's seen (1)."""
        vm.profile.base_cycles += 150
        session = self.sessions.get(args[0])
        if session is None:
            return 0
        session["shutdown"] += 1
        return 1 if session["shutdown"] >= 2 else 0

    def externs(self) -> Dict[str, Callable]:
        return {
            "SSL_CTX_new": self.ctx_new,
            "SSL_CTX_free": self.ctx_free,
            "SSL_new": self.ssl_new,
            "SSL_free": self.ssl_free,
            "SSL_accept": self.ssl_accept,
            "SSL_read": self.ssl_read,
            "SSL_write": self.ssl_write,
            "SSL_shutdown": self.ssl_shutdown,
        }
