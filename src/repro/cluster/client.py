"""Cluster-aware client: ring routing, failover, healing, replication.

:class:`ClusterClient` exposes the same ``submit_digest_first`` surface
as :class:`repro.serve.ServeClient`, so everything built on that —
``run_jobs``, the harness (``figureN(cluster=)``), the load generator —
works against a shard ring unchanged.  Per request it:

1. routes the trace digest through the consistent-hash ring to its
   replica set (``R`` distinct shards, ring order);
2. tries each replica in turn behind that shard's own retry policy and
   circuit breaker (:mod:`repro.serve.resilience`), failing over on
   transport errors, ``BUSY``/draining backpressure, and open breakers;
3. heals digest-first: a shard answering ``UNKNOWN_TRACE`` gets the
   trace bytes re-uploaded immediately (the same self-repair a corrupt
   or quarantined entry triggers on a single daemon);
4. replicates writes: a freshly uploaded trace is pushed to the other
   replicas (``PUT_TRACE``), and a freshly *computed* result record is
   pushed into their result caches (``PUT_RESULT``) — best-effort, so a
   dead replica costs redundancy, never availability.

Cluster fault points (:mod:`repro.faultline`) are checked on the client
edge: ``cluster.net.partition`` makes one shard unreachable for one
attempt, ``cluster.replica.slow`` delays it.  Both are routed through
the normal failover path, which is the point — chaos proves the path.

A typed :class:`ClusterUnavailable` (a :class:`RetriesExhausted`
subclass, so existing handlers classify it as unavailability) surfaces
only when *every* replica failed transiently.  Deterministic failures
(``UNKNOWN_SPEC``, ``ANALYSIS_ERROR``) are raised immediately — every
shard would answer the same.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import faultline
from repro.serve import protocol
from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServeError,
    ServerBusy,
)
from repro.serve.config import ResilienceConfig

from repro.cluster.membership import Membership, Shard

#: Shard-client posture: few in-place retries, quick breaker — the
#: cluster layer prefers failing over to a replica in milliseconds to
#: retrying a sick shard for seconds.
SHARD_RESILIENCE = ResilienceConfig(
    max_attempts=2,
    backoff_base=0.02,
    backoff_max=0.2,
    retry_budget=2.0,
    breaker_threshold=3,
    breaker_reset=1.0,
)

#: ERROR codes that justify trying the next replica (the shard answered,
#: but another shard may serve).  Anything else deterministic fails the
#: request on every replica equally, so it surfaces immediately.
FAILOVER_CODES = ("SHUTTING_DOWN", "TIMEOUT", "WORKER_CRASH")


class ClusterError(ServeError):
    """Base class for cluster-level failures."""


class NoShardsError(ClusterError):
    """The membership has no shard marked up."""


class ClusterUnavailable(RetriesExhausted, ClusterError):
    """Every replica for a digest failed transiently.

    Subclasses :class:`RetriesExhausted` so callers that already treat
    retry exhaustion as typed unavailability (loadgen, chaos) classify
    cluster exhaustion the same way.
    """

    def __init__(self, digest: str,
                 shard_errors: Sequence[Tuple[str, BaseException]]) -> None:
        self.shard_errors = list(shard_errors)
        self.attempts = len(self.shard_errors)
        self.last_error = (self.shard_errors[-1][1]
                           if self.shard_errors else None)
        detail = "; ".join(
            f"{name}: {type(exc).__name__}" for name, exc in self.shard_errors
        )
        ServeError.__init__(
            self,
            f"no replica served digest {digest[:16]}... "
            f"({self.attempts} shard(s) failed: {detail or 'no shards up'})",
        )


class ClusterClient:
    """Digest-routed client over a shard ring; one instance per thread."""

    def __init__(self,
                 membership: Union[str, Path, Membership, Sequence[str]],
                 replication: Optional[int] = None,
                 resilience: Optional[ResilienceConfig] = SHARD_RESILIENCE,
                 timeout: float = 300.0,
                 retry_seed: Optional[int] = None,
                 replicate_writes: bool = True) -> None:
        self._membership_path: Optional[Path] = None
        self._membership_stamp: Optional[Tuple[float, int]] = None
        if isinstance(membership, (str, Path)):
            self._membership_path = Path(membership)
            membership = Membership.load(self._membership_path)
            self._membership_stamp = self._stat_stamp()
        elif not isinstance(membership, Membership):
            # bare address list: synthesize a roster, names = addresses
            membership = Membership(
                shards=[Shard(name=addr, address=addr) for addr in membership]
            )
        self.membership = membership
        self.replication = replication or membership.replication
        self.resilience = resilience
        self.timeout = timeout
        self._retry_seed = retry_seed
        self.replicate_writes = replicate_writes
        self._ring = membership.ring()
        self._clients: Dict[str, ServeClient] = {}
        self._lock = threading.Lock()
        #: aggregated view of the per-shard clients' retry counters
        self.retry_stats = {
            "attempts": 0, "retries": 0, "busy_retried": 0,
            "transport_retried": 0, "code_retried": 0, "breaker_rejections": 0,
        }
        #: cluster-layer counters, merged into loadgen/chaos reports
        self.cluster_stats = {
            "requests": 0, "failovers": 0, "healed_uploads": 0,
            "traces_replicated": 0, "results_replicated": 0,
            "replication_failures": 0, "partitions_injected": 0,
            "slow_replicas_injected": 0, "membership_reloads": 0,
        }
        #: requests served per shard name
        self.per_shard: Dict[str, int] = {}

    # -- membership / ring ---------------------------------------------
    def _stat_stamp(self) -> Optional[Tuple[float, int]]:
        try:
            stat = self._membership_path.stat()
        except OSError:
            return None
        return (stat.st_mtime, stat.st_size)

    def _maybe_reload(self) -> None:
        """Re-read the membership file when it changed on disk."""
        if self._membership_path is None:
            return
        stamp = self._stat_stamp()
        if stamp is None or stamp == self._membership_stamp:
            return
        try:
            membership = Membership.load(self._membership_path)
        except (OSError, ValueError):
            return  # torn read or mid-replace: keep the current view
        self._membership_stamp = stamp
        self.membership = membership
        self.replication = membership.replication
        self._ring = membership.ring()
        self.cluster_stats["membership_reloads"] += 1
        with self._lock:
            up = {shard.name for shard in membership.up_shards()}
            for name in list(self._clients):
                if name not in up:
                    self._clients.pop(name).close()

    def _client(self, shard: Shard) -> ServeClient:
        with self._lock:
            client = self._clients.get(shard.name)
            if client is None:
                seed = self._retry_seed
                if seed is not None:
                    # distinct but deterministic jitter per shard
                    seed = seed * 31 + len(self._clients)
                client = ServeClient(
                    shard.address, timeout=self.timeout,
                    resilience=self.resilience, retry_seed=seed,
                )
                self._clients[shard.name] = client
            return client

    def replicas_for(self, digest: str) -> List[Shard]:
        """The replica set for a digest, as membership Shard entries."""
        return [self.membership.shard(name)
                for name in self._ring.nodes_for(digest, self.replication)]

    # -- cluster fault points ------------------------------------------
    def _inject_partition(self, shard: Shard) -> bool:
        if faultline.inject("cluster.net.partition"):
            self.cluster_stats["partitions_injected"] += 1
            return True
        return False

    def _inject_slow_replica(self) -> None:
        if faultline.inject("cluster.replica.slow"):
            self.cluster_stats["slow_replicas_injected"] += 1
            plan = faultline.active_plan()
            delay = 0.05 + (plan.rng_int(200) / 1000.0 if plan else 0.0)
            time.sleep(delay)

    # -- request path ---------------------------------------------------
    def submit_digest_first(self, spec: str, digest: str,
                            trace_bytes: bytes,
                            timeout: Optional[float] = None) -> dict:
        """Submit one replay to the digest's replica set.

        Returns the RESULT payload of the shard that served it, with a
        ``shard`` key added.  Raises typed errors:
        :class:`NoShardsError` / :class:`ClusterUnavailable` for
        availability, or the original :class:`RequestFailed` for
        deterministic failures every shard would share.
        """
        self._maybe_reload()
        self.cluster_stats["requests"] += 1
        replicas = self.replicas_for(digest)
        if not replicas:
            raise NoShardsError("membership has no shard marked up")
        errors: List[Tuple[str, BaseException]] = []
        for index, shard in enumerate(replicas):
            if self._inject_partition(shard):
                errors.append((shard.name, ConnectionResetError(
                    "cluster.net.partition injected")))
                continue
            self._inject_slow_replica()
            client = self._client(shard)
            uploaded = False
            try:
                try:
                    response = client.submit(spec, digest=digest,
                                             timeout=timeout)
                except RequestFailed as exc:
                    if exc.code != "UNKNOWN_TRACE":
                        raise
                    # digest-first healing: this shard lost (or never
                    # had) the trace — upload and retry on it
                    response = client.submit(spec, trace_bytes=trace_bytes,
                                             timeout=timeout)
                    uploaded = True
                    self.cluster_stats["healed_uploads"] += 1
            except (ServerBusy, RetriesExhausted, CircuitOpenError,
                    OSError, protocol.ProtocolError) as exc:
                errors.append((shard.name, exc))
                continue
            except RequestFailed as exc:
                if exc.code in FAILOVER_CODES:
                    errors.append((shard.name, exc))
                    continue
                raise  # deterministic: every replica would answer this
            self._merge_client_stats(client)
            self.per_shard[shard.name] = self.per_shard.get(shard.name, 0) + 1
            if index:
                self.cluster_stats["failovers"] += 1
            if self.replicate_writes:
                self._replicate(replicas, shard, spec, digest, trace_bytes,
                                uploaded, response)
            response["shard"] = shard.name
            return response
        raise ClusterUnavailable(digest, errors)

    def _replicate(self, replicas: Sequence[Shard], served: Shard, spec: str,
                   digest: str, trace_bytes: bytes, uploaded: bool,
                   response: dict) -> None:
        """Push writes to the other replicas, best-effort.

        A trace uploaded this call is copied to every other replica
        (``PUT_TRACE``); a result *computed* this call (cache miss) is
        pushed into their result caches (``PUT_RESULT``).  Cache hits
        replicate nothing — the write already fanned out when it was
        fresh.
        """
        fresh_result = (not response.get("cached")
                        and isinstance(response.get("result"), dict))
        if not uploaded and not fresh_result:
            return
        record = response.get("result")
        for shard in replicas:
            if shard.name == served.name:
                continue
            client = self._client(shard)
            try:
                if uploaded and trace_bytes:
                    client.put_trace(trace_bytes)
                    self.cluster_stats["traces_replicated"] += 1
                if fresh_result:
                    client.put_result(digest, spec, record)
                    self.cluster_stats["results_replicated"] += 1
            except (ServeError, OSError, protocol.ProtocolError):
                self.cluster_stats["replication_failures"] += 1

    def _merge_client_stats(self, client: ServeClient) -> None:
        for key in self.retry_stats:
            self.retry_stats[key] = sum(
                c.retry_stats[key] for c in self._clients.values()
            )
        del client  # stats are re-summed over every shard client

    # -- admin ----------------------------------------------------------
    def ping_all(self) -> Dict[str, bool]:
        """Liveness of every shard in the roster (up or down)."""
        self._maybe_reload()
        alive = {}
        for shard in self.membership.shards:
            try:
                alive[shard.name] = self._client(shard).ping()
            except (ServeError, OSError, protocol.ProtocolError):
                alive[shard.name] = False
        return alive

    def stats(self) -> Dict[str, dict]:
        """Per-shard STATS snapshots (the ``serve stats --json`` payload);
        unreachable shards map to ``{"error": ...}``."""
        self._maybe_reload()
        snapshots = {}
        for shard in self.membership.shards:
            try:
                snapshots[shard.name] = self._client(shard).stats()
            except (ServeError, OSError, protocol.ProtocolError) as exc:
                snapshots[shard.name] = {"error": f"{type(exc).__name__}: {exc}"}
        return snapshots

    def close(self) -> None:
        with self._lock:
            for client in self._clients.values():
                client.close()
            self._clients.clear()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
