"""Cluster chaos: the correct-or-typed invariant, now with a shard dying.

:func:`run_cluster_chaos` extends :func:`repro.serve.chaos.run_chaos`
cluster-wide: the reference replay is computed fault-free first, then a
seeded :class:`~repro.faultline.FaultPlan` is installed and concurrent
:class:`~repro.cluster.client.ClusterClient` threads hammer a freshly
launched shard ring.  On top of the single-node fault points, the
cluster points fire:

* ``cluster.shard.down`` — when the request a third of the way into
  the storm is claimed, that client takes the digest's *primary* shard
  down through the supervisor (the worst case: the hottest replica
  dies mid-storm, deterministically at the same point every run);
* ``cluster.net.partition`` / ``cluster.replica.slow`` — per-attempt
  client-side unreachability and slowness, driving the failover path.

The cluster invariant is the single-node one plus availability through
the kill: every request ends bit-correct or typed (never wrong), the
*surviving* shards still answer ping/stats and drain cleanly, and —
when the kill fired — requests kept completing afterwards (nonzero
goodput through R=2 failover).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro import faultline
from repro.faultline import FaultPlan, FaultSpec
from repro.serve.chaos import DETERMINISTIC_FIELDS, reference_result
from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServeError,
    ServerBusy,
)
from repro.serve.config import ResilienceConfig

from repro.cluster.client import ClusterClient
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

#: Default fault storm for a cluster run: the guaranteed mid-run shard
#: kill plus a sprinkling of client-edge and single-node faults.
DEFAULT_CLUSTER_POINTS = {
    "cluster.shard.down": FaultSpec(probability=1.0, max_fires=1),
    "cluster.net.partition": 0.08,
    "cluster.replica.slow": 0.08,
    "serve.busy": 0.1,
    "worker.crash.midjob": 0.1,
}

#: Client posture for cluster chaos: like CHAOS_RESILIENCE but with the
#: quick per-shard failover bias of the cluster client.
CLUSTER_CHAOS_RESILIENCE = ResilienceConfig(
    max_attempts=4,
    backoff_base=0.02,
    backoff_max=0.25,
    retry_budget=8.0,
    breaker_threshold=4,
    breaker_reset=0.5,
    heartbeat_interval=0.2,
    hang_timeout=5.0,
    reaper_interval=0.5,
)


@dataclass
class ClusterChaosReport:
    """Outcome classification for one cluster chaos run."""

    seed: int
    requests: int
    shards: int
    replication: int
    ok: int = 0
    wrong_results: List[dict] = field(default_factory=list)
    typed_errors: Dict[str, int] = field(default_factory=dict)
    unavailable: int = 0
    wall_seconds: float = 0.0
    killed_shard: Optional[str] = None
    ok_after_kill: int = 0
    survivors_alive: bool = False
    drained: bool = False
    per_shard: Dict[str, int] = field(default_factory=dict)
    cluster_counters: Dict[str, int] = field(default_factory=dict)
    plan_stats: Optional[dict] = None

    @property
    def answered(self) -> int:
        return self.ok + self.unavailable + sum(self.typed_errors.values())

    @property
    def invariant_ok(self) -> bool:
        """Correct-or-typed cluster-wide, survivors drain, goodput holds.

        ``ok_after_kill`` only constrains runs where the kill actually
        fired — a schedule that never took a shard down asserts the
        plain invariant.
        """
        return (not self.wrong_results
                and self.answered == self.requests
                and self.survivors_alive
                and self.drained
                and (self.killed_shard is None or self.ok_after_kill > 0))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "shards": self.shards,
            "replication": self.replication,
            "ok": self.ok,
            "wrong_results": len(self.wrong_results),
            "typed_errors": dict(sorted(self.typed_errors.items())),
            "unavailable": self.unavailable,
            "wall_seconds": self.wall_seconds,
            "killed_shard": self.killed_shard,
            "ok_after_kill": self.ok_after_kill,
            "survivors_alive": self.survivors_alive,
            "drained": self.drained,
            "per_shard": dict(sorted(self.per_shard.items())),
            "cluster_counters": dict(sorted(self.cluster_counters.items())),
            "invariant_ok": self.invariant_ok,
            "plan_stats": self.plan_stats,
        }


def run_cluster_chaos(
    seed: int,
    shards: int = 3,
    replication: int = 2,
    points: Optional[Mapping[str, Union[FaultSpec, float]]] = None,
    requests: int = 30,
    concurrency: int = 3,
    workers: int = 1,
    workload: str = "fft",
    scale: int = 1,
    spec: str = "eraser.full",
    resilience: ResilienceConfig = CLUSTER_CHAOS_RESILIENCE,
    use_env: bool = True,
    client_timeout: float = 30.0,
) -> ClusterChaosReport:
    """One seeded chaos run against a private shard ring."""
    import tempfile

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    if points is None:
        points = DEFAULT_CLUSTER_POINTS
    report = ClusterChaosReport(seed=seed, requests=requests, shards=shards,
                                replication=replication)
    plan = FaultPlan(seed=seed, points=points)
    previous_env = os.environ.get(faultline.ENV_VAR)

    with tempfile.TemporaryDirectory(prefix="alda-cluster-chaos-") as tmp:
        store = TraceStore(tmp)
        reference = reference_result(store, workload, scale, spec)
        expected = {name: reference[name] for name in DETERMINISTIC_FIELDS}
        trace_bytes = store.trace_path(ALL[workload], scale).read_bytes()
        digest = store.get_or_record(ALL[workload], scale).digest

        supervisor = ClusterSupervisor(ClusterConfig(
            shards=shards, replication=replication, workers=workers,
        ))
        try:
            if use_env:
                os.environ[faultline.ENV_VAR] = plan.to_env()
            faultline.install(plan)
            # Startup pings suppress the armed faults (see _await_ready):
            # the storm begins once the ring is actually serving.
            supervisor.start()

            kill_after = max(1, requests // 3)
            victim = supervisor.membership.ring().primary(digest)
            lock = threading.Lock()
            counter = {"next": 0}
            kill_state = {"fired_at": None, "considered": False}
            started = time.perf_counter()

            def claim() -> Optional[int]:
                with lock:
                    if counter["next"] >= requests:
                        return None
                    counter["next"] += 1
                    return counter["next"] - 1

            def maybe_kill_shard(index: int) -> None:
                """Fire cluster.shard.down when the kill index is claimed.

                Tied to claim order, not wall clock, so the kill lands
                mid-storm deterministically: every request claimed after
                ``kill_after`` runs against the degraded ring, which is
                what ``ok_after_kill`` measures.
                """
                if index != kill_after:
                    return
                with lock:
                    if kill_state["considered"]:
                        return
                    kill_state["considered"] = True
                if not faultline.inject("cluster.shard.down"):
                    return
                # Mark the kill *before* draining the victim: requests
                # the survivors complete while it drains are post-kill
                # goodput.
                with lock:
                    report.killed_shard = victim
                    kill_state["fired_at"] = time.perf_counter()
                supervisor.kill_shard(victim)

            def record_outcome(kind: str, code: Optional[str] = None,
                               correct: Optional[bool] = None,
                               got: Optional[dict] = None) -> None:
                with lock:
                    if kind == "ok":
                        report.ok += 1
                        if kill_state["fired_at"] is not None:
                            report.ok_after_kill += 1
                    elif kind == "unavailable":
                        report.unavailable += 1
                    elif kind == "typed":
                        report.typed_errors[code] = (
                            report.typed_errors.get(code, 0) + 1
                        )
                    elif kind == "wrong":
                        report.wrong_results.append(
                            {"expected": expected, "got": got}
                        )

            def client_loop(worker_index: int) -> None:
                client = ClusterClient(
                    supervisor.membership_path, resilience=resilience,
                    timeout=client_timeout,
                    retry_seed=seed + worker_index,
                )
                with client:
                    while True:
                        index = claim()
                        if index is None:
                            break
                        maybe_kill_shard(index)
                        try:
                            response = client.submit_digest_first(
                                spec, digest, trace_bytes
                            )
                        except (ServerBusy, RetriesExhausted,
                                CircuitOpenError):
                            record_outcome("unavailable")
                            continue
                        except RequestFailed as exc:
                            record_outcome("typed", code=exc.code or "UNKNOWN")
                            continue
                        except (ServeError, OSError) as exc:
                            record_outcome(
                                "typed", code=f"transport:{type(exc).__name__}"
                            )
                            continue
                        record = response["result"]
                        got = {name: record.get(name)
                               for name in DETERMINISTIC_FIELDS}
                        if got == expected:
                            record_outcome("ok")
                        else:
                            record_outcome("wrong", got=got)
                    with lock:
                        for shard, count in client.per_shard.items():
                            report.per_shard[shard] = (
                                report.per_shard.get(shard, 0) + count
                            )
                        for key, value in client.cluster_stats.items():
                            report.cluster_counters[key] = (
                                report.cluster_counters.get(key, 0) + value
                            )

            threads = [
                threading.Thread(target=client_loop, args=(i,),
                                 name=f"cluster-chaos-{i}", daemon=True)
                for i in range(max(1, concurrency))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report.wall_seconds = time.perf_counter() - started

            # Every surviving shard must have outlived the storm.
            with faultline.suppressed("serve.conn.reset", "serve.busy",
                                      "cluster.net.partition",
                                      "cluster.replica.slow"):
                survivors = [s for s in supervisor.membership.shards
                             if s.status == "up"]
                alive = True
                for shard in survivors:
                    try:
                        with ServeClient(shard.address, timeout=10.0) as probe:
                            alive = alive and probe.ping() and bool(
                                probe.stats()
                            )
                    except (ServeError, OSError):
                        alive = False
                report.survivors_alive = alive and bool(survivors)
            supervisor.stop()
            report.drained = True
        finally:
            supervisor.stop()
            faultline.clear()
            if use_env:
                if previous_env is None:
                    os.environ.pop(faultline.ENV_VAR, None)
                else:
                    os.environ[faultline.ENV_VAR] = previous_env
            report.plan_stats = plan.stats()

    return report


def render_cluster_report(report: ClusterChaosReport) -> str:
    lines = [
        f"cluster chaos seed={report.seed} shards={report.shards} "
        f"R={report.replication}: {report.ok}/{report.requests} bit-correct, "
        f"{report.unavailable} unavailable (typed), "
        f"{sum(report.typed_errors.values())} typed errors, "
        f"{len(report.wrong_results)} WRONG results "
        f"in {report.wall_seconds:.2f}s",
    ]
    if report.killed_shard:
        lines.append(
            f"  killed {report.killed_shard} mid-run; "
            f"{report.ok_after_kill} request(s) completed after the kill"
        )
    else:
        lines.append("  no shard killed this schedule")
    for code, count in sorted(report.typed_errors.items()):
        lines.append(f"  error {code}: {count}")
    if report.per_shard:
        lines.append(
            "  served by: "
            + ", ".join(f"{name}={count}"
                        for name, count in sorted(report.per_shard.items()))
        )
    counters = report.cluster_counters
    if counters:
        lines.append(
            f"  cluster: failovers={counters.get('failovers', 0)} "
            f"healed_uploads={counters.get('healed_uploads', 0)} "
            f"traces_replicated={counters.get('traces_replicated', 0)} "
            f"results_replicated={counters.get('results_replicated', 0)}"
        )
    if report.plan_stats:
        fires = report.plan_stats.get("fires", {})
        lines.append(
            "  faults fired: "
            + (", ".join(f"{point}={count}"
                         for point, count in sorted(fires.items()))
               or "none")
        )
    lines.append(
        f"  survivors alive: {report.survivors_alive}, "
        f"drained: {report.drained}, "
        f"invariant: {'OK' if report.invariant_ok else 'VIOLATED'}"
    )
    return "\n".join(lines)
