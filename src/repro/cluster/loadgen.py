"""Load generation against a shard ring.

Reuses :class:`repro.serve.loadgen.LoadGen` wholesale — same request
mix, same exact client-side percentiles, same report shape — with two
swaps: each worker thread drives a :class:`ClusterClient` instead of a
single-server :class:`ServeClient`, and the post-run server-side
histogram tails come from the *merged* per-shard STATS snapshots, so a
cluster report's ``server_latency_ms`` is directly comparable to a
single node's.  The report gains a ``cluster`` block: routing spread
per shard, failovers, healed uploads, and replication counters.

CLI::

    python -m repro.cluster loadgen --membership PATH ...   # existing ring
    python -m repro.cluster loadgen --shards 3 ...          # ephemeral ring
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
from typing import List, Optional

from repro.serve.config import ResilienceConfig
from repro.serve.loadgen import LoadGen, render_report

from repro.cluster.client import SHARD_RESILIENCE, ClusterClient
from repro.cluster.stats import merge_snapshots


def run_cluster_loadgen(membership_path, specs: List[str], digest: str,
                        trace_bytes: bytes, requests: int, concurrency: int,
                        rate: Optional[float] = None, timeout: float = 300.0,
                        resilience: Optional[ResilienceConfig] = SHARD_RESILIENCE,
                        seed: Optional[int] = None,
                        replication: Optional[int] = None) -> dict:
    """Fire the loadgen mix at a cluster; returns the extended report."""
    clients: List[ClusterClient] = []
    lock = threading.Lock()

    def client_factory(worker_index: int) -> ClusterClient:
        retry_seed = None if seed is None else seed + worker_index
        client = ClusterClient(
            membership_path, replication=replication, resilience=resilience,
            timeout=timeout, retry_seed=retry_seed,
        )
        with lock:
            clients.append(client)
        return client

    def stats_fetcher() -> dict:
        with ClusterClient(membership_path, replication=replication,
                           timeout=timeout) as probe:
            return merge_snapshots(probe.stats())

    gen = LoadGen(
        f"cluster:{membership_path}", specs, digest, trace_bytes,
        requests, concurrency, rate, timeout,
        resilience=resilience, seed=seed,
        client_factory=client_factory, stats_fetcher=stats_fetcher,
    )
    report = gen.run()

    cluster = {
        "membership": str(membership_path),
        "per_shard": {},
        "counters": {},
    }
    for client in clients:
        for shard, count in client.per_shard.items():
            cluster["per_shard"][shard] = (
                cluster["per_shard"].get(shard, 0) + count
            )
        for key, value in client.cluster_stats.items():
            cluster["counters"][key] = cluster["counters"].get(key, 0) + value
    report["cluster"] = cluster
    return report


def render_cluster_report(report: dict) -> str:
    lines = [render_report(report)]
    cluster = report.get("cluster") or {}
    spread = cluster.get("per_shard") or {}
    if spread:
        total = sum(spread.values())
        shares = "  ".join(
            f"{name}={count} ({100.0 * count / total:.0f}%)"
            for name, count in sorted(spread.items())
        )
        lines.append(f"routing: {shares}")
    counters = cluster.get("counters") or {}
    if counters:
        lines.append(
            f"cluster: failovers {counters.get('failovers', 0)}, "
            f"healed uploads {counters.get('healed_uploads', 0)}, "
            f"traces replicated {counters.get('traces_replicated', 0)}, "
            f"results replicated {counters.get('results_replicated', 0)}, "
            f"replication failures {counters.get('replication_failures', 0)}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster loadgen",
        description="Replay a request mix against a shard ring.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--membership", default=None, metavar="PATH",
                        help="membership file of a running cluster")
    target.add_argument("--shards", type=int, default=None, metavar="N",
                        help="spin up an ephemeral in-process N-shard "
                             "cluster for the run")
    parser.add_argument("--replication", type=int, default=None,
                        help="override the membership's replication factor")
    parser.add_argument("--workload", default="fft")
    parser.add_argument("--spec", action="append", default=None,
                        help="analysis spec key(s); repeat for a mix "
                             "(default: eraser.full)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--workers", type=int, default=1,
                        help="replay workers per ephemeral shard (with "
                             "--shards; default 1)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    if args.workload not in ALL:
        parser.error(f"unknown workload {args.workload!r}")
    specs = args.spec or ["eraser.full"]

    supervisor = None
    if args.shards is not None:
        from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

        supervisor = ClusterSupervisor(ClusterConfig(
            shards=args.shards,
            replication=args.replication or 2,
            workers=args.workers,
        ))
        supervisor.start()
        membership_path = supervisor.membership_path
    else:
        membership_path = args.membership

    try:
        with tempfile.TemporaryDirectory(prefix="alda-cluster-loadgen-") as tmp:
            store = TraceStore(tmp)
            workload = ALL[args.workload]
            reader = store.get_or_record(workload, args.scale)
            trace_bytes = store.trace_path(workload, args.scale).read_bytes()
            report = run_cluster_loadgen(
                membership_path, specs, reader.digest, trace_bytes,
                args.requests, args.concurrency, args.rate, args.timeout,
                seed=args.seed, replication=args.replication,
            )
    finally:
        if supervisor is not None:
            supervisor.stop()
    report["config"]["workload"] = args.workload
    report["config"]["scale"] = args.scale

    print(render_cluster_report(report))
    if args.out:
        import pathlib

        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {out_path}]")
    return 0 if not report["errors"] else 1
