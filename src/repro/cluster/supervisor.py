"""Cluster supervisor: launch, watch, and drain a ring of serve daemons.

``python -m repro.cluster up --shards N`` builds on this module.  The
supervisor owns the membership file: it assigns each shard a name, a
port, and a store directory under one cluster root, starts the daemons
(in-process threads by default, real ``python -m repro.serve``
processes with ``backend="process"``), waits for each to answer PING,
and publishes the roster.  Health checks re-ping every shard and flip
its membership status, so clients reroute away from a dead shard within
one request.

``kill_shard`` exists for chaos: it takes one shard down mid-run
(abruptly for processes, by draining for threads) and republishes the
membership — the cluster invariant says the survivors absorb the
traffic and every outstanding request ends correct or typed.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro import faultline
from repro.serve.client import ServeClient, ServeError
from repro.serve import protocol

from repro.cluster.membership import Membership, Shard
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.stats import merge_snapshots

MEMBERSHIP_FILENAME = "membership.json"


@dataclass
class ClusterConfig:
    """Shape of one cluster: shard count, replication, placement."""

    shards: int = 3
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    host: str = "127.0.0.1"
    #: replay workers per shard (0 = inline replays, cheapest to spawn)
    workers: int = 1
    #: cluster root: per-shard stores + the membership file live here
    root: Optional[str] = None
    #: "thread" embeds AnalysisServers in this process (tests, chaos);
    #: "process" spawns real ``python -m repro.serve`` daemons
    backend: str = "thread"
    #: first port for the process backend (each shard takes base+index);
    #: the thread backend always lets the kernel pick free ports
    base_port: int = 7101
    start_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if not 1 <= self.replication:
            raise ValueError("replication factor must be >= 1")


class ClusterSupervisor:
    """Owns the shard daemons and the membership file."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.root is None:
            import tempfile

            self._tempdir = tempfile.TemporaryDirectory(prefix="alda-cluster-")
            self.root = Path(self._tempdir.name)
        else:
            self._tempdir = None
            self.root = Path(self.config.root)
            self.root.mkdir(parents=True, exist_ok=True)
        self.membership_path = self.root / MEMBERSHIP_FILENAME
        self.membership = Membership(
            replication=min(self.config.replication, self.config.shards),
            vnodes=self.config.vnodes,
        )
        self._handles: Dict[str, object] = {}    # thread backend
        self._processes: Dict[str, subprocess.Popen] = {}  # process backend
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Membership:
        """Launch every shard, wait for PONGs, publish the membership."""
        if self._started:
            return self.membership
        for index in range(self.config.shards):
            name = f"shard{index}"
            store = self.root / name / "store"
            store.mkdir(parents=True, exist_ok=True)
            if self.config.backend == "thread":
                address = self._start_thread_shard(name, store)
            else:
                address = self._start_process_shard(name, store, index)
            self.membership.shards.append(
                Shard(name=name, address=address, store=str(store))
            )
        self._await_ready()
        self.membership.save(self.membership_path)
        self._started = True
        return self.membership

    def _start_thread_shard(self, name: str, store: Path) -> str:
        from repro.serve.server import ServeConfig, serve_in_thread

        handle = serve_in_thread(ServeConfig(
            host=self.config.host, port=0, workers=self.config.workers,
            store_root=str(store),
        ), start_timeout=self.config.start_timeout)
        self._handles[name] = handle
        return handle.address

    def _start_process_shard(self, name: str, store: Path, index: int) -> str:
        port = self.config.base_port + index
        log_path = self.root / name / "serve.log"
        log = open(log_path, "ab")
        try:
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.serve",
                 "--host", self.config.host, "--port", str(port),
                 "--workers", str(self.config.workers),
                 "--store", str(store)],
                stdout=log, stderr=subprocess.STDOUT,
            )
        finally:
            log.close()  # the child holds its own descriptor
        self._processes[name] = process
        return f"{self.config.host}:{port}"

    def _await_ready(self) -> None:
        """Block until every shard answers PING (or raise with the holdouts).

        Startup pings run with chaos faults suppressed: a fault plan
        armed for the run proper must not make a healthy shard look
        dead before it served anything.
        """
        deadline = time.monotonic() + self.config.start_timeout
        pending = {shard.name: shard.address for shard in self.membership.shards}
        with faultline.suppressed("serve.conn.reset", "serve.busy",
                                  "cluster.net.partition",
                                  "cluster.replica.slow"):
            while pending and time.monotonic() < deadline:
                for name, address in list(pending.items()):
                    process = self._processes.get(name)
                    if process is not None and process.poll() is not None:
                        raise RuntimeError(
                            f"shard {name} exited with code "
                            f"{process.returncode} before becoming ready "
                            f"(see {self.root / name / 'serve.log'})"
                        )
                    try:
                        with ServeClient(address, timeout=2.0) as client:
                            if client.ping():
                                del pending[name]
                    except (ServeError, OSError, protocol.ProtocolError):
                        pass
                if pending:
                    time.sleep(0.05)
        if pending:
            raise RuntimeError(
                f"shards never became ready: {sorted(pending)}"
            )

    def stop(self, timeout: float = 15.0) -> None:
        """Drain every shard and tear the cluster down."""
        for name, handle in list(self._handles.items()):
            try:
                handle.stop(timeout)
            except Exception:  # noqa: BLE001 - a dead shard is already stopped
                pass
            del self._handles[name]
        for name, process in list(self._processes.items()):
            if process.poll() is None:
                process.terminate()
                try:
                    process.wait(timeout)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(5.0)
            del self._processes[name]
        for shard in self.membership.shards:
            shard.status = "down"
        if self._started:
            self.membership.save(self.membership_path)
        self._started = False
        if self._tempdir is not None:
            import contextlib

            with contextlib.suppress(OSError):
                self._tempdir.cleanup()

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- chaos / failure handling --------------------------------------
    def kill_shard(self, name: str, timeout: float = 10.0) -> None:
        """Take one shard down and republish the membership.

        The process backend kills abruptly (SIGKILL — the crash chaos
        wants); the thread backend drains, which still exercises the
        client's failover path via ``SHUTTING_DOWN`` and dead sockets.
        """
        handle = self._handles.pop(name, None)
        if handle is not None:
            try:
                handle.stop(timeout)
            except Exception:  # noqa: BLE001 - killing a dying shard is fine
                pass
        process = self._processes.pop(name, None)
        if process is not None and process.poll() is None:
            process.kill()
            process.wait(timeout)
        self.membership.mark(name, "down")
        self.membership.save(self.membership_path)

    def health_check(self) -> Dict[str, bool]:
        """Ping every shard; flip membership status on changes."""
        alive: Dict[str, bool] = {}
        changed = False
        for shard in self.membership.shards:
            running = True
            process = self._processes.get(shard.name)
            if process is not None and process.poll() is not None:
                running = False
            ok = False
            if running:
                try:
                    with ServeClient(shard.address, timeout=2.0) as client:
                        ok = client.ping()
                except (ServeError, OSError, protocol.ProtocolError):
                    ok = False
            alive[shard.name] = ok
            status = "up" if ok else "down"
            if shard.status != status:
                shard.status = status
                changed = True
        if changed:
            self.membership.save(self.membership_path)
        return alive

    # -- stats ---------------------------------------------------------
    def shard_stats(self) -> Dict[str, dict]:
        """Per-shard STATS snapshots (``{"error": ...}`` when unreachable)."""
        snapshots: Dict[str, dict] = {}
        for shard in self.membership.shards:
            try:
                with ServeClient(shard.address, timeout=5.0) as client:
                    snapshots[shard.name] = client.stats()
            except (ServeError, OSError, protocol.ProtocolError) as exc:
                snapshots[shard.name] = {
                    "error": f"{type(exc).__name__}: {exc}"
                }
        return snapshots

    def aggregate_stats(self) -> dict:
        """Cluster-wide merged stats (see :mod:`repro.cluster.stats`)."""
        return merge_snapshots(self.shard_stats())


def aggregate_from_membership(
    membership: Union[str, Path, Membership],
) -> dict:
    """Merge stats for an already-running cluster, given its membership."""
    if not isinstance(membership, Membership):
        membership = Membership.load(membership)
    snapshots: Dict[str, dict] = {}
    for shard in membership.shards:
        try:
            with ServeClient(shard.address, timeout=5.0) as client:
                snapshots[shard.name] = client.stats()
        except (ServeError, OSError, protocol.ProtocolError) as exc:
            snapshots[shard.name] = {"error": f"{type(exc).__name__}: {exc}"}
    return merge_snapshots(snapshots)
