"""CLI for the shard ring.

Commands::

    python -m repro.cluster up --shards 3 --root DIR     # run a cluster
    python -m repro.cluster stats --membership PATH      # merged stats
    python -m repro.cluster loadgen --shards 3           # load generator
    python -m repro.cluster chaos --seed 7 --shards 3    # fault-injection
    python -m repro.cluster shutdown --membership PATH   # drain all shards
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def _up(argv) -> int:
    from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster up",
        description="Launch N repro.serve shards and publish a membership "
                    "file.",
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replication", type=int, default=2,
                        help="replicas per digest (default 2)")
    parser.add_argument("--workers", type=int, default=1,
                        help="replay workers per shard (default 1)")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="cluster root for stores + membership "
                             "(default: private temp dir)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--base-port", type=int, default=7101,
                        help="first shard port; shard i listens on "
                             "base+i (process backend; default 7101)")
    parser.add_argument("--backend", choices=("process", "thread"),
                        default="process",
                        help="process: real python -m repro.serve daemons "
                             "(default); thread: in-process servers")
    parser.add_argument("--health-interval", type=float, default=2.0,
                        metavar="SEC",
                        help="seconds between health-check sweeps")
    args = parser.parse_args(argv)

    supervisor = ClusterSupervisor(ClusterConfig(
        shards=args.shards, replication=args.replication,
        workers=args.workers, root=args.root, host=args.host,
        base_port=args.base_port, backend=args.backend,
    ))
    membership = supervisor.start()
    print(f"repro.cluster up: {args.shards} shard(s), "
          f"R={membership.replication}, "
          f"membership {supervisor.membership_path}", flush=True)
    for shard in membership.shards:
        print(f"  {shard.name} @ {shard.address} store={shard.store}",
              flush=True)
    try:
        while True:
            time.sleep(args.health_interval)
            alive = supervisor.health_check()
            if not any(alive.values()):
                print("all shards down; exiting", flush=True)
                return 1
    except KeyboardInterrupt:
        print("draining cluster...", flush=True)
    finally:
        supervisor.stop()
    print("repro.cluster drained and stopped", flush=True)
    return 0


def _stats(argv) -> int:
    from repro.cluster.stats import render_cluster_snapshot
    from repro.cluster.supervisor import aggregate_from_membership

    parser = argparse.ArgumentParser(prog="python -m repro.cluster stats")
    parser.add_argument("--membership", required=True, metavar="PATH")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    merged = aggregate_from_membership(args.membership)
    if args.as_json:
        print(json.dumps(merged, indent=2, sort_keys=True))
    else:
        print(render_cluster_snapshot(merged))
    return 0


def _chaos(argv) -> int:
    from repro.cluster.chaos import render_cluster_report, run_cluster_chaos
    from repro.serve.__main__ import _parse_fault

    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster chaos",
        description="Seeded fault-injection run against a private shard "
                    "ring, killing one shard mid-storm; asserts every "
                    "request is bit-correct or a typed error.",
    )
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--fault", action="append", default=None,
                        metavar="POINT=P[:MAX[:SKIP]]", type=_parse_fault,
                        help="arm a fault point (repeatable); default: "
                             "guaranteed shard kill + a mixed storm")
    parser.add_argument("--requests", type=int, default=30)
    parser.add_argument("--concurrency", type=int, default=3)
    parser.add_argument("--workers", type=int, default=1,
                        help="replay workers per shard (default 1)")
    parser.add_argument("--workload", default="fft")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--analysis", default="eraser.full", metavar="SPEC")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run_cluster_chaos(
        seed=args.seed, shards=args.shards, replication=args.replication,
        points=dict(args.fault) if args.fault else None,
        requests=args.requests, concurrency=args.concurrency,
        workers=args.workers, workload=args.workload, scale=args.scale,
        spec=args.analysis,
    )
    print(render_cluster_report(report))
    if args.out:
        import pathlib

        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"[wrote {out_path}]")
    return 0 if report.invariant_ok else 1


def _shutdown(argv) -> int:
    from repro.cluster.membership import Membership
    from repro.serve.client import ServeClient, ServeError

    parser = argparse.ArgumentParser(prog="python -m repro.cluster shutdown")
    parser.add_argument("--membership", required=True, metavar="PATH")
    args = parser.parse_args(argv)

    membership = Membership.load(args.membership)
    failures = 0
    for shard in membership.up_shards():
        try:
            with ServeClient(shard.address, timeout=10.0) as client:
                client.request_shutdown()
            print(f"shutdown requested: {shard.name} @ {shard.address}")
        except (ServeError, OSError) as exc:
            failures += 1
            print(f"shutdown failed for {shard.name}: {exc}")
    return 1 if failures else 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "up":
        return _up(argv[1:])
    if argv and argv[0] == "stats":
        return _stats(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.cluster.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos(argv[1:])
    if argv and argv[0] == "shutdown":
        return _shutdown(argv[1:])
    print("usage: python -m repro.cluster "
          "{up,stats,loadgen,chaos,shutdown} ...", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
