"""Cluster-wide stats: merge per-shard STATS snapshots into one view.

Each shard's snapshot is exactly the payload ``python -m repro.serve
stats --json`` prints.  Counters and gauges add; histograms merge
through their sparse bucket counts
(:func:`repro.serve.metrics.merge_histogram_summaries`), so the
cluster-wide p50/p95/p99 are re-estimated from the summed distribution
rather than averaged — an average of percentiles is not a percentile.
Shards that could not be reached contribute an entry under
``shards_down`` instead of silently vanishing from the denominator.
"""

from __future__ import annotations

from typing import Dict

from repro.serve.metrics import merge_histogram_summaries


def merge_snapshots(snapshots: Dict[str, dict]) -> dict:
    """Merge ``{shard_name: snapshot_or_error}`` into one cluster view."""
    merged = {
        "shards": sorted(snapshots),
        "shards_down": sorted(
            name for name, snap in snapshots.items() if "error" in snap
        ),
        "counters": {},
        "gauges": {},
        "histograms": {},
        "per_shard": {},
    }
    live = {name: snap for name, snap in snapshots.items()
            if "error" not in snap}
    for name, snap in sorted(live.items()):
        for counter, value in snap.get("counters", {}).items():
            merged["counters"][counter] = (
                merged["counters"].get(counter, 0) + value
            )
        for gauge, value in snap.get("gauges", {}).items():
            if isinstance(value, (int, float)):
                merged["gauges"][gauge] = (
                    merged["gauges"].get(gauge, 0) + value
                )
        merged["per_shard"][name] = {
            "uptime_seconds": snap.get("uptime_seconds"),
            "cache_hit_rate": snap.get("cache_hit_rate"),
            "requests_total": snap.get("counters", {}).get("requests_total", 0),
            "degraded": bool(snap.get("health", {}).get("degraded")),
        }
    histogram_names = sorted({
        name for snap in live.values() for name in snap.get("histograms", {})
    })
    for histogram in histogram_names:
        merged["histograms"][histogram] = merge_histogram_summaries([
            snap.get("histograms", {}).get(histogram, {})
            for snap in live.values()
        ])
    hits = merged["counters"].get("cache_hits", 0)
    misses = merged["counters"].get("cache_misses", 0)
    if hits + misses:
        merged["cache_hit_rate"] = hits / (hits + misses)
    return merged


def render_cluster_snapshot(merged: dict) -> str:
    """Human-readable rendering for ``python -m repro.cluster stats``."""
    lines = [
        f"shards: {len(merged.get('shards', []))} "
        f"({', '.join(merged.get('shards', [])) or 'none'})"
    ]
    down = merged.get("shards_down")
    if down:
        lines.append(f"shards_down: {', '.join(down)}")
    if "cache_hit_rate" in merged:
        lines.append(f"cache_hit_rate: {merged['cache_hit_rate']:.3f}")
    for name, view in sorted(merged.get("per_shard", {}).items()):
        lines.append(
            f"  {name}: requests={view.get('requests_total', 0)} "
            f"degraded={str(view.get('degraded', False)).lower()}"
        )
    for name, value in sorted(merged.get("counters", {}).items()):
        lines.append(f"counter {name}: {value}")
    for name, summary in sorted(merged.get("histograms", {}).items()):
        if summary.get("count"):
            lines.append(
                f"histogram {name}: count={summary['count']} "
                f"mean={summary['mean']:.3f}ms p50={summary['p50']:.3f}ms "
                f"p95={summary['p95']:.3f}ms p99={summary['p99']:.3f}ms"
            )
    return "\n".join(lines)
