"""Consistent-hash ring mapping trace digests to shards.

The cluster routes on the same key everything else in the serving stack
is addressed by: the trace payload digest.  A :class:`HashRing` places
``vnodes`` virtual points per shard on a 64-bit ring (SHA-256 of
``"<shard>#<index>"``), and a digest is served by the first ``R``
*distinct* shards clockwise from the digest's own point.

Two properties the tests pin down (``tests/cluster/test_ring.py``):

* **balance** — with the default 256 vnodes, 10k digests spread across
  shards within ±25% of the ideal share;
* **minimal remapping** — adding or removing one shard moves roughly
  ``1/N`` of the keys and *never* remaps a key between two surviving
  shards (a key either stays put or moves to/from the changed shard).

Routing is a performance structure, not a correctness one: any shard
can replay any trace it is handed (stores are content-addressed and
self-sufficient), so a stale ring costs cache locality, never wrong
answers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual points per shard.  64 is the classic choice but leaves
#: 30%+ imbalance for unlucky shard names; 256 keeps every roster we
#: care about within ±25% of the ideal share (the property the tests
#: pin) at a ring-build cost that is still microseconds.
DEFAULT_VNODES = 256


def _point(key: str) -> int:
    """64-bit ring position of a string key."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes and a replication factor.

    ``nodes_for(digest)`` returns the replica set: ``replication``
    distinct nodes in ring order, starting at the digest's successor
    point.  With fewer nodes than the replication factor, every node is
    a replica.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES,
                 replication: int = 2) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.vnodes = vnodes
        self.replication = replication
        self._points: List[Tuple[int, str]] = []  # sorted (position, node)
        self._keys: List[int] = []                # positions, for bisect
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------
    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Place one node's virtual points; adding twice is an error."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        positions = []
        for index in range(self.vnodes):
            position = _point(f"{node}#{index}")
            bisect.insort(self._points, (position, node))
            positions.append(position)
        self._nodes[node] = positions
        self._keys = [position for position, _ in self._points]

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        del self._nodes[node]
        self._points = [(pos, name) for pos, name in self._points
                        if name != node]
        self._keys = [position for position, _ in self._points]

    # -- routing -------------------------------------------------------
    def nodes_for(self, digest: str,
                  replication: Optional[int] = None) -> List[str]:
        """The replica set for a digest: R distinct nodes in ring order."""
        if not self._points:
            return []
        want = min(replication or self.replication, len(self._nodes))
        start = bisect.bisect_right(self._keys, _point(digest))
        replicas: List[str] = []
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in replicas:
                replicas.append(node)
                if len(replicas) == want:
                    break
        return replicas

    def primary(self, digest: str) -> str:
        replicas = self.nodes_for(digest, replication=1)
        if not replicas:
            raise KeyError("ring is empty")
        return replicas[0]

    def assignment(self, digests: Iterable[str]) -> Dict[str, int]:
        """Primary-shard counts for a set of digests (balance checks)."""
        counts = {node: 0 for node in self._nodes}
        for digest in digests:
            counts[self.primary(digest)] += 1
        return counts
