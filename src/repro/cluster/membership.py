"""Cluster membership: the shared file shards and clients agree on.

The supervisor writes one JSON document (atomically: temp file +
``os.replace``) describing every shard — name, ``HOST:PORT`` address,
store directory, and status — plus the cluster's replication factor.
Clients stat the file before each request and rebuild their ring when
it changes, so a shard the supervisor marks ``down`` stops receiving
new traffic within one request.

The membership file is advisory, like the ring itself: a client with a
stale view retries against a dead address, fails over to a replica, and
heals — it never returns a wrong result because of stale membership.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.cluster.ring import DEFAULT_VNODES, HashRing

MEMBERSHIP_VERSION = 1


@dataclass
class Shard:
    """One serve daemon in the cluster."""

    name: str
    address: str          # HOST:PORT
    store: Optional[str] = None
    status: str = "up"    # "up" | "down"

    def to_dict(self) -> dict:
        return {"name": self.name, "address": self.address,
                "store": self.store, "status": self.status}

    @classmethod
    def from_dict(cls, raw: dict) -> "Shard":
        return cls(name=raw["name"], address=raw["address"],
                   store=raw.get("store"), status=raw.get("status", "up"))


@dataclass
class Membership:
    """The shard roster plus the replication factor clients must honor."""

    shards: List[Shard] = field(default_factory=list)
    replication: int = 2
    vnodes: int = DEFAULT_VNODES
    updated_at: float = 0.0

    def shard(self, name: str) -> Shard:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(f"no shard named {name!r}")

    def up_shards(self) -> List[Shard]:
        return [shard for shard in self.shards if shard.status == "up"]

    def addresses(self) -> dict:
        return {shard.name: shard.address for shard in self.shards}

    def ring(self) -> HashRing:
        """Routing ring over the shards currently marked up."""
        return HashRing(
            (shard.name for shard in self.up_shards()),
            vnodes=self.vnodes, replication=self.replication,
        )

    def mark(self, name: str, status: str) -> None:
        self.shard(name).status = status

    # -- persistence ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": MEMBERSHIP_VERSION,
            "replication": self.replication,
            "vnodes": self.vnodes,
            "updated_at": self.updated_at,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "Membership":
        if not isinstance(raw, dict) or "shards" not in raw:
            raise ValueError("membership must be a JSON object with 'shards'")
        return cls(
            shards=[Shard.from_dict(entry) for entry in raw["shards"]],
            replication=int(raw.get("replication", 2)),
            vnodes=int(raw.get("vnodes", DEFAULT_VNODES)),
            updated_at=float(raw.get("updated_at", 0.0)),
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Publish atomically so concurrent readers never see a torn file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        self.updated_at = time.time()
        raw = json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=str(path.parent), suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(raw)
                handle.flush()
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Membership":
        try:
            raw = json.loads(Path(path).read_text())
        except ValueError as exc:
            raise ValueError(f"membership file {path} is not valid JSON: {exc}"
                             ) from None
        return cls.from_dict(raw)
