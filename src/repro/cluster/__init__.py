"""``repro.cluster`` — a sharded ring of analysis daemons.

The single-daemon serving layer (:mod:`repro.serve`) stores traces and
results content-addressed by digest; this package scales it out by
making that digest the routing key.  A :class:`HashRing` (consistent
hashing with virtual nodes) maps each trace digest to R replica shards;
a :class:`ClusterSupervisor` launches the shards and owns the shared
membership file; a :class:`ClusterClient` routes on the client side
with replica failover, digest-first re-upload healing, and write
replication — all on the existing wire protocol, resilience layer, and
fault-injection substrate.

Routing is a performance structure, not a correctness one: any shard
can replay any trace it is handed, so a stale ring view degrades cache
locality, never answers.  The cluster chaos mode
(:func:`repro.cluster.chaos.run_cluster_chaos`) holds the serving
invariant — every request bit-correct or typed, never wrong — while a
shard is killed mid-storm.

CLI::

    python -m repro.cluster up --shards 3        # run a cluster
    python -m repro.cluster stats --membership PATH
    python -m repro.cluster loadgen --shards 3 --requests 100
    python -m repro.cluster chaos --seed 7 --shards 3
    python -m repro.cluster shutdown --membership PATH
"""

from repro.cluster.client import (
    ClusterClient,
    ClusterError,
    ClusterUnavailable,
    NoShardsError,
)
from repro.cluster.membership import Membership, Shard
from repro.cluster.ring import HashRing
from repro.cluster.supervisor import ClusterConfig, ClusterSupervisor

__all__ = [
    "ClusterClient",
    "ClusterConfig",
    "ClusterError",
    "ClusterSupervisor",
    "ClusterUnavailable",
    "HashRing",
    "Membership",
    "NoShardsError",
    "Shard",
]
