"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy is intentionally shallow: one base class (:class:`ReproError`)
so callers can catch anything originating from the library, one class per
subsystem boundary so tests can assert on the precise failure site.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class IRError(ReproError):
    """Malformed IR: validation failures, unknown labels, bad operands."""


class VMError(ReproError):
    """Runtime failure inside the virtual machine."""


class MemoryFault(VMError):
    """Access to unmapped or protected simulated memory."""

    def __init__(self, address: int, note: str = "") -> None:
        detail = f"memory fault at address {address:#x}"
        if note:
            detail = f"{detail}: {note}"
        super().__init__(detail)
        self.address = address


class DeadlockError(VMError):
    """Every runnable thread is blocked; the scheduler cannot make progress."""


class AldaError(ReproError):
    """Base class for errors in the ALDA front end."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, col {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AldaSyntaxError(AldaError):
    """Lexical or grammatical error in an ALDA source program."""


class AldaTypeError(AldaError):
    """Semantic error: bad types, undeclared names, restricted constructs."""


class CompileError(ReproError):
    """ALDAcc pipeline failure (layout, codegen, or instrumentation)."""


class ExternalFunctionError(ReproError):
    """An escape-hatch external function was missing or misbehaved."""
