"""ALDA's type system: six primitive types, sync and domain specifiers.

A named type (``address := pointer : sync``) resolves to an
:class:`AldaType` carrying its base primitive, bit width, synchronization
requirement, and optional domain bound (the ``number`` specifier).  The
compiler's layout phase consumes these to pick storage widths and
structures (paper section 4.1: "ALDA compilers can leverage its type
declaration [to] infer a type's domain size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import AldaTypeError

#: base primitive -> bit width
PRIMITIVE_BITS: Dict[str, int] = {
    "int8": 8,
    "int16": 16,
    "int32": 32,
    "int64": 64,
    "pointer": 64,
    "lockid": 64,
    "threadid": 16,
}

#: key kinds with address-space-sized domains (unless bounded)
ADDRESS_LIKE = frozenset({"pointer"})

#: key kinds whose raw values are sparse and need interning when bounded
INTERNABLE = frozenset({"lockid", "pointer"})


@dataclass(frozen=True)
class AldaType:
    """A resolved (possibly named) primitive type."""

    name: str
    base: str
    sync: bool = False
    bound: Optional[int] = None

    @property
    def bits(self) -> int:
        return PRIMITIVE_BITS[self.base]

    @property
    def domain(self) -> Optional[int]:
        """Number of distinct values, when statically known to be small."""
        if self.bound is not None:
            return self.bound
        if self.bits <= 16:
            return 1 << self.bits
        return None

    @property
    def storage_bytes(self) -> int:
        """Bytes needed to store one value, narrowed by a domain bound."""
        if self.bound is not None:
            bits = max(1, (self.bound - 1).bit_length())
            for width in (8, 16, 32, 64):
                if bits <= width:
                    return width // 8
        return self.bits // 8

    @property
    def is_address_like(self) -> bool:
        return self.base in ADDRESS_LIKE and self.bound is None


def builtin_types() -> Dict[str, AldaType]:
    return {name: AldaType(name, name) for name in PRIMITIVE_BITS}


# ----------------------------------------------------------------------
# metadata value shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalarValue:
    """A map value that is a single primitive."""

    type: AldaType

    @property
    def storage_bytes(self) -> int:
        return self.type.storage_bytes


@dataclass(frozen=True)
class SetValue:
    """A map value (or standalone metadata) that is a set of elements."""

    elem: AldaType
    universe: bool = False

    @property
    def fixed_domain(self) -> Optional[int]:
        return self.elem.domain

    @property
    def storage_bytes(self) -> int:
        """Bit-vector bytes when fixed; 8 (a handle) when dynamic."""
        domain = self.fixed_domain
        if domain is not None:
            return max(8, (domain + 7) // 8)
        return 8


ValueShape = Union[ScalarValue, SetValue]


@dataclass(frozen=True)
class MapInfo:
    """A resolved global metadata map declaration."""

    name: str
    key: AldaType
    value: ValueShape
    universe: bool = False

    @property
    def sync(self) -> bool:
        return self.key.sync


@dataclass(frozen=True)
class SetInfo:
    """A resolved global standalone set declaration (rare but legal)."""

    name: str
    value: SetValue


def resolve_type(name: str, table: Dict[str, AldaType], line: int = 0) -> AldaType:
    try:
        return table[name]
    except KeyError:
        raise AldaTypeError(f"unknown type {name!r}", line) from None
