"""Semantic analysis for ALDA programs.

Enforces the language restrictions that make ALDAcc's optimizations
possible (paper sections 3.1.1 and 4.3):

* no loops, no local variables, no pointers/references — guaranteed partly
  by the grammar, partly here (names must resolve to params, consts, or
  global metadata);
* map/set operations are well-typed, and the *only* global state is the
  declared metadata;
* handler calls are non-recursive;
* insertion declarations reference real handlers with matching arity,
  use ``$r`` only with ``after``, and name known instruction kinds.

Produces a :class:`ProgramInfo` carrying resolved symbol tables for the
compiler pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.alda import ast_nodes as ast
from repro.alda.types import (
    AldaType,
    MapInfo,
    ScalarValue,
    SetValue,
    builtin_types,
    resolve_type,
)
from repro.errors import AldaTypeError
from repro.ir.instructions import INSTRUMENTABLE_KINDS

#: expression "types" during checking
_INT = "int"
_VOID = "void"

BUILTIN_FUNCTIONS = {
    "alda_assert": (2, _VOID),
    "ptr_offset": (2, _INT),
}

#: operand counts ($1..$n) available at each instruction insert point
INSTRUCTION_OPERANDS = {
    "LoadInst": 1,
    "StoreInst": 2,
    "AllocaInst": 1,
    "BranchInst": 1,
    "BinaryOperator": 2,
    "CmpInst": 2,
    "ReturnInst": 1,
    "CallInst": 8,  # variadic; allow generous indices
    "ConstInst": 1,
}


@dataclass
class FuncInfo:
    decl: ast.FuncDecl
    param_types: List[AldaType]
    ret_type: Optional[AldaType]

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def param_names(self) -> List[str]:
        return [param.name for param in self.decl.params]


@dataclass
class ProgramInfo:
    """Symbol tables produced by :func:`check_program`."""

    program: ast.Program
    types: Dict[str, AldaType] = field(default_factory=dict)
    consts: Dict[str, int] = field(default_factory=dict)
    maps: Dict[str, MapInfo] = field(default_factory=dict)
    funcs: Dict[str, FuncInfo] = field(default_factory=dict)
    inserts: List[ast.InsertDecl] = field(default_factory=list)
    externals: Set[str] = field(default_factory=set)


def _set_type(elem: AldaType) -> str:
    return f"set({elem.name})"


class _Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.info = ProgramInfo(program, types=builtin_types())

    # ------------------------------------------------------------------
    def run(self) -> ProgramInfo:
        for decl in self.program.type_decls():
            self._declare_type(decl)
        for decl in self.program.const_decls():
            self._declare_const(decl)
        for decl in self.program.meta_decls():
            self._declare_meta(decl)
        for decl in self.program.func_decls():
            self._declare_func(decl)
        for decl in self.program.func_decls():
            self._check_func_body(self.info.funcs[decl.name])
        self._check_no_recursion()
        for decl in self.program.insert_decls():
            self._check_insert(decl)
        return self.info

    # -- declarations ----------------------------------------------------
    def _declare_type(self, decl: ast.TypeDecl) -> None:
        if decl.name in self.info.types:
            raise AldaTypeError(f"duplicate type {decl.name!r}", decl.line)
        base = resolve_type(decl.base, self.info.types, decl.line)
        if decl.bound is not None and decl.bound <= 0:
            raise AldaTypeError(f"domain bound must be positive", decl.line)
        self.info.types[decl.name] = AldaType(
            name=decl.name,
            base=base.base,
            sync=decl.sync or base.sync,
            bound=decl.bound if decl.bound is not None else base.bound,
        )

    def _declare_const(self, decl: ast.ConstDecl) -> None:
        if decl.name in self.info.consts:
            raise AldaTypeError(f"duplicate const {decl.name!r}", decl.line)
        self.info.consts[decl.name] = decl.value

    def _declare_meta(self, decl: ast.MetaDecl) -> None:
        if decl.name in self.info.maps:
            raise AldaTypeError(f"duplicate metadata {decl.name!r}", decl.line)
        mtype = decl.mtype
        universe = mtype.specifier == "universe"
        shape = mtype.shape
        if isinstance(shape, ast.MapType):
            key = resolve_type(shape.key, self.info.types, decl.line)
            value = self._resolve_value(shape.value, decl)
            self.info.maps[decl.name] = MapInfo(
                name=decl.name, key=key, value=value, universe=universe
            )
        elif isinstance(shape, ast.SetType):
            raise AldaTypeError(
                f"standalone set {decl.name!r}: wrap sets in a map "
                "(e.g. map(threadid, set(...))) so they are keyed metadata",
                decl.line,
            )
        else:
            raise AldaTypeError(
                f"metadata {decl.name!r} must be a map; bare scalars have no "
                "program value to associate with",
                decl.line,
            )

    def _resolve_value(self, value_type: ast.MetaType, decl: ast.MetaDecl):
        universe = value_type.specifier == "universe"
        shape = value_type.shape
        if isinstance(shape, ast.SetType):
            elem = resolve_type(shape.elem, self.info.types, decl.line)
            return SetValue(elem=elem, universe=universe)
        if isinstance(shape, ast.MapType):
            raise AldaTypeError(
                f"metadata {decl.name!r}: nested map values are not supported "
                "by this compiler; use an external handle (see FastTrack's "
                "vector clocks) — paper section 4.3 escape hatch",
                decl.line,
            )
        return ScalarValue(type=resolve_type(shape, self.info.types, decl.line))

    def _declare_func(self, decl: ast.FuncDecl) -> None:
        if decl.name in self.info.funcs:
            raise AldaTypeError(f"duplicate handler {decl.name!r}", decl.line)
        if decl.name in self.info.maps or decl.name in self.info.consts:
            raise AldaTypeError(f"{decl.name!r} already names metadata", decl.line)
        param_types = [
            resolve_type(param.type_name, self.info.types, param.line)
            for param in decl.params
        ]
        seen = set()
        for param in decl.params:
            if param.name in seen:
                raise AldaTypeError(f"duplicate parameter {param.name!r}", param.line)
            seen.add(param.name)
        ret_type = (
            resolve_type(decl.ret_type, self.info.types, decl.line)
            if decl.ret_type
            else None
        )
        self.info.funcs[decl.name] = FuncInfo(decl, param_types, ret_type)

    # -- handler bodies -----------------------------------------------------
    def _check_func_body(self, func: FuncInfo) -> None:
        scope = set(func.param_names)
        for statement in func.decl.body:
            self._check_stmt(statement, func, scope)

    def _check_stmt(self, statement: ast.Stmt, func: FuncInfo, scope: Set[str]) -> None:
        if isinstance(statement, ast.If):
            cond = self._check_expr(statement.cond, func, scope)
            if cond == _VOID:
                raise AldaTypeError("void expression in condition", statement.line)
            for child in statement.then_body:
                self._check_stmt(child, func, scope)
            for child in statement.else_body:
                self._check_stmt(child, func, scope)
            return
        if isinstance(statement, ast.Return):
            if func.ret_type is None:
                if statement.value is not None:
                    raise AldaTypeError(
                        f"{func.name} returns a value but declares none",
                        statement.line,
                    )
                return
            if statement.value is None:
                raise AldaTypeError(
                    f"{func.name} must return a {func.ret_type.name}", statement.line
                )
            value = self._check_expr(statement.value, func, scope)
            if value != _INT:
                raise AldaTypeError(
                    f"{func.name} must return a scalar, got {value}", statement.line
                )
            return
        if isinstance(statement, ast.Assign):
            self._check_assign(statement, func, scope)
            return
        if isinstance(statement, ast.ExprStmt):
            self._check_expr(statement.expr, func, scope)
            return
        raise AldaTypeError(f"unknown statement {statement!r}", statement.line)

    def _check_assign(self, statement: ast.Assign, func: FuncInfo, scope: Set[str]) -> None:
        target_type = self._check_index(statement.target, func, scope)
        value_type = self._check_expr(statement.value, func, scope)
        if target_type == _INT:
            if value_type != _INT:
                raise AldaTypeError(
                    f"assigning {value_type} into scalar map entry", statement.line
                )
        elif target_type != value_type:
            raise AldaTypeError(
                f"assigning {value_type} into {target_type} map entry", statement.line
            )

    # -- expressions -----------------------------------------------------------
    def _check_expr(self, expr: ast.Expr, func: FuncInfo, scope: Set[str]) -> str:
        if isinstance(expr, ast.Num):
            return _INT
        if isinstance(expr, ast.Name):
            return self._check_name(expr, scope)
        if isinstance(expr, ast.Unary):
            operand = self._check_expr(expr.operand, func, scope)
            if operand != _INT:
                raise AldaTypeError(f"unary {expr.op!r} needs a scalar", expr.line)
            return _INT
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr, func, scope)
        if isinstance(expr, ast.Index):
            return self._check_index(expr, func, scope)
        if isinstance(expr, ast.MethodCall):
            return self._check_method(expr, func, scope)
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, func, scope)
        raise AldaTypeError(f"unknown expression {expr!r}", getattr(expr, "line", 0))

    def _check_name(self, expr: ast.Name, scope: Set[str]) -> str:
        if expr.ident in scope:
            return _INT
        if expr.ident in self.info.consts:
            return _INT
        if expr.ident in self.info.maps:
            raise AldaTypeError(
                f"map {expr.ident!r} used as a value (index it or call a method)",
                expr.line,
            )
        raise AldaTypeError(
            f"unknown name {expr.ident!r} (ALDA has no local variables)", expr.line
        )

    def _check_binary(self, expr: ast.Binary, func: FuncInfo, scope: Set[str]) -> str:
        lhs = self._check_expr(expr.lhs, func, scope)
        rhs = self._check_expr(expr.rhs, func, scope)
        if lhs == _VOID or rhs == _VOID:
            raise AldaTypeError("void value in expression", expr.line)
        both_sets = lhs.startswith("set(") and rhs.startswith("set(")
        if both_sets:
            if lhs != rhs:
                raise AldaTypeError(f"set type mismatch: {lhs} vs {rhs}", expr.line)
            if expr.op not in ("&", "|"):
                raise AldaTypeError(
                    f"operator {expr.op!r} not defined on sets (only & and |)",
                    expr.line,
                )
            return lhs
        if lhs.startswith("set(") or rhs.startswith("set("):
            raise AldaTypeError(
                f"cannot mix set and scalar in {expr.op!r}", expr.line
            )
        return _INT

    def _map_for(self, name: str, line: int) -> MapInfo:
        map_info = self.info.maps.get(name)
        if map_info is None:
            raise AldaTypeError(f"unknown metadata map {name!r}", line)
        return map_info

    def _check_index(self, expr: ast.Index, func: FuncInfo, scope: Set[str]) -> str:
        map_info = self._map_for(expr.base, expr.line)
        key_type = self._check_expr(expr.key, func, scope)
        if key_type != _INT:
            raise AldaTypeError(f"map key must be scalar, got {key_type}", expr.line)
        if isinstance(map_info.value, SetValue):
            return _set_type(map_info.value.elem)
        return _INT

    def _check_method(self, expr: ast.MethodCall, func: FuncInfo, scope: Set[str]) -> str:
        arg_types = [self._check_expr(arg, func, scope) for arg in expr.args]
        if isinstance(expr.base, ast.Name):
            return self._check_map_method(expr, arg_types)
        return self._check_set_method(expr, arg_types, func, scope)

    def _check_map_method(self, expr: ast.MethodCall, arg_types: List[str]) -> str:
        map_info = self._map_for(expr.base.ident, expr.line)
        value_is_set = isinstance(map_info.value, SetValue)
        value_type = _set_type(map_info.value.elem) if value_is_set else _INT
        if expr.method == "get":
            if len(arg_types) not in (1, 2):
                raise AldaTypeError("map.get takes (k) or (k, n)", expr.line)
            if any(t != _INT for t in arg_types):
                raise AldaTypeError("map.get arguments must be scalars", expr.line)
            return value_type
        if expr.method == "set":
            if len(arg_types) not in (2, 3):
                raise AldaTypeError("map.set takes (k, v) or (k, v, n)", expr.line)
            if arg_types[0] != _INT:
                raise AldaTypeError("map.set key must be a scalar", expr.line)
            if arg_types[1] != value_type:
                raise AldaTypeError(
                    f"map.set value must be {value_type}, got {arg_types[1]}",
                    expr.line,
                )
            if len(arg_types) == 3:
                if value_is_set:
                    raise AldaTypeError(
                        "range map.set is only defined for scalar values", expr.line
                    )
                if arg_types[2] != _INT:
                    raise AldaTypeError("map.set length must be a scalar", expr.line)
            return _VOID
        raise AldaTypeError(
            f"unknown map method {expr.method!r} (only get/set)", expr.line
        )

    def _check_set_method(
        self, expr: ast.MethodCall, arg_types: List[str], func: FuncInfo, scope: Set[str]
    ) -> str:
        base_type = self._check_index(expr.base, func, scope)
        if not base_type.startswith("set("):
            raise AldaTypeError(
                f"method {expr.method!r} on non-set map entry", expr.line
            )
        if expr.method in ("add", "remove", "find"):
            if len(arg_types) != 1 or arg_types[0] != _INT:
                raise AldaTypeError(
                    f"set.{expr.method} takes one scalar element", expr.line
                )
            return _INT if expr.method == "find" else _VOID
        if expr.method == "empty":
            if arg_types:
                raise AldaTypeError("set.empty takes no arguments", expr.line)
            return _INT
        raise AldaTypeError(
            f"unknown set method {expr.method!r} (add/remove/find/empty)", expr.line
        )

    def _check_call(self, expr: ast.CallExpr, func: FuncInfo, scope: Set[str]) -> str:
        arg_types = [self._check_expr(arg, func, scope) for arg in expr.args]
        if any(t == _VOID for t in arg_types):
            raise AldaTypeError("void value passed as argument", expr.line)

        builtin = BUILTIN_FUNCTIONS.get(expr.func)
        if builtin is not None:
            arity, result = builtin
            if len(arg_types) != arity:
                raise AldaTypeError(
                    f"{expr.func} takes {arity} arguments", expr.line
                )
            return result

        callee = self.info.funcs.get(expr.func)
        if callee is not None:
            if len(arg_types) != len(callee.param_types):
                raise AldaTypeError(
                    f"{expr.func} takes {len(callee.param_types)} arguments",
                    expr.line,
                )
            if any(t != _INT for t in arg_types):
                raise AldaTypeError(
                    "handler arguments must be scalars", expr.line
                )
            return _INT if callee.ret_type is not None else _VOID

        # Unknown name: the external-function escape hatch (section 4.3).
        if any(t != _INT for t in arg_types):
            raise AldaTypeError(
                f"external {expr.func!r} arguments must be scalars", expr.line
            )
        self.info.externals.add(expr.func)
        return _INT

    # -- recursion ---------------------------------------------------------
    def _check_no_recursion(self) -> None:
        edges: Dict[str, Set[str]] = {name: set() for name in self.info.funcs}

        def collect(expr, out: Set[str]) -> None:
            if isinstance(expr, ast.CallExpr):
                if expr.func in self.info.funcs:
                    out.add(expr.func)
                for arg in expr.args:
                    collect(arg, out)
            elif isinstance(expr, ast.Binary):
                collect(expr.lhs, out)
                collect(expr.rhs, out)
            elif isinstance(expr, ast.Unary):
                collect(expr.operand, out)
            elif isinstance(expr, ast.Index):
                collect(expr.key, out)
            elif isinstance(expr, ast.MethodCall):
                if isinstance(expr.base, ast.Index):
                    collect(expr.base.key, out)
                for arg in expr.args:
                    collect(arg, out)

        def walk(statements, out: Set[str]) -> None:
            for statement in statements:
                if isinstance(statement, ast.If):
                    collect(statement.cond, out)
                    walk(statement.then_body, out)
                    walk(statement.else_body, out)
                elif isinstance(statement, ast.Return) and statement.value is not None:
                    collect(statement.value, out)
                elif isinstance(statement, ast.Assign):
                    collect(statement.target.key, out)
                    collect(statement.value, out)
                elif isinstance(statement, ast.ExprStmt):
                    collect(statement.expr, out)

        for name, func in self.info.funcs.items():
            walk(func.decl.body, edges[name])

        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in edges}

        def dfs(name: str, path: List[str]) -> None:
            color[name] = GRAY
            for callee in edges[name]:
                if color[callee] == GRAY:
                    cycle = " -> ".join(path + [name, callee])
                    raise AldaTypeError(f"recursive handler calls: {cycle}")
                if color[callee] == WHITE:
                    dfs(callee, path + [name])
            color[name] = BLACK

        for name in edges:
            if color[name] == WHITE:
                dfs(name, [])

    # -- insertion declarations ----------------------------------------------
    def _check_insert(self, decl: ast.InsertDecl) -> None:
        handler = self.info.funcs.get(decl.handler)
        if handler is None:
            raise AldaTypeError(
                f"insertion references unknown handler {decl.handler!r}", decl.line
            )
        if decl.point_kind == "inst" and decl.point_name not in INSTRUMENTABLE_KINDS:
            raise AldaTypeError(
                f"unknown instruction kind {decl.point_name!r} "
                f"(expected one of {sorted(INSTRUMENTABLE_KINDS)})",
                decl.line,
            )
        has_splat = any(arg.base == "p" for arg in decl.args)
        if not has_splat and len(decl.args) != len(handler.param_types):
            raise AldaTypeError(
                f"handler {decl.handler} takes {len(handler.param_types)} "
                f"arguments, insertion passes {len(decl.args)}",
                decl.line,
            )
        if has_splat and len(decl.args) - 1 > len(handler.param_types):
            raise AldaTypeError(
                f"handler {decl.handler} cannot receive $p plus "
                f"{len(decl.args) - 1} fixed arguments",
                decl.line,
            )
        max_operands = (
            INSTRUCTION_OPERANDS.get(decl.point_name, 8)
            if decl.point_kind == "inst"
            else 8
        )
        for arg in decl.args:
            if arg.base == "r":
                # sizeof($r) is static (the instruction's result width) and
                # legal anywhere; the result *value* only exists after.
                if decl.position != "after" and not arg.sizeof:
                    raise AldaTypeError(
                        "$r is only available in 'after' insertions", decl.line
                    )
            elif arg.base.isdigit():
                index = int(arg.base)
                if index < 1 or index > max_operands:
                    raise AldaTypeError(
                        f"${index} out of range for {decl.point_name} "
                        f"(has {max_operands} operands)",
                        decl.line,
                    )
            elif arg.base not in ("p", "t"):
                raise AldaTypeError(f"bad call-arg ${arg.base}", decl.line)
        self.info.inserts.append(decl)


def check_program(program: ast.Program) -> ProgramInfo:
    """Type-check and resolve an ALDA program."""
    return _Checker(program).run()
