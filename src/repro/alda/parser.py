"""Recursive-descent parser for ALDA (grammar of Figure 2).

Entry point: :func:`parse_program`.  The grammar is newline-insensitive;
declarations are distinguished by two-token lookahead (``name :=`` type
declaration, ``name =`` metadata declaration, ``[type] name (`` event
handler, ``insert``/``const`` keywords).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.alda import ast_nodes as ast
from repro.alda.lexer import tokenize
from repro.alda.tokens import PRIMITIVE_TYPES, Token
from repro.errors import AldaSyntaxError

_TYPE_STARTERS = PRIMITIVE_TYPES | {"IDENT"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing --------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise AldaSyntaxError(
                f"expected {kind!r}, found {token.kind!r} ({token.value!r})",
                token.line,
                token.column,
            )
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def _error(self, message: str) -> AldaSyntaxError:
        token = self.peek()
        return AldaSyntaxError(message + f" (found {token.value!r})", token.line, token.column)

    def _ident_like(self) -> Token:
        """An identifier, also accepting keyword spellings (``set``...)."""
        token = self.peek()
        if token.kind == "IDENT" or token.value.isidentifier():
            return self.advance()
        raise self._error("expected an identifier")

    # -- program ----------------------------------------------------------
    def parse_program(self) -> ast.Program:
        decls: List[ast.Decl] = []
        while self.peek().kind != "EOF":
            decls.append(self.parse_decl())
        return ast.Program(decls=decls)

    def parse_decl(self) -> ast.Decl:
        token = self.peek()
        if token.kind == "insert":
            return self.parse_insert_decl()
        if token.kind == "const":
            return self.parse_const_decl()
        one, two = self.peek(1), self.peek(2)
        if token.kind in _TYPE_STARTERS:
            if one.kind == ":=":
                return self.parse_type_decl()
            if one.kind == "=":
                return self.parse_meta_decl()
            if one.kind == "(":
                return self.parse_func_decl(ret_type=None)
            if one.kind == "IDENT" and two.kind == "(":
                return self.parse_func_decl(ret_type=self.advance().value)
        raise self._error("expected a declaration")

    # -- type / const / metadata declarations ------------------------------
    def parse_type_decl(self) -> ast.TypeDecl:
        name = self.expect("IDENT")
        self.expect(":=")
        base = self.peek()
        if base.kind not in PRIMITIVE_TYPES and base.kind != "IDENT":
            raise self._error("expected a type name")
        self.advance()
        sync = False
        bound: Optional[int] = None
        while self.accept(":"):
            if self.accept("sync"):
                sync = True
            else:
                bound = self._parse_int_literal()
        return ast.TypeDecl(
            name=name.value, base=base.value, sync=sync, bound=bound, line=name.line
        )

    def parse_const_decl(self) -> ast.ConstDecl:
        keyword = self.expect("const")
        name = self.expect("IDENT")
        self.expect("=")
        value = self._parse_int_literal()
        self.accept(";")
        return ast.ConstDecl(name=name.value, value=value, line=keyword.line)

    def _parse_int_literal(self) -> int:
        negative = bool(self.accept("-"))
        token = self.expect("NUMBER")
        value = int(token.value, 0)
        return -value if negative else value

    def parse_meta_decl(self) -> ast.MetaDecl:
        name = self.expect("IDENT")
        self.expect("=")
        mtype = self.parse_meta_type()
        return ast.MetaDecl(name=name.value, mtype=mtype, line=name.line)

    def parse_meta_type(self) -> ast.MetaType:
        token = self.peek()
        specifier = None
        if token.kind in ("universe", "bottom"):
            specifier = token.value
            self.advance()
            self.expect("::")
            token = self.peek()
        if token.kind == "map":
            self.advance()
            self.expect("(")
            key = self._type_name()
            self.expect(",")
            value = self.parse_meta_type()
            self.expect(")")
            shape: Union[ast.SetType, ast.MapType, str] = ast.MapType(
                key=key, value=value, line=token.line
            )
        elif token.kind == "set":
            self.advance()
            self.expect("(")
            elem = self._type_name()
            self.expect(")")
            shape = ast.SetType(elem=elem, line=token.line)
        else:
            shape = self._type_name()
        return ast.MetaType(specifier=specifier, shape=shape, line=token.line)

    def _type_name(self) -> str:
        token = self.peek()
        if token.kind in PRIMITIVE_TYPES or token.kind == "IDENT":
            return self.advance().value
        raise self._error("expected a type name")

    # -- event handler declarations ----------------------------------------
    def parse_func_decl(self, ret_type: Optional[str]) -> ast.FuncDecl:
        name = self.expect("IDENT")
        self.expect("(")
        params: List[ast.Param] = []
        if self.peek().kind != ")":
            while True:
                type_name = self._type_name()
                param_name = self.expect("IDENT")
                params.append(
                    ast.Param(type_name=type_name, name=param_name.value, line=param_name.line)
                )
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return ast.FuncDecl(
            name=name.value, ret_type=ret_type, params=params, body=body, line=name.line
        )

    def parse_block(self) -> List[ast.Stmt]:
        self.expect("{")
        statements: List[ast.Stmt] = []
        while self.peek().kind != "}":
            statements.append(self.parse_stmt())
        self.expect("}")
        return statements

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "return":
            self.advance()
            value = None
            if self.peek().kind != ";":
                value = self.parse_expr()
            self.expect(";")
            return ast.Return(value=value, line=token.line)
        expr = self.parse_expr()
        if self.peek().kind == "=":
            if not isinstance(expr, ast.Index):
                raise self._error("only map entries (m[k]) may be assigned")
            self.advance()
            value = self.parse_expr()
            self.expect(";")
            return ast.Assign(target=expr, value=value, line=token.line)
        self.expect(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def parse_if(self) -> ast.If:
        token = self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_body = self.parse_block()
        else_body: List[ast.Stmt] = []
        if self.accept("else"):
            if self.peek().kind == "if":
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, line=token.line)

    # -- expressions ---------------------------------------------------------
    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        expr = self.parse_expr(level + 1)
        while self.peek().kind in self._BINARY_LEVELS[level]:
            op = self.advance()
            rhs = self.parse_expr(level + 1)
            expr = ast.Binary(op=op.value, lhs=expr, rhs=rhs, line=op.line)
        return expr

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "!":
            self.advance()
            return ast.Unary(op="!", operand=self.parse_unary(), line=token.line)
        if token.kind == "-":
            self.advance()
            operand = self.parse_unary()
            if isinstance(operand, ast.Num):
                return ast.Num(value=-operand.value, line=token.line)
            return ast.Unary(op="-", operand=operand, line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "[":
                if not isinstance(expr, ast.Name):
                    raise self._error("only metadata maps may be indexed")
                self.advance()
                key = self.parse_expr()
                self.expect("]")
                expr = ast.Index(base=expr.ident, key=key, line=token.line)
            elif token.kind == ".":
                if not isinstance(expr, (ast.Name, ast.Index)):
                    raise self._error("method calls require a map or map entry")
                self.advance()
                method = self._ident_like()
                self.expect("(")
                args = self._parse_call_args()
                self.expect(")")
                expr = ast.MethodCall(
                    base=expr, method=method.value, args=args, line=token.line
                )
            elif token.kind == "(" and isinstance(expr, ast.Name):
                self.advance()
                args = self._parse_call_args()
                self.expect(")")
                expr = ast.CallExpr(func=expr.ident, args=args, line=token.line)
            else:
                return expr

    def _parse_call_args(self) -> List[ast.Expr]:
        args: List[ast.Expr] = []
        if self.peek().kind != ")":
            while True:
                args.append(self.parse_expr())
                if not self.accept(","):
                    break
        return args

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return ast.Num(value=int(token.value, 0), line=token.line)
        if token.kind == "IDENT":
            self.advance()
            return ast.Name(ident=token.value, line=token.line)
        if token.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self._error("expected an expression")

    # -- insertion declarations ------------------------------------------------
    def parse_insert_decl(self) -> ast.InsertDecl:
        keyword = self.expect("insert")
        position_token = self.peek()
        if position_token.kind not in ("before", "after"):
            raise self._error("expected 'before' or 'after'")
        self.advance()

        if self.accept("func"):
            point_kind = "func"
            point_name = self._ident_like().value
        else:
            point_kind = "inst"
            point_name = self.expect("IDENT").value

        self.expect("call")
        handler = self.expect("IDENT").value
        self.expect("(")
        args: List[ast.CallArg] = []
        if self.peek().kind != ")":
            while True:
                args.append(self.parse_call_arg())
                if not self.accept(","):
                    break
        self.expect(")")
        return ast.InsertDecl(
            position=position_token.value,
            point_kind=point_kind,
            point_name=point_name,
            handler=handler,
            args=args,
            line=keyword.line,
        )

    def parse_call_arg(self) -> ast.CallArg:
        token = self.peek()
        if token.kind == "sizeof":
            self.advance()
            self.expect("(")
            base = self.expect("DOLLAR")
            self.expect(")")
            return ast.CallArg(base=base.value, sizeof=True, line=token.line)
        base = self.expect("DOLLAR")
        metadata = False
        if self.peek().kind == ".":
            self.advance()
            member = self._ident_like()
            if member.value != "m":
                raise AldaSyntaxError(
                    f"unknown call-arg member {member.value!r} (only '.m')",
                    member.line,
                    member.column,
                )
            metadata = True
        return ast.CallArg(base=base.value, metadata=metadata, line=token.line)


def parse_program(source: str) -> ast.Program:
    """Parse ALDA source text into a :class:`repro.alda.ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()
