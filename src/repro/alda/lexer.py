"""Hand-written lexer for ALDA.

Supports ``//`` line comments, ``/* */`` block comments, decimal and
hexadecimal integer literals, the ``$``-prefixed call-arg bases of
insertion declarations, and maximal-munch operator scanning.
"""

from __future__ import annotations

from typing import List

from repro.alda.tokens import KEYWORDS, OPERATORS, Token
from repro.errors import AldaSyntaxError


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    position = 0
    line = 1
    line_start = 0
    length = len(source)

    def column() -> int:
        return position - line_start + 1

    while position < length:
        char = source[position]

        if char == "\n":
            position += 1
            line += 1
            line_start = position
            continue
        if char in " \t\r":
            position += 1
            continue

        if source.startswith("//", position):
            newline = source.find("\n", position)
            position = length if newline == -1 else newline
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise AldaSyntaxError("unterminated block comment", line, column())
            skipped = source[position : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                line_start = position + skipped.rfind("\n") + 1
            position = end + 2
            continue

        if char == "$":
            start_col = column()
            position += 1
            if position < length and source[position].isdigit():
                start = position
                while position < length and source[position].isdigit():
                    position += 1
                tokens.append(Token("DOLLAR", source[start:position], line, start_col))
                continue
            if position < length and source[position] in "rpt":
                # $r / $p / $t — a single letter, not the prefix of an ident
                letter = source[position]
                after = source[position + 1] if position + 1 < length else ""
                if not (after.isalnum() or after == "_"):
                    position += 1
                    tokens.append(Token("DOLLAR", letter, line, start_col))
                    continue
            raise AldaSyntaxError("bad $-argument (expected $<n>, $r, $p or $t)", line, start_col)

        if char.isdigit():
            start = position
            start_col = column()
            if source.startswith("0x", position) or source.startswith("0X", position):
                position += 2
                while position < length and (
                    source[position].isdigit() or source[position] in "abcdefABCDEF"
                ):
                    position += 1
            else:
                while position < length and source[position].isdigit():
                    position += 1
            tokens.append(Token("NUMBER", source[start:position], line, start_col))
            continue

        if char.isalpha() or char == "_":
            start = position
            start_col = column()
            while position < length and (source[position].isalnum() or source[position] == "_"):
                position += 1
            word = source[start:position]
            kind = word if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, line, start_col))
            continue

        for operator in OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token(operator, operator, line, column()))
                position += len(operator)
                break
        else:
            raise AldaSyntaxError(f"unexpected character {char!r}", line, column())

    tokens.append(Token("EOF", "", line, column()))
    return tokens
