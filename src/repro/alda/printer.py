"""Unparser: ALDA AST back to canonical source text.

Enables printable combined analyses (``combine_sources`` works on ASTs),
debugging of compiler phases, and the parse/print round-trip property
tests.  The output re-parses to a structurally identical AST.
"""

from __future__ import annotations

from typing import List

from repro.alda import ast_nodes as ast
from repro.errors import ReproError

_INDENT = "  "

# precedence table mirroring the parser's levels (higher binds tighter)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "+": 8,
    "-": 8,
    "*": 9,
    "/": 9,
    "%": 9,
}
_UNARY_PRECEDENCE = 10


def print_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        text = f"{expr.op}{print_expr(expr.operand, _UNARY_PRECEDENCE)}"
        return f"({text})" if parent_precedence > _UNARY_PRECEDENCE else text
    if isinstance(expr, ast.Binary):
        precedence = _PRECEDENCE[expr.op]
        lhs = print_expr(expr.lhs, precedence)
        rhs = print_expr(expr.rhs, precedence + 1)  # left-associative
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if parent_precedence > precedence else text
    if isinstance(expr, ast.Index):
        return f"{expr.base}[{print_expr(expr.key)}]"
    if isinstance(expr, ast.MethodCall):
        base = print_expr(expr.base)
        args = ", ".join(print_expr(arg) for arg in expr.args)
        return f"{base}.{expr.method}({args})"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(print_expr(arg) for arg in expr.args)
        return f"{expr.func}({args})"
    raise ReproError(f"cannot print expression {expr!r}")


def _print_stmt(stmt: ast.Stmt, depth: int, out: List[str]) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, ast.If):
        out.append(f"{pad}if ({print_expr(stmt.cond)}) {{")
        for child in stmt.then_body:
            _print_stmt(child, depth + 1, out)
        if stmt.else_body:
            out.append(f"{pad}}} else {{")
            for child in stmt.else_body:
                _print_stmt(child, depth + 1, out)
        out.append(f"{pad}}}")
        return
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {print_expr(stmt.value)};")
        return
    if isinstance(stmt, ast.Assign):
        out.append(
            f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)};"
        )
        return
    if isinstance(stmt, ast.ExprStmt):
        out.append(f"{pad}{print_expr(stmt.expr)};")
        return
    raise ReproError(f"cannot print statement {stmt!r}")


def _print_meta_type(mtype: ast.MetaType) -> str:
    prefix = f"{mtype.specifier}::" if mtype.specifier else ""
    shape = mtype.shape
    if isinstance(shape, ast.MapType):
        return f"{prefix}map({shape.key}, {_print_meta_type(shape.value)})"
    if isinstance(shape, ast.SetType):
        return f"{prefix}set({shape.elem})"
    return f"{prefix}{shape}"


def _print_call_arg(arg: ast.CallArg) -> str:
    base = f"${arg.base}"
    if arg.sizeof:
        return f"sizeof({base})"
    if arg.metadata:
        return f"{base}.m"
    return base


def print_decl(decl: ast.Decl) -> str:
    if isinstance(decl, ast.TypeDecl):
        text = f"{decl.name} := {decl.base}"
        if decl.sync:
            text += " : sync"
        if decl.bound is not None:
            text += f" : {decl.bound}"
        return text
    if isinstance(decl, ast.ConstDecl):
        return f"const {decl.name} = {decl.value}"
    if isinstance(decl, ast.MetaDecl):
        return f"{decl.name} = {_print_meta_type(decl.mtype)}"
    if isinstance(decl, ast.FuncDecl):
        ret = f"{decl.ret_type} " if decl.ret_type else ""
        params = ", ".join(f"{p.type_name} {p.name}" for p in decl.params)
        lines = [f"{ret}{decl.name}({params}) {{"]
        for stmt in decl.body:
            _print_stmt(stmt, 1, lines)
        lines.append("}")
        return "\n".join(lines)
    if isinstance(decl, ast.InsertDecl):
        point = (
            f"func {decl.point_name}"
            if decl.point_kind == "func"
            else decl.point_name
        )
        args = ", ".join(_print_call_arg(arg) for arg in decl.args)
        return f"insert {decl.position} {point} call {decl.handler}({args})"
    raise ReproError(f"cannot print declaration {decl!r}")


def print_program(program: ast.Program) -> str:
    """Canonical source text of a whole ALDA program."""
    return "\n".join(print_decl(decl) for decl in program.decls) + "\n"
