"""Developer tool for ALDA source files.

Usage::

    python -m repro.alda check analysis.alda          # parse + type check
    python -m repro.alda lint analysis.alda           # flag dead declarations
    python -m repro.alda layout analysis.alda         # show chosen structures
    python -m repro.alda codegen analysis.alda        # show generated handlers
    python -m repro.alda fmt analysis.alda            # canonical formatting
    python -m repro.alda layout --granularity 1 --no-coalesce analysis.alda
"""

from __future__ import annotations

import argparse
import sys

from repro.alda.parser import parse_program
from repro.alda.printer import print_program
from repro.alda.semantics import check_program
from repro.errors import ReproError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.alda",
        description="Check, inspect, and format ALDA analyses.",
    )
    parser.add_argument(
        "command", choices=("check", "lint", "layout", "codegen", "fmt")
    )
    parser.add_argument("file", help="ALDA source file")
    parser.add_argument("--granularity", type=int, default=8)
    parser.add_argument("--no-coalesce", action="store_true")
    parser.add_argument("--no-cse", action="store_true")
    parser.add_argument("--shadow-factor-threshold", type=float, default=3.0)
    args = parser.parse_args(argv)

    with open(args.file) as handle:
        source = handle.read()

    try:
        program = parse_program(source)
        info = check_program(program)
    except ReproError as error:
        print(f"{args.file}: {error}", file=sys.stderr)
        return 1

    if args.command == "check":
        print(
            f"{args.file}: OK — {len(info.maps)} map(s), "
            f"{len(info.funcs)} handler(s), {len(info.inserts)} insertion(s)"
        )
        if info.externals:
            print(f"  external functions: {sorted(info.externals)}")
        return 0

    if args.command == "lint":
        from repro.alda.lint import lint_program

        diagnostics = lint_program(info)
        for diag in diagnostics:
            print(f"{args.file}:{diag}")
        if not diagnostics:
            print(f"{args.file}: clean")
        return 1 if diagnostics else 0

    if args.command == "fmt":
        print(print_program(program), end="")
        return 0

    from repro.compiler import CompileOptions, compile_analysis

    options = CompileOptions(
        granularity=args.granularity,
        coalesce=not args.no_coalesce,
        cse=not args.no_cse,
        shadow_factor_threshold=args.shadow_factor_threshold,
        analysis_name=args.file,
    )
    try:
        analysis = compile_analysis(info, options)
    except ReproError as error:
        print(f"{args.file}: {error}", file=sys.stderr)
        return 1

    if args.command == "layout":
        print(analysis.layout.describe())
        return 0
    print(analysis.source)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
