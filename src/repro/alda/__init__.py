"""ALDA front end: lexer, parser, type system, and semantic checker.

The language implemented here follows Figure 2 of the paper plus the
documented extension of ``const NAME = <int>`` declarations (the paper's
Eraser listing uses symbolic states without declaring them).

Typical use::

    from repro.alda import parse_program, check_program

    program = parse_program(source_text)   # -> ast_nodes.Program
    info = check_program(program)          # -> semantics.ProgramInfo
"""

from repro.alda.lexer import tokenize
from repro.alda.parser import parse_program
from repro.alda.printer import print_program
from repro.alda.semantics import ProgramInfo, check_program

__all__ = [
    "ProgramInfo",
    "check_program",
    "parse_program",
    "print_program",
    "tokenize",
]
