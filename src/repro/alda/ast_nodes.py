"""Abstract syntax tree for ALDA programs.

Node classes follow Figure 2 of the paper: four top-level declaration
kinds (types, consts [extension], metadata, event handlers, insertion
points) and a restricted statement/expression language for handler
bodies — if/return/expression statements only, no loops, no local
variables, no pointers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass
class Num(Node):
    value: int = 0


@dataclass
class Name(Node):
    ident: str = ""


@dataclass
class Unary(Node):
    op: str = "!"
    operand: "Expr" = None


@dataclass
class Binary(Node):
    op: str = "+"
    lhs: "Expr" = None
    rhs: "Expr" = None


@dataclass
class Index(Node):
    """``mapname[key]`` — read or (as an Assign target) write."""

    base: str = ""
    key: "Expr" = None


@dataclass
class MethodCall(Node):
    """``base.method(args)`` where base is a map name or a map index.

    Map methods: ``set``, ``get`` (incl. range forms).  Set methods:
    ``add``, ``remove``, ``find``, ``empty``.
    """

    base: Union[Name, Index] = None
    method: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class CallExpr(Node):
    """Call to another handler, a builtin, or an external C function."""

    func: str = ""
    args: List["Expr"] = field(default_factory=list)


Expr = Union[Num, Name, Unary, Binary, Index, MethodCall, CallExpr]


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class ExprStmt(Node):
    expr: Expr = None


@dataclass
class Assign(Node):
    """``mapname[key] = value`` — the only assignment form in ALDA."""

    target: Index = None
    value: Expr = None


@dataclass
class If(Node):
    cond: Expr = None
    then_body: List["Stmt"] = field(default_factory=list)
    else_body: List["Stmt"] = field(default_factory=list)


@dataclass
class Return(Node):
    value: Optional[Expr] = None


Stmt = Union[ExprStmt, Assign, If, Return]


# ----------------------------------------------------------------------
# declarations
# ----------------------------------------------------------------------
@dataclass
class TypeDecl(Node):
    """``name := base (: sync)? (: N)?``"""

    name: str = ""
    base: str = "int64"
    sync: bool = False
    bound: Optional[int] = None


@dataclass
class ConstDecl(Node):
    """``const NAME = <int>`` (documented extension)."""

    name: str = ""
    value: int = 0


@dataclass
class SetType(Node):
    elem: str = ""


@dataclass
class MapType(Node):
    key: str = ""
    value: "MetaType" = None


@dataclass
class MetaType(Node):
    """``(universe::|bottom::)? (map(...) | set(...) | typename)``"""

    specifier: Optional[str] = None  # "universe" | "bottom" | None
    shape: Union[SetType, MapType, str] = ""


@dataclass
class MetaDecl(Node):
    name: str = ""
    mtype: MetaType = None


@dataclass
class Param(Node):
    type_name: str = ""
    name: str = ""


@dataclass
class FuncDecl(Node):
    name: str = ""
    ret_type: Optional[str] = None
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class CallArg(Node):
    """A ``call-arg`` from Table 2: ``$i``/``$r``/``$p``/``$t`` with
    optional ``.m`` (local metadata) or ``sizeof(...)`` wrapping."""

    base: str = ""  # digit string, "r", "p" or "t"
    metadata: bool = False
    sizeof: bool = False


@dataclass
class InsertDecl(Node):
    position: str = "after"  # "before" | "after"
    point_kind: str = "inst"  # "inst" | "func"
    point_name: str = ""  # instruction kind or function name
    handler: str = ""
    args: List[CallArg] = field(default_factory=list)


Decl = Union[TypeDecl, ConstDecl, MetaDecl, FuncDecl, InsertDecl]


@dataclass
class Program(Node):
    decls: List[Decl] = field(default_factory=list)

    def type_decls(self) -> List[TypeDecl]:
        return [d for d in self.decls if isinstance(d, TypeDecl)]

    def const_decls(self) -> List[ConstDecl]:
        return [d for d in self.decls if isinstance(d, ConstDecl)]

    def meta_decls(self) -> List[MetaDecl]:
        return [d for d in self.decls if isinstance(d, MetaDecl)]

    def func_decls(self) -> List[FuncDecl]:
        return [d for d in self.decls if isinstance(d, FuncDecl)]

    def insert_decls(self) -> List[InsertDecl]:
        return [d for d in self.decls if isinstance(d, InsertDecl)]
