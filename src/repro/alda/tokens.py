"""Token definitions for the ALDA lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Keyword spellings.  ``set``/``map`` double as method names after ``.``;
# the parser accepts keyword tokens in member position.
KEYWORDS = frozenset(
    {
        "insert",
        "before",
        "after",
        "call",
        "func",
        "sizeof",
        "set",
        "map",
        "universe",
        "bottom",
        "sync",
        "const",
        "if",
        "else",
        "return",
        "int8",
        "int16",
        "int32",
        "int64",
        "pointer",
        "lockid",
        "threadid",
    }
)

PRIMITIVE_TYPES = frozenset(
    {"int8", "int16", "int32", "int64", "pointer", "lockid", "threadid"}
)

# Multi-character operators first (maximal munch).
OPERATORS = (
    ":=",
    "::",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    ":",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: ``IDENT``, ``NUMBER``, ``DOLLAR`` (call-arg base:
    value is the digit string, ``"r"``, ``"p"`` or ``"t"``), a keyword
    spelling, an operator spelling, or ``EOF``.
    """

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.column})"
