"""aldalint: diagnostics over a checked ALDA program.

Three classes of dead weight the type checker accepts but an author
almost certainly did not intend:

* ``unused-map`` — a map/set declaration no handler body ever reads or
  writes;
* ``unbound-handler`` — a handler no insertion declaration binds and no
  bound handler calls (directly or transitively): it can never run;
* ``constant-assert`` — an ``alda_assert`` whose actual and expected
  operands both fold to the same constant: the check can never fire;
* ``inconsistent-lock-guard`` — a handler bound to a non-sync event
  reads lock-dependent metadata (a map keyed by ``lockid`` or holding
  ``lockid`` values), but the spec subscribes to neither ``mutex_lock``
  nor ``mutex_unlock``: nothing ever maintains the locksets, so the
  reads see stale or empty state on every event.

``lint_program`` works on the :class:`repro.alda.semantics.ProgramInfo`
the checker produced, so it sees resolved constants.  The CLI is
``python -m repro.alda lint <file>`` (exit status 1 when anything is
flagged); ``tests/alda/test_lint.py`` sweeps every bundled analysis in
``src/repro/analyses`` and requires them all clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.alda import ast_nodes as ast
from repro.alda.semantics import ProgramInfo
from repro.alda.types import MapInfo, ScalarValue, SetValue

#: function insert points that observe synchronization
_SYNC_POINTS = frozenset({"mutex_lock", "mutex_unlock"})


@dataclass(frozen=True)
class Diagnostic:
    code: str
    message: str
    line: int = 0

    def __str__(self) -> str:
        return f"line {self.line}: {self.code}: {self.message}"


# ----------------------------------------------------------------------
# AST walking helpers
# ----------------------------------------------------------------------
def _walk_exprs(stmts: Iterable[ast.Stmt]):
    """Yield every expression node in a handler body, depth first."""
    stack: List[object] = list(stmts)
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, ast.ExprStmt):
            stack.append(node.expr)
        elif isinstance(node, ast.Assign):
            stack.append(node.target)
            stack.append(node.value)
        elif isinstance(node, ast.If):
            stack.append(node.cond)
            stack.extend(node.then_body)
            stack.extend(node.else_body)
        elif isinstance(node, ast.Return):
            stack.append(node.value)
        else:  # an expression node
            yield node
            if isinstance(node, ast.Unary):
                stack.append(node.operand)
            elif isinstance(node, ast.Binary):
                stack.append(node.lhs)
                stack.append(node.rhs)
            elif isinstance(node, ast.Index):
                stack.append(node.key)
            elif isinstance(node, ast.MethodCall):
                stack.append(node.base)
                stack.extend(node.args)
            elif isinstance(node, (ast.CallExpr,)):
                stack.extend(node.args)


def _maps_used(body: Iterable[ast.Stmt]) -> Set[str]:
    used = set()
    for expr in _walk_exprs(body):
        if isinstance(expr, ast.Index):
            used.add(expr.base)
        elif isinstance(expr, ast.MethodCall):
            base = expr.base
            if isinstance(base, ast.Name):
                used.add(base.ident)
            elif isinstance(base, ast.Index):
                used.add(base.base)
    return used


def _calls_made(body: Iterable[ast.Stmt]) -> Set[str]:
    return {
        expr.func for expr in _walk_exprs(body)
        if isinstance(expr, ast.CallExpr)
    }


# ----------------------------------------------------------------------
# constant folding (for the alda_assert check)
# ----------------------------------------------------------------------
def _fold(expr, consts: Dict[str, int]) -> Optional[int]:
    """Fold an expression to an int, or None if it is not constant."""
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Name):
        return consts.get(expr.ident)
    if isinstance(expr, ast.Unary):
        value = _fold(expr.operand, consts)
        if value is None:
            return None
        if expr.op == "!":
            return 0 if value else 1
        if expr.op == "-":
            return -value
        return None
    if isinstance(expr, ast.Binary):
        lhs = _fold(expr.lhs, consts)
        rhs = _fold(expr.rhs, consts)
        if lhs is None or rhs is None:
            return None
        op = expr.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return None if rhs == 0 else lhs // rhs
        if op == "==":
            return 1 if lhs == rhs else 0
        if op == "!=":
            return 1 if lhs != rhs else 0
        if op == "<":
            return 1 if lhs < rhs else 0
        if op == "<=":
            return 1 if lhs <= rhs else 0
        if op == ">":
            return 1 if lhs > rhs else 0
        if op == ">=":
            return 1 if lhs >= rhs else 0
        if op == "&&":
            return 1 if (lhs and rhs) else 0
        if op == "||":
            return 1 if (lhs or rhs) else 0
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        return None
    return None


def _lock_dependent(info: MapInfo) -> bool:
    """Does this metadata map carry lock identities?"""
    if info.key.base == "lockid":
        return True
    value = info.value
    if isinstance(value, SetValue):
        return value.elem.base == "lockid"
    if isinstance(value, ScalarValue):
        return value.type.base == "lockid"
    return False


# ----------------------------------------------------------------------
# the linter
# ----------------------------------------------------------------------
def lint_program(info: ProgramInfo) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    # unused-map: no handler body references the declaration.
    used_maps: Set[str] = set()
    for func in info.funcs.values():
        used_maps |= _maps_used(func.decl.body)
    for decl in info.program.meta_decls():
        if decl.name not in used_maps:
            diagnostics.append(Diagnostic(
                "unused-map",
                f"map/set {decl.name!r} is declared but never used",
                decl.line,
            ))

    # unbound-handler: unreachable from any insertion declaration.
    bound = {decl.handler for decl in info.inserts if decl.handler in info.funcs}
    reachable = set()
    frontier = list(bound)
    while frontier:
        name = frontier.pop()
        if name in reachable or name not in info.funcs:
            continue
        reachable.add(name)
        frontier.extend(_calls_made(info.funcs[name].decl.body))
    for name, func in info.funcs.items():
        if name not in reachable:
            diagnostics.append(Diagnostic(
                "unbound-handler",
                f"handler {name!r} is never bound by an insertion "
                f"declaration (and never called from one that is)",
                func.decl.line,
            ))

    # constant-assert: alda_assert(actual, expected) with both operands
    # constant-foldable and equal — the check can never fire.
    for func in info.funcs.values():
        for expr in _walk_exprs(func.decl.body):
            if not isinstance(expr, ast.CallExpr) or expr.func != "alda_assert":
                continue
            if len(expr.args) != 2:
                continue
            actual = _fold(expr.args[0], info.consts)
            expected = _fold(expr.args[1], info.consts)
            if actual is not None and expected is not None and actual == expected:
                diagnostics.append(Diagnostic(
                    "constant-assert",
                    f"alda_assert in {func.name!r} is constant-foldably "
                    f"always-true ({actual} == {expected}); it can never "
                    f"report",
                    expr.line,
                ))

    # inconsistent-lock-guard: lock-dependent metadata is read from
    # handlers bound to ordinary events while the spec never observes
    # mutex_lock/mutex_unlock, so no handler can ever maintain it.
    lock_maps = {
        name for name, minfo in info.maps.items() if _lock_dependent(minfo)
    }
    observes_sync = any(
        decl.point_kind == "func" and decl.point_name in _SYNC_POINTS
        for decl in info.inserts
    )
    if lock_maps and not observes_sync:
        for name in sorted(reachable):
            func = info.funcs[name]
            used = _maps_used(func.decl.body) & lock_maps
            if used:
                diagnostics.append(Diagnostic(
                    "inconsistent-lock-guard",
                    f"handler {name!r} reads lock-dependent metadata "
                    f"({', '.join(sorted(used))}) but the spec subscribes "
                    f"to neither mutex_lock nor mutex_unlock; the "
                    f"locksets are never maintained",
                    func.decl.line,
                ))

    diagnostics.sort(key=lambda d: (d.line, d.code))
    return diagnostics
