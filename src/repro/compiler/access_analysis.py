"""Phase 1: static analysis of metadata access behaviour.

Because ALDA forbids pointers, loops, and local variables, *every* global
metadata access in a handler is syntactically a map index or a map method
call (paper section 3.2.1: "Our analysis can trivially identify these
sites by iterating the statements of the analysis body").  This phase
collects them, records which maps are accessed together under equivalent
keys, and classifies keys as *hoistable* (built only from parameters,
constants and arithmetic — safe to look up once per event) or not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.alda import ast_nodes as ast
from repro.alda.semantics import FuncInfo, ProgramInfo


@dataclass(frozen=True)
class MapAccess:
    """One static metadata access site."""

    handler: str
    map_name: str
    key_repr: str  # canonical key spelling; "<range>" suffix for range ops
    kind: str  # "read" | "write" | "range_read" | "range_write"
    hoistable: bool


@dataclass
class AccessSummary:
    """All access sites, plus derived co-access facts."""

    accesses: List[MapAccess] = field(default_factory=list)
    #: (handler, key_repr) -> set of map names accessed under that key
    co_access: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)

    def maps_accessed_together(self) -> List[Set[str]]:
        """Map groups observed sharing a key at some site (co-location hints)."""
        groups = [names for names in self.co_access.values() if len(names) > 1]
        merged: List[Set[str]] = []
        for names in groups:
            for existing in merged:
                if existing & names:
                    existing |= names
                    break
            else:
                merged.append(set(names))
        return merged

    def per_handler_lookups(self, handler: str) -> int:
        return sum(1 for access in self.accesses if access.handler == handler)


def key_repr(expr: ast.Expr) -> str:
    """Canonical spelling of a key expression for equivalence tests."""
    if isinstance(expr, ast.Num):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        return f"({expr.op}{key_repr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({key_repr(expr.lhs)}{expr.op}{key_repr(expr.rhs)})"
    if isinstance(expr, ast.Index):
        return f"{expr.base}[{key_repr(expr.key)}]"
    if isinstance(expr, ast.MethodCall):
        base = key_repr(expr.base)
        args = ",".join(key_repr(arg) for arg in expr.args)
        return f"{base}.{expr.method}({args})"
    if isinstance(expr, ast.CallExpr):
        args = ",".join(key_repr(arg) for arg in expr.args)
        return f"{expr.func}({args})"
    return repr(expr)


def is_hoistable_key(expr: ast.Expr) -> bool:
    """True when the key depends only on params/consts/arithmetic.

    Keys containing map reads or calls are looked up inline at each use:
    an earlier statement could have changed the value feeding the key.
    """
    if isinstance(expr, (ast.Num, ast.Name)):
        return True
    if isinstance(expr, ast.Unary):
        return is_hoistable_key(expr.operand)
    if isinstance(expr, ast.Binary):
        return is_hoistable_key(expr.lhs) and is_hoistable_key(expr.rhs)
    return False


class _Collector:
    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self.summary = AccessSummary()

    def run(self) -> AccessSummary:
        for func in self.info.funcs.values():
            self._walk_stmts(func.decl.body, func)
        return self.summary

    def _record(self, func: FuncInfo, map_name: str, key: ast.Expr, kind: str) -> None:
        repr_ = key_repr(key)
        access = MapAccess(
            handler=func.name,
            map_name=map_name,
            key_repr=repr_,
            kind=kind,
            hoistable=is_hoistable_key(key),
        )
        self.summary.accesses.append(access)
        self.summary.co_access.setdefault((func.name, repr_), set()).add(map_name)

    # -- traversal -------------------------------------------------------
    def _walk_stmts(self, statements: List[ast.Stmt], func: FuncInfo) -> None:
        for statement in statements:
            if isinstance(statement, ast.If):
                self._walk_expr(statement.cond, func)
                self._walk_stmts(statement.then_body, func)
                self._walk_stmts(statement.else_body, func)
            elif isinstance(statement, ast.Return):
                if statement.value is not None:
                    self._walk_expr(statement.value, func)
            elif isinstance(statement, ast.Assign):
                self._walk_expr(statement.target.key, func)
                self._record(func, statement.target.base, statement.target.key, "write")
                self._walk_expr(statement.value, func)
            elif isinstance(statement, ast.ExprStmt):
                self._walk_expr(statement.expr, func)

    def _walk_expr(self, expr: ast.Expr, func: FuncInfo) -> None:
        if isinstance(expr, ast.Index):
            self._walk_expr(expr.key, func)
            self._record(func, expr.base, expr.key, "read")
        elif isinstance(expr, ast.Binary):
            self._walk_expr(expr.lhs, func)
            self._walk_expr(expr.rhs, func)
        elif isinstance(expr, ast.Unary):
            self._walk_expr(expr.operand, func)
        elif isinstance(expr, ast.MethodCall):
            for arg in expr.args:
                self._walk_expr(arg, func)
            if isinstance(expr.base, ast.Index):
                self._walk_expr(expr.base.key, func)
                kind = "read" if expr.method in ("find", "empty") else "write"
                self._record(func, expr.base.base, expr.base.key, kind)
            else:
                map_name = expr.base.ident
                if expr.method == "get":
                    kind = "range_read" if len(expr.args) == 2 else "read"
                else:
                    kind = "range_write" if len(expr.args) == 3 else "write"
                self._record(func, map_name, expr.args[0], kind)
        elif isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                self._walk_expr(arg, func)


def analyze_accesses(info: ProgramInfo) -> AccessSummary:
    """Collect every metadata access site of every handler."""
    return _Collector(info).run()
