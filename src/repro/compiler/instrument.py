"""Phase 4: runtime-structure construction and hook registration.

``build_maps`` materializes a :class:`LayoutPlan` into live runtime
structures (one :class:`CoalescedMap` per group, over the selected backing
structure); ``register_adapters`` installs the generated event adapters
into a VM :class:`~repro.vm.events.Hooks` table.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.compiler.layout import FieldPlan, GroupPlan, LayoutPlan
from repro.errors import CompileError
from repro.runtime.array_map import ArrayMap
from repro.runtime.bitvector import BitVecSet
from repro.runtime.hash_map import HashMap
from repro.runtime.metadata import CoalescedMap, FieldSpec
from repro.runtime.page_table import PageTableMap
from repro.runtime.shadow_memory import ShadowMemory
from repro.runtime.sync import SyncPolicy
from repro.runtime.tree_set import TreeSet


def _field_default(plan: FieldPlan, meter, space) -> Callable[[], object]:
    if plan.repr == "int":
        return lambda: plan.default_int
    if plan.repr == "bitvec":
        domain = plan.set_domain
        if plan.set_universe:
            return lambda: BitVecSet.universe(domain, meter)
        return lambda: BitVecSet.empty(domain, meter)
    if plan.repr == "treeset":
        if plan.set_universe:
            raise CompileError(
                f"{plan.map_name}: universe sets need a bounded element domain "
                "(add a ': N' bound to the element type)"
            )
        return lambda: TreeSet(meter, space)
    raise CompileError(f"unknown field representation {plan.repr!r}")


def _build_impl(plan: GroupPlan, meter, space, make_values):
    name = plan.group.name
    if plan.structure == "array":
        # Sparse keys (bounded lockids) are already interned to dense ids
        # at the handler boundary (see codegen), so the array indexes raw.
        return ArrayMap(
            meter,
            space,
            value_bytes=plan.value_bytes,
            domain=plan.key_domain,
            make_values=make_values,
            interner=None,
            name=name,
        )
    if plan.structure == "shadow":
        return ShadowMemory(
            meter,
            space,
            value_bytes=plan.value_bytes,
            granularity=plan.granularity,
            make_values=make_values,
            name=name,
        )
    if plan.structure == "pagetable":
        return PageTableMap(
            meter,
            space,
            value_bytes=plan.value_bytes,
            granularity=plan.granularity,
            make_values=make_values,
            name=name,
        )
    if plan.structure == "hash":
        return HashMap(
            meter,
            space,
            value_bytes=plan.value_bytes,
            granularity=plan.granularity,
            make_values=make_values,
            name=name,
        )
    raise CompileError(f"unknown structure {plan.structure!r}")


def build_maps(
    layout: LayoutPlan,
    meter,
    space,
    memo: Optional[dict],
) -> List[CoalescedMap]:
    """Instantiate every group of the layout plan as a live CoalescedMap."""
    maps: List[CoalescedMap] = []
    shared_sync: Optional[SyncPolicy] = None
    for plan in layout.groups:
        factories = [_field_default(field, meter, space) for field in plan.fields]

        def make_values(factories=factories):
            return [factory() for factory in factories]

        impl = _build_impl(plan, meter, space, make_values)
        sync = None
        if plan.group.sync:
            if shared_sync is None:
                shared_sync = SyncPolicy(meter, space, memo=memo)
            sync = shared_sync
        fields = [
            FieldSpec(
                name=field.map_name,
                offset=field.offset,
                size=field.size,
                kind=field.repr,
                default_factory=factory,
            )
            for field, factory in zip(plan.fields, factories)
        ]
        maps.append(
            CoalescedMap(plan.group.name, impl, fields, meter, sync=sync, memo=memo)
        )
    return maps


def register_adapters(hooks, adapters) -> None:
    """Install generated (position, hook_key, callable) adapters.

    ALDAcc inlines event handlers into the instrumented program (paper
    section 5.5), so generated adapters carry a reduced dispatch cost.
    """
    for position, hook_key, callback in adapters:
        callback.dispatch_cycles = 1
        hooks.add(position, hook_key, callback)
