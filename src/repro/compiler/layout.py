"""Phase 2b: metadata layout and data-structure selection (section 5.3).

For every coalesced map group this phase decides:

* the byte layout of the value record — each member map becomes a field
  at a natural-aligned offset, so co-accessed metadata shares cache lines;
* each field's representation — fixed bit-vector for small fixed-domain
  sets (<= 512 bytes), tree-set handle otherwise, narrowed integers for
  bounded scalars;
* the backing structure — array map for bounded key domains (with key
  interning for sparse id spaces), and for address-sized domains either
  offset shadow memory or a page-table map, chosen by the *shadow
  factor*: value bytes per program byte after granularity, against the
  threshold (default 3).

When structure selection is disabled (ablation), every group falls back
to a generic hash map and every set to a dynamic tree set — the paper's
"non-trivial benchmarks ran out-of-memory" configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.alda.types import INTERNABLE, MapInfo, ScalarValue, SetValue
from repro.compiler.coalesce import MapGroup
from repro.errors import CompileError

_BITVEC_LIMIT_BYTES = 512  # paper: "prefers a bit-vector if ... less than 512 bytes"
_ARRAY_DOMAIN_LIMIT = 1 << 16


@dataclass(frozen=True)
class FieldPlan:
    """Layout of one member map inside its group's value record."""

    map_name: str
    offset: int
    size: int
    repr: str  # "int" | "bitvec" | "treeset"
    set_domain: Optional[int] = None
    set_universe: bool = False
    default_int: int = 0


@dataclass
class GroupPlan:
    """Complete plan for one coalesced map group."""

    group: MapGroup
    structure: str  # "array" | "shadow" | "pagetable" | "hash"
    value_bytes: int = 0
    fields: List[FieldPlan] = field(default_factory=list)
    granularity: int = 8
    key_domain: Optional[int] = None
    interned: bool = False
    shadow_factor: float = 0.0

    def field_index(self, map_name: str) -> int:
        for index, plan in enumerate(self.fields):
            if plan.map_name == map_name:
                return index
        raise CompileError(f"map {map_name!r} not in group {self.group.name!r}")


@dataclass
class LayoutPlan:
    groups: List[GroupPlan] = field(default_factory=list)

    def group_for(self, map_name: str) -> int:
        for index, plan in enumerate(self.groups):
            for field_plan in plan.fields:
                if field_plan.map_name == map_name:
                    return index
        raise CompileError(f"map {map_name!r} not laid out")

    def describe(self) -> str:
        lines = []
        for plan in self.groups:
            fields = ", ".join(
                f"{f.map_name}@{f.offset}:{f.size}B/{f.repr}" for f in plan.fields
            )
            lines.append(
                f"{plan.group.name}: {plan.structure} "
                f"(value {plan.value_bytes}B, shadow factor {plan.shadow_factor:.2f}) "
                f"[{fields}]"
            )
        return "\n".join(lines)


def _plan_field(map_info: MapInfo, offset: int, structure_selection: bool) -> FieldPlan:
    value = map_info.value
    if isinstance(value, SetValue):
        domain = value.fixed_domain
        fixed_bytes = value.storage_bytes
        if structure_selection and domain is not None and fixed_bytes <= _BITVEC_LIMIT_BYTES:
            return FieldPlan(
                map_name=map_info.name,
                offset=offset,
                size=fixed_bytes,
                repr="bitvec",
                set_domain=domain,
                set_universe=value.universe,
            )
        return FieldPlan(
            map_name=map_info.name,
            offset=offset,
            size=8,  # a pointer to the tree
            repr="treeset",
            set_domain=domain,
            set_universe=value.universe,
        )
    if isinstance(value, ScalarValue):
        return FieldPlan(
            map_name=map_info.name,
            offset=offset,
            size=value.storage_bytes,
            repr="int",
        )
    raise CompileError(f"unsupported value shape for {map_info.name!r}")


def _align(offset: int, size: int) -> int:
    alignment = min(8, size) if size else 1
    # round alignment down to a power of two
    while alignment & (alignment - 1):
        alignment -= 1
    mask = alignment - 1
    return (offset + mask) & ~mask


def plan_group(
    group: MapGroup,
    granularity: int,
    shadow_factor_threshold: float,
    structure_selection: bool,
) -> GroupPlan:
    fields: List[FieldPlan] = []
    offset = 0
    for member in group.members:
        plan = _plan_field(member, 0, structure_selection)
        offset = _align(offset, plan.size)
        fields.append(
            FieldPlan(
                map_name=plan.map_name,
                offset=offset,
                size=plan.size,
                repr=plan.repr,
                set_domain=plan.set_domain,
                set_universe=plan.set_universe,
            )
        )
        offset += plan.size
    value_bytes = max(1, _align(offset, 8)) if offset > 8 else max(1, offset)

    key = group.key
    key_domain = key.domain
    is_bounded = key_domain is not None and key_domain <= _ARRAY_DOMAIN_LIMIT
    shadow_factor = value_bytes / granularity

    if not structure_selection:
        structure = "hash"
        interned = False
        group_granularity = granularity if key.base == "pointer" else 1
    elif is_bounded:
        structure = "array"
        interned = key.base in INTERNABLE
        group_granularity = 1
    else:
        # Address-space-sized key domain: shadow factor decides.
        structure = "shadow" if shadow_factor <= shadow_factor_threshold else "pagetable"
        interned = False
        group_granularity = granularity

    return GroupPlan(
        group=group,
        structure=structure,
        value_bytes=value_bytes,
        fields=fields,
        granularity=group_granularity,
        key_domain=key_domain if is_bounded else None,
        interned=interned,
        shadow_factor=shadow_factor,
    )


def plan_layout(
    groups: List[MapGroup],
    granularity: int = 8,
    shadow_factor_threshold: float = 3.0,
    structure_selection: bool = True,
) -> LayoutPlan:
    return LayoutPlan(
        groups=[
            plan_group(group, granularity, shadow_factor_threshold, structure_selection)
            for group in groups
        ]
    )
