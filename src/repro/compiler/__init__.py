"""ALDAcc: the optimizing compiler for ALDA (paper sections 3.2 and 5).

Pipeline phases, mirroring the paper:

1. **static analysis** (:mod:`repro.compiler.access_analysis`) — find every
   metadata map access in every handler;
2. **metadata layout** (:mod:`repro.compiler.coalesce`,
   :mod:`repro.compiler.layout`) — coalesce maps by key type, choose field
   offsets, and select backing structures via the shadow factor;
3. **event handler generation** (:mod:`repro.compiler.codegen`,
   :mod:`repro.compiler.cse`) — emit handler code with metadata-lookup
   reduction;
4. **event handler insertion** (:mod:`repro.compiler.instrument`) — bind
   compiled handlers to VM instrumentation hooks per the insertion
   declarations.

Entry point::

    from repro.compiler import CompileOptions, compile_analysis

    analysis = compile_analysis(source, CompileOptions(granularity=1))
    vm = Interpreter(module, hooks=hooks)
    analysis.attach(vm, hooks)
    vm.run()
"""

from repro.compiler.pipeline import (
    AnalysisRuntime,
    CompiledAnalysis,
    CompileOptions,
    compile_analysis,
)
from repro.compiler.combine import combine_programs, combine_sources
from repro.compiler.profile_guided import AccessProfile, profile_analysis

__all__ = [
    "AccessProfile",
    "AnalysisRuntime",
    "CompileOptions",
    "CompiledAnalysis",
    "combine_programs",
    "combine_sources",
    "compile_analysis",
    "profile_analysis",
]
