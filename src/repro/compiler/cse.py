"""Phase 3a: metadata lookup reduction (paper section 5.4).

ALDAcc applies common-subexpression elimination to map lookups: within a
handler, all accesses to one coalesced map under one canonical key share
a single hoisted slot lookup.  Hoisting is conservative in the same way
the paper's compiler is ("conservatively assumes all branches will
occur"): hoisted lookups run once at handler entry even if the uses sit
inside branches.

Only *hoistable* keys participate (parameters/constants/arithmetic —
see :func:`repro.compiler.access_analysis.is_hoistable_key`); keys that
read metadata are re-evaluated and looked up inline at each use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.alda import ast_nodes as ast
from repro.alda.semantics import FuncInfo
from repro.compiler.access_analysis import is_hoistable_key, key_repr


@dataclass(frozen=True)
class HoistedSlot:
    """One slot lookup hoisted to handler entry."""

    var: str
    group_index: int
    key_expr: ast.Expr
    key_repr: str


def plan_hoists(
    func: FuncInfo,
    group_of_map: Dict[str, int],
    enabled: bool,
) -> Tuple[List[HoistedSlot], Dict[Tuple[int, str], str]]:
    """Compute the hoisted lookups for one handler.

    Returns the ordered hoist list plus an index mapping
    ``(group_index, key_repr) -> slot variable`` consulted by codegen.
    With CSE disabled both are empty and every access looks up inline.
    """
    if not enabled:
        return [], {}

    hoists: List[HoistedSlot] = []
    index: Dict[Tuple[int, str], str] = {}
    counts: Dict[Tuple[int, str], int] = {}
    first_key_expr: Dict[Tuple[int, str], ast.Expr] = {}

    def visit_access(map_name: str, key: ast.Expr) -> None:
        if not is_hoistable_key(key):
            return
        group_index = group_of_map[map_name]
        slot_key = (group_index, key_repr(key))
        counts[slot_key] = counts.get(slot_key, 0) + 1
        first_key_expr.setdefault(slot_key, key)

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.Index):
            walk_expr(expr.key)
            visit_access(expr.base, expr.key)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.MethodCall):
            for arg in expr.args:
                walk_expr(arg)
            if isinstance(expr.base, ast.Index):
                walk_expr(expr.base.key)
                visit_access(expr.base.base, expr.base.key)
            # Point map methods (get(k)/set(k, v)) go through a slot too;
            # range forms iterate slots and cannot share one lookup.
            elif expr.method == "get" and len(expr.args) == 1:
                visit_access(expr.base.ident, expr.args[0])
            elif expr.method == "set" and len(expr.args) == 2:
                visit_access(expr.base.ident, expr.args[0])
        elif isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                walk_expr(arg)

    def walk_stmts(statements: List[ast.Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, ast.If):
                walk_expr(statement.cond)
                walk_stmts(statement.then_body)
                walk_stmts(statement.else_body)
            elif isinstance(statement, ast.Return):
                if statement.value is not None:
                    walk_expr(statement.value)
            elif isinstance(statement, ast.Assign):
                walk_expr(statement.target.key)
                visit_access(statement.target.base, statement.target.key)
                walk_expr(statement.value)
            elif isinstance(statement, ast.ExprStmt):
                walk_expr(statement.expr)

    walk_stmts(func.decl.body)

    for position, (slot_key, count) in enumerate(counts.items()):
        var = f"_s{position}"
        hoists.append(
            HoistedSlot(
                var=var,
                group_index=slot_key[0],
                key_expr=first_key_expr[slot_key],
                key_repr=slot_key[1],
            )
        )
        index[slot_key] = var
    return hoists, index
