"""Profile-guided metadata grouping — the paper's stated future work.

Section 3.2.1: "the compiler conservatively assumes all branches will
occur.  In cases where the branch is rarely or never taken, this may
cause the compiler to falsely group together metadata.  We are
interested in exploring improving this behavior through profile-guided
optimizations as future work."

This module implements that loop:

1. :func:`profile_analysis` compiles the analysis with coalescing
   disabled (so per-ALDA-map behaviour is observable), runs it on a
   training workload, and collects dynamic access counts per map;
2. passing the resulting :class:`AccessProfile` to
   :func:`repro.compiler.pipeline.compile_analysis` refines coalescing:
   maps whose *measured* access frequency is a small fraction of their
   group's hottest member are split into their own group, keeping the
   hot record lean even when the static analysis would have fattened it
   (e.g. metadata only touched on an error path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.alda.types import MapInfo

#: a member is split out of its group when its dynamic access count is
#: below this fraction of the group's hottest member
DEFAULT_COLD_FRACTION = 0.05


@dataclass
class AccessProfile:
    """Dynamic per-map access counts from one or more training runs."""

    counts: Dict[str, int] = field(default_factory=dict)
    training_runs: int = 0

    def merge(self, counts: Dict[str, int]) -> None:
        for name, count in counts.items():
            self.counts[name] = self.counts.get(name, 0) + count
        self.training_runs += 1

    def count(self, map_name: str) -> int:
        return self.counts.get(map_name, 0)

    def split_cold_members(
        self,
        members: List[MapInfo],
        cold_fraction: float = DEFAULT_COLD_FRACTION,
    ) -> List[List[MapInfo]]:
        """Partition one static group into [hot members] + singleton colds.

        Untrained maps (never observed) count as cold: if the training
        run never touched them, co-locating them buys nothing.
        """
        if len(members) <= 1:
            return [members]
        hottest = max(self.count(member.name) for member in members)
        if hottest == 0:
            return [members]
        hot: List[MapInfo] = []
        partitions: List[List[MapInfo]] = []
        for member in members:
            if self.count(member.name) >= hottest * cold_fraction:
                hot.append(member)
            else:
                partitions.append([member])
        if hot:
            partitions.insert(0, hot)
        return partitions


def profile_analysis(
    program,
    module_factory,
    extern=None,
    input_lines=None,
    options=None,
    profile: Optional[AccessProfile] = None,
) -> AccessProfile:
    """Run one training execution and collect dynamic map-access counts.

    ``module_factory`` builds a fresh training module (a workload's
    ``make_module`` or any callable returning a Module).  Pass an
    existing ``profile`` to accumulate over several training workloads.
    """
    from dataclasses import replace

    from repro.compiler.pipeline import CompileOptions, compile_analysis
    from repro.vm.interpreter import Interpreter

    options = options or CompileOptions()
    # Coalescing off so each ALDA-level map is individually observable.
    training = compile_analysis(program, replace(options, coalesce=False))
    vm = Interpreter(
        module_factory(),
        extern=extern,
        input_lines=input_lines,
        track_shadow=training.needs_shadow,
    )
    runtime = training.attach(vm)
    counts: Dict[str, int] = {}
    for coalesced in runtime.maps:
        coalesced.access_counts = counts
    vm.run()

    profile = profile or AccessProfile()
    profile.merge(counts)
    return profile
