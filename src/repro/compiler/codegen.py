"""Phase 3b: event-handler code generation.

Compiles checked ALDA handler bodies into Python source (the generated
artifact is kept on the compiled analysis for inspection and testing —
optimization effects such as hoisted lookups are visible in the text).
The emitted module defines::

    def make_handlers(RT):          # RT: AnalysisRuntime
        M0 = RT.maps[0]             # one name per coalesced map group
        def h_<handler>(loc, a_<param>...): ...
        ADAPTERS = [...]            # (position, hook_key, callable)
        return {...handlers...}, ADAPTERS

Cost accounting: every handler bills its static operation count once per
invocation (ALDA bodies are loop-free, so the static count bounds the
dynamic one; this matches the compiler's conservative all-branches-taken
assumption).  Metadata structure costs are billed by the runtime
structures themselves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.alda import ast_nodes as ast
from repro.alda.semantics import FuncInfo, ProgramInfo
from repro.alda.types import INTERNABLE as INTERNABLE_BASES
from repro.alda.types import SetValue
from repro.compiler.access_analysis import is_hoistable_key, key_repr
from repro.compiler.cse import plan_hoists
from repro.compiler.layout import LayoutPlan
from repro.errors import CompileError

_PY_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "//",
    "%": "%",
    "&": "&",
    "|": "|",
    "^": "^",
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def _expr_ops(node) -> int:
    """Operation count of one expression tree."""
    total = 0
    if isinstance(node, (ast.Binary, ast.Unary, ast.MethodCall, ast.CallExpr)):
        total += 1
    if isinstance(node, ast.Binary):
        total += _expr_ops(node.lhs) + _expr_ops(node.rhs)
    elif isinstance(node, ast.Unary):
        total += _expr_ops(node.operand)
    elif isinstance(node, ast.Index):
        total += _expr_ops(node.key)
    elif isinstance(node, ast.MethodCall):
        if isinstance(node.base, ast.Index):
            total += _expr_ops(node.base.key)
        total += sum(_expr_ops(arg) for arg in node.args)
    elif isinstance(node, ast.CallExpr):
        total += sum(_expr_ops(arg) for arg in node.args)
    return total


def _shallow_ops(statements: List[ast.Stmt]) -> int:
    """Ops executed when control reaches this block, *excluding* nested
    branch bodies — those bill themselves on entry, so untaken paths cost
    nothing (the generated code is billed like the optimized straight-line
    code an optimizing compiler emits)."""
    total = 0
    for statement in statements:
        if isinstance(statement, ast.If):
            total += 1 + _expr_ops(statement.cond)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                total += _expr_ops(statement.value)
        elif isinstance(statement, ast.Assign):
            total += 1 + _expr_ops(statement.target.key) + _expr_ops(statement.value)
        elif isinstance(statement, ast.ExprStmt):
            total += _expr_ops(statement.expr)
    return total


class _HandlerCompiler:
    """Compiles one handler body to Python lines."""

    def __init__(
        self,
        func: FuncInfo,
        info: ProgramInfo,
        layout: LayoutPlan,
        group_of_map: Dict[str, int],
        cse_enabled: bool,
    ) -> None:
        self.func = func
        self.info = info
        self.layout = layout
        self.group_of_map = group_of_map
        self.cse_enabled = cse_enabled
        self.lines: List[str] = []
        self._temp = 0
        self._assert_count = 0
        self.hoists, self.slot_index = plan_hoists(func, group_of_map, cse_enabled)

    # -- helpers -----------------------------------------------------------
    def _fresh_temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def _group(self, map_name: str) -> Tuple[int, int]:
        group_index = self.group_of_map[map_name]
        field_index = self.layout.groups[group_index].field_index(map_name)
        return group_index, field_index

    def _slot_expr(self, map_name: str, key: ast.Expr, indent: int) -> str:
        """Slot for (map, key): a hoisted variable when CSE applies."""
        group_index, _ = self._group(map_name)
        if self.cse_enabled and is_hoistable_key(key):
            var = self.slot_index.get((group_index, key_repr(key)))
            if var is not None:
                return var
        return f"M{group_index}.lookup({self.expr(key, indent)})"

    # -- expressions -------------------------------------------------------
    def expr(self, node: ast.Expr, indent: int) -> str:
        if isinstance(node, ast.Num):
            return repr(node.value)
        if isinstance(node, ast.Name):
            if node.ident in self.info.consts:
                return repr(self.info.consts[node.ident])
            return f"a_{node.ident}"
        if isinstance(node, ast.Unary):
            operand = self.expr(node.operand, indent)
            if node.op == "!":
                return f"(0 if {operand} else 1)"
            return f"(-{operand})"
        if isinstance(node, ast.Binary):
            return self._binary(node, indent)
        if isinstance(node, ast.Index):
            return self._index_read(node, indent)
        if isinstance(node, ast.MethodCall):
            return self._method_expr(node, indent)
        if isinstance(node, ast.CallExpr):
            return self._call_expr(node, indent)
        raise CompileError(f"cannot compile expression {node!r}")

    def _is_set_expr(self, node: ast.Expr) -> bool:
        if isinstance(node, ast.Index):
            value = self.info.maps[node.base].value
            return isinstance(value, SetValue)
        if isinstance(node, ast.MethodCall) and isinstance(node.base, ast.Name):
            if node.method == "get":
                value = self.info.maps[node.base.ident].value
                return isinstance(value, SetValue)
        if isinstance(node, ast.Binary):
            return self._is_set_expr(node.lhs)
        return False

    def _binary(self, node: ast.Binary, indent: int) -> str:
        lhs = self.expr(node.lhs, indent)
        rhs = self.expr(node.rhs, indent)
        if node.op in ("&&", "||"):
            joiner = "and" if node.op == "&&" else "or"
            return f"({lhs} {joiner} {rhs})"
        if self._is_set_expr(node.lhs) and self._is_set_expr(node.rhs):
            method = "intersect" if node.op == "&" else "union"
            return f"{lhs}.{method}({rhs})"
        return f"({lhs} {_PY_BINOPS[node.op]} {rhs})"

    def _index_read(self, node: ast.Index, indent: int) -> str:
        group_index, field_index = self._group(node.base)
        slot = self._slot_expr(node.base, node.key, indent)
        return f"M{group_index}.load({slot}, {field_index})"

    def _method_expr(self, node: ast.MethodCall, indent: int) -> str:
        if isinstance(node.base, ast.Name):
            map_name = node.base.ident
            group_index, field_index = self._group(map_name)
            if node.method == "get":
                if len(node.args) == 2:
                    key = self.expr(node.args[0], indent)
                    length = self.expr(node.args[1], indent)
                    return f"M{group_index}.load_range({key}, {length}, {field_index})"
                slot = self._slot_expr(map_name, node.args[0], indent)
                return f"M{group_index}.load({slot}, {field_index})"
            raise CompileError(f"map.{node.method} has no value (statement only)")
        # set-valued entry methods
        group_index, field_index = self._group(node.base.base)
        slot = self._slot_expr(node.base.base, node.base.key, indent)
        value = f"M{group_index}.load({slot}, {field_index})"
        if node.method == "find":
            element = self.expr(node.args[0], indent)
            return f"(1 if {value}.contains({element}) else 0)"
        if node.method == "empty":
            return f"(1 if {value}.is_empty() else 0)"
        raise CompileError(f"set.{node.method} has no value (statement only)")

    def _call_expr(self, node: ast.CallExpr, indent: int) -> str:
        args = [self.expr(arg, indent) for arg in node.args]
        if node.func == "ptr_offset":
            return f"({args[0]} + {args[1]})"
        if node.func == "alda_assert":
            raise CompileError("alda_assert is a statement, not a value")
        if node.func in self.info.funcs:
            joined = ", ".join(["loc"] + args)
            return f"h_{node.func}({joined})"
        joined = ", ".join([repr(node.func)] + args)
        return f"RT.external({joined})"

    # -- statements ----------------------------------------------------------
    def stmt(self, node: ast.Stmt, indent: int) -> None:
        if isinstance(node, ast.If):
            self.emit(indent, f"if {self.expr(node.cond, indent)}:")
            self.block(node.then_body, indent + 1)
            if node.else_body:
                self.emit(indent, "else:")
                self.block(node.else_body, indent + 1)
            return
        if isinstance(node, ast.Return):
            if node.value is None:
                self.emit(indent, "return 0")
            else:
                self.emit(indent, f"return {self.expr(node.value, indent)}")
            return
        if isinstance(node, ast.Assign):
            group_index, field_index = self._group(node.target.base)
            slot = self._slot_expr(node.target.base, node.target.key, indent)
            value = self.expr(node.value, indent)
            self.emit(indent, f"M{group_index}.store({slot}, {field_index}, {value})")
            return
        if isinstance(node, ast.ExprStmt):
            self._expr_stmt(node.expr, indent)
            return
        raise CompileError(f"cannot compile statement {node!r}")

    def _expr_stmt(self, node: ast.Expr, indent: int) -> None:
        if isinstance(node, ast.MethodCall):
            if isinstance(node.base, ast.Name):
                self._map_method_stmt(node, indent)
                return
            if node.method in ("add", "remove"):
                self._set_mutation_stmt(node, indent)
                return
        if isinstance(node, ast.CallExpr) and node.func == "alda_assert":
            actual = self.expr(node.args[0], indent)
            expected = self.expr(node.args[1], indent)
            # Tag each assert site so two asserts in one handler at one
            # program location produce distinct (non-deduplicated) reports.
            self._assert_count += 1
            tag = f"{self.func.name}#{self._assert_count}"
            self.emit(
                indent,
                f"RT.alda_assert({actual}, {expected}, loc, {tag!r})",
            )
            return
        self.emit(indent, self.expr(node, indent))

    def _map_method_stmt(self, node: ast.MethodCall, indent: int) -> None:
        map_name = node.base.ident
        group_index, field_index = self._group(map_name)
        if node.method == "set":
            if len(node.args) == 3:
                key = self.expr(node.args[0], indent)
                value = self.expr(node.args[1], indent)
                length = self.expr(node.args[2], indent)
                self.emit(
                    indent,
                    f"M{group_index}.store_range({key}, {length}, {field_index}, {value})",
                )
            else:
                slot = self._slot_expr(map_name, node.args[0], indent)
                value = self.expr(node.args[1], indent)
                self.emit(
                    indent, f"M{group_index}.store({slot}, {field_index}, {value})"
                )
            return
        if node.method == "get":
            # value discarded; still perform the lookup for its cost
            self.emit(indent, self._method_expr(node, indent))
            return
        raise CompileError(f"unknown map method {node.method!r}")

    def _set_mutation_stmt(self, node: ast.MethodCall, indent: int) -> None:
        group_index, field_index = self._group(node.base.base)
        slot_expr = self._slot_expr(node.base.base, node.base.key, indent)
        element = self.expr(node.args[0], indent)
        temp = self._fresh_temp()
        slot_var = temp + "_slot"
        self.emit(indent, f"{slot_var} = {slot_expr}")
        self.emit(indent, f"{temp} = M{group_index}.load({slot_var}, {field_index})")
        self.emit(indent, f"{temp}.{node.method}({element})")
        self.emit(indent, f"M{group_index}.store({slot_var}, {field_index}, {temp})")

    def block(self, statements: List[ast.Stmt], indent: int, bill: bool = True) -> None:
        if not statements:
            self.emit(indent, "pass")
            return
        if bill:
            ops = _shallow_ops(statements)
            if ops:
                self.emit(indent, f"meter.cycles({ops})")
        for statement in statements:
            self.stmt(statement, indent)

    # -- whole handler ----------------------------------------------------------
    def compile(self) -> List[str]:
        params = ", ".join(["loc"] + [f"a_{name}" for name in self.func.param_names])
        self.emit(1, f"def h_{self.func.name}({params}):")
        # Intern sparse-but-bounded values (lock addresses behind a bounded
        # lockid) into dense ids at the handler boundary, the way real
        # detectors hash locks into a fixed table.
        for param, ptype in zip(self.func.decl.params, self.func.param_types):
            if ptype.bound is not None and ptype.base in INTERNABLE_BASES:
                self.emit(
                    2,
                    f"a_{param.name} = RT.intern({ptype.name!r}, {ptype.bound}, "
                    f"a_{param.name})",
                )
        for hoist in self.hoists:
            key_src = self.expr(hoist.key_expr, 2)
            self.emit(
                2,
                f"{hoist.var} = M{hoist.group_index}.lookup({key_src})"
                f"  # {hoist.key_repr}",
            )
        self.block(self.func.decl.body, 2)
        self.emit(1, "")
        return self.lines


def _adapter_arg(arg: ast.CallArg) -> str:
    if arg.base == "p":
        if arg.metadata or arg.sizeof:
            raise CompileError("$p cannot take .m or sizeof")
        return "*ctx.ops"
    if arg.base == "t":
        return "ctx.tid"
    if arg.base == "r":
        if arg.sizeof:
            return "ctx.sizeof('r')"
        if arg.metadata:
            return "ctx.result_shadow"
        return "ctx.result"
    index = int(arg.base)
    if arg.sizeof:
        return f"ctx.sizeof({index})"
    if arg.metadata:
        return f"ctx.operand_shadow({index})"
    return f"ctx.ops[{index - 1}]"


def generate_module(
    info: ProgramInfo,
    layout: LayoutPlan,
    group_of_map: Dict[str, int],
    cse_enabled: bool,
    analysis_name: str,
) -> str:
    """Emit the complete generated-Python module for an analysis."""
    lines: List[str] = [
        f'"""Generated by ALDAcc for analysis {analysis_name!r}."""',
        "",
        "",
        "def make_handlers(RT):",
        "    meter = RT.meter",
    ]
    for index, plan in enumerate(layout.groups):
        lines.append(f"    M{index} = RT.maps[{index}]  # {plan.group.name}")
    lines.append("")

    for func in info.funcs.values():
        compiler = _HandlerCompiler(func, info, layout, group_of_map, cse_enabled)
        lines.extend(compiler.compile())

    lines.append("    ADAPTERS = []")
    for position, decl in enumerate(info.inserts):
        handler = info.funcs[decl.handler]
        args = ", ".join(["ctx.loc"] + [_adapter_arg(arg) for arg in decl.args])
        call = f"h_{decl.handler}({args})"
        if handler.ret_type is not None and decl.position == "after":
            # The handler's return value becomes $r's local metadata.
            call = f"ctx.set_result_shadow({call})"
        hook_key = (
            decl.point_name if decl.point_kind == "inst" else f"func:{decl.point_name}"
        )
        lines.append(f"    def ad_{position}(ctx):")
        lines.append("        RT.begin_event(ctx.seq)")
        lines.append(f"        {call}")
        lines.append(
            f"    ADAPTERS.append(({decl.position!r}, {hook_key!r}, ad_{position}))"
        )
    handler_map = ", ".join(
        f"{name!r}: h_{name}" for name in info.funcs
    )
    lines.append(f"    return {{{handler_map}}}, ADAPTERS")
    lines.append("")
    return "\n".join(lines)
