"""Phase 2a: map coalescing (paper section 5.2).

"ALDAcc bases its coalescing of maps on the key-type of the map, merging
multiple maps with equivalent keys into a single map."  Two maps coalesce
when their key types are identical (same base primitive, same domain
bound, same sync requirement).

One refinement on top of pure key-type grouping: maps are first split
into *hot* (accessed by handlers attached to per-instruction events —
loads, stores, branches, arithmetic) and *cold* (accessed only from
call-boundary handlers such as malloc/free interceptors), and only
like-tempered maps merge.  This keeps a cold bookkeeping field (MSan's
``addr2size``) from inflating the value record of a hot byte shadow
(``addr2label``) — which is how the paper's MSan keeps a shadow factor
of 1 and an offset shadow memory (section 5.3) while Eraser's hot,
fat records land in a page table.  DESIGN.md records this as a
documented interpretation of the paper's per-"individual map" structure
choice.

With coalescing disabled each map becomes its own single-member group,
so downstream phases are uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.alda.semantics import ProgramInfo
from repro.alda.types import AldaType, MapInfo
from repro.compiler.access_analysis import AccessSummary


@dataclass
class MapGroup:
    """One coalesced map: a key class plus its member ALDA-level maps."""

    name: str
    key: AldaType
    members: List[MapInfo] = field(default_factory=list)
    hot: bool = True

    @property
    def sync(self) -> bool:
        return self.key.sync


def _key_class(key: AldaType) -> Tuple[str, object, bool]:
    return (key.base, key.bound, key.sync)


def _handler_calls(statements) -> Set[str]:
    """Names called from a handler body (for the hot-handler closure)."""
    from repro.alda import ast_nodes as ast

    out: Set[str] = set()

    def expr_calls(expr) -> None:
        if isinstance(expr, ast.CallExpr):
            out.add(expr.func)
            for arg in expr.args:
                expr_calls(arg)
        elif isinstance(expr, ast.Binary):
            expr_calls(expr.lhs)
            expr_calls(expr.rhs)
        elif isinstance(expr, ast.Unary):
            expr_calls(expr.operand)
        elif isinstance(expr, ast.Index):
            expr_calls(expr.key)
        elif isinstance(expr, ast.MethodCall):
            if isinstance(expr.base, ast.Index):
                expr_calls(expr.base.key)
            for arg in expr.args:
                expr_calls(arg)

    def walk(statements) -> None:
        for statement in statements:
            if isinstance(statement, ast.If):
                expr_calls(statement.cond)
                walk(statement.then_body)
                walk(statement.else_body)
            elif isinstance(statement, ast.Return) and statement.value is not None:
                expr_calls(statement.value)
            elif isinstance(statement, ast.Assign):
                expr_calls(statement.target.key)
                expr_calls(statement.value)
            elif isinstance(statement, ast.ExprStmt):
                expr_calls(statement.expr)

    walk(statements)
    return out


def hot_maps(info: ProgramInfo, summary: AccessSummary) -> Set[str]:
    """Maps reached (transitively) from instruction-event handlers."""
    hot_handlers = {
        decl.handler for decl in info.inserts if decl.point_kind == "inst"
    }
    # Close over handler-to-handler calls: a helper called from a hot
    # handler is itself hot (the call graph is acyclic by semantics).
    worklist = list(hot_handlers)
    while worklist:
        name = worklist.pop()
        func = info.funcs.get(name)
        if func is None:
            continue
        for callee in _handler_calls(func.decl.body) & set(info.funcs):
            if callee not in hot_handlers:
                hot_handlers.add(callee)
                worklist.append(callee)

    return {
        access.map_name
        for access in summary.accesses
        if access.handler in hot_handlers
    }


def coalesce_maps(
    info: ProgramInfo,
    summary: Optional[AccessSummary] = None,
    enabled: bool = True,
    access_profile=None,
) -> List[MapGroup]:
    """Group metadata maps; declaration order is preserved within groups.

    With an :class:`repro.compiler.profile_guided.AccessProfile`, static
    groups are refined by *measured* access frequency: members the
    training run (almost) never touched are split into their own groups,
    implementing the paper's profile-guided future work (section 3.2.1).
    """
    groups: List[MapGroup] = []
    if not enabled:
        for map_info in info.maps.values():
            groups.append(
                MapGroup(name=map_info.name, key=map_info.key, members=[map_info])
            )
        return groups

    hot = (
        hot_maps(info, summary)
        if summary is not None
        else set(info.maps)
    )
    by_class: Dict[Tuple[object, ...], MapGroup] = {}
    for map_info in info.maps.values():
        is_hot = map_info.name in hot
        klass = _key_class(map_info.key) + (is_hot,)
        group = by_class.get(klass)
        if group is None:
            group = MapGroup(
                name=f"group_{map_info.key.name}", key=map_info.key, hot=is_hot
            )
            by_class[klass] = group
            groups.append(group)
        group.members.append(map_info)

    if access_profile is not None:
        refined: List[MapGroup] = []
        for group in groups:
            for members in access_profile.split_cold_members(group.members):
                refined.append(
                    MapGroup(
                        name=group.name,
                        key=group.key,
                        members=members,
                        hot=group.hot,
                    )
                )
        groups = refined

    for group in groups:
        group.name = "+".join(member.name for member in group.members)
    return groups
