"""ALDAcc's driver: options, the analysis runtime, and ``compile_analysis``.

``CompileOptions`` exposes every optimization the evaluation ablates:

* ``coalesce`` / ``cse`` — off together they form the paper's
  "ALDAcc-ds-only" configuration (Figure 4's third bar);
* ``structure_selection`` — off reproduces the out-of-memory ablation
  (everything in generic hash maps and tree sets);
* ``granularity`` — metadata granularity in bytes (section 5.1);
* ``shadow_factor_threshold`` — the shadow-memory/page-table cutover
  (section 5.3, default 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.alda import ast_nodes as ast
from repro.alda.parser import parse_program
from repro.alda.semantics import ProgramInfo, check_program
from repro.compiler.access_analysis import AccessSummary, analyze_accesses
from repro.compiler.coalesce import MapGroup, coalesce_maps
from repro.compiler.codegen import generate_module
from repro.compiler.instrument import build_maps, register_adapters
from repro.compiler.layout import LayoutPlan, plan_layout
from repro.errors import CompileError
from repro.runtime.array_map import KeyInterner
from repro.runtime.external import ExternalRegistry, default_externals
from repro.runtime.metadata import MetadataSpace
from repro.vm.profile import CostMeter


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of the ALDAcc pipeline."""

    granularity: int = 8  # word-based by default (section 5.1)
    coalesce: bool = True
    cse: bool = True
    structure_selection: bool = True
    shadow_factor_threshold: float = 3.0
    analysis_name: str = "analysis"
    #: Run the static instrumentation-elision pass
    #: (:mod:`repro.staticpass.elide`) when attaching to a VM: hook
    #: sites proved redundant for this analysis are never fired.
    #: Observable output is unchanged; event counts and costs drop.
    elide_instrumentation: bool = False

    def ds_only(self) -> "CompileOptions":
        """The Figure 4 ablation: keep structure selection, drop layout opts."""
        return replace(self, coalesce=False, cse=False)


class AnalysisRuntime:
    """Everything a compiled analysis needs at run time.

    Holds the live coalesced maps, the cost meter, the per-event lookup
    memo, the external-function registry, and the report channel.
    """

    def __init__(
        self,
        name: str,
        meter: CostMeter,
        space: MetadataSpace,
        reporter,
        externals: ExternalRegistry,
        memo_enabled: bool,
    ) -> None:
        self.name = name
        self.meter = meter
        self.space = space
        self.reporter = reporter
        self.externals = externals
        self.maps = []
        self.handlers: Dict[str, object] = {}
        self.vm = None  # set at attach time; used for report backtraces
        self._memo: Optional[dict] = {} if memo_enabled else None
        self._last_event_seq = -2
        self._interners: Dict[str, KeyInterner] = {}

    def intern(self, type_name: str, domain: int, key: int) -> int:
        """Dense-rename a sparse bounded value (e.g. a lock address)."""
        interner = self._interners.get(type_name)
        if interner is None:
            interner = KeyInterner(self.meter, self.space, domain, name=type_name)
            self._interners[type_name] = interner
        return interner.intern(key)

    def begin_event(self, seq: int = -1) -> None:
        """Reset the cross-handler lookup memo at each instrumentation event.

        Idempotent per event: several handlers fired at one event (a
        combined analysis) share the memo, which is what lets ALDAcc
        optimize composed analyses together (section 6.4.2).
        """
        if self._memo is None:
            return
        if seq != -1 and seq == self._last_event_seq:
            return
        self._last_event_seq = seq
        self._memo.clear()

    def alda_assert(self, actual: int, expected: int, loc: str, handler: str) -> None:
        """ALDA's built-in monitor: report when ``actual != expected``.

        Reports carry the subject program's call stack at the moment of
        the violation (the paper's "error report and analysis
        backtrace").
        """
        self.meter.cycles(1)
        if actual != expected:
            backtrace = self.vm.backtrace() if self.vm is not None else ()
            self.reporter.report(
                self.name, handler, "alda_assert failed", loc, actual, expected,
                backtrace=backtrace,
            )

    def external(self, name: str, *args: int) -> int:
        self.meter.cycles(2)  # call overhead of the escape hatch
        return self.externals.call(self, name, *args)


@dataclass
class CompiledAnalysis:
    """Result of running the ALDAcc pipeline on one ALDA program."""

    name: str
    info: ProgramInfo
    options: CompileOptions
    accesses: AccessSummary
    groups: List[MapGroup]
    layout: LayoutPlan
    group_of_map: Dict[str, int]
    source: str  # generated Python module text (inspectable artifact)
    externals: ExternalRegistry

    @property
    def needs_shadow(self) -> bool:
        """True when the analysis uses local (register) metadata."""
        for decl in self.info.inserts:
            if any(arg.metadata for arg in decl.args):
                return True
            handler = self.info.funcs[decl.handler]
            if handler.ret_type is not None and decl.position == "after":
                return True
        return False

    def attach(self, vm, hooks=None, elide=None) -> AnalysisRuntime:
        """Wire this analysis into a VM: build structures, register hooks.

        ``elide`` overrides ``options.elide_instrumentation`` for this
        attachment (the mask is a VM-level property, so the same
        compiled analysis can be attached with and without elision).
        Every attachment to a VM's own hook table registers an elision
        mask — an empty one when elision is off — so the VM applies the
        *intersection*: one elision-unsafe analysis vetoes elision for
        the whole run.
        """
        if hooks is None and hasattr(vm, "register_elision"):
            do_elide = (
                self.options.elide_instrumentation if elide is None
                else bool(elide)
            )
            if do_elide:
                from repro.staticpass.elide import elision_mask, policy_for

                vm.register_elision(elision_mask(vm.module, policy_for(self)))
            else:
                vm.register_elision({})
        meter = CostMeter(vm.profile, vm.cache)
        space = MetadataSpace.fresh()
        runtime = AnalysisRuntime(
            self.name,
            meter,
            space,
            vm.reporter,
            self.externals,
            memo_enabled=self.options.cse,
        )
        runtime.vm = vm
        runtime.maps = build_maps(self.layout, meter, space, runtime._memo)

        namespace: Dict[str, object] = {}
        exec(compile(self.source, f"<aldacc:{self.name}>", "exec"), namespace)
        handlers, adapters = namespace["make_handlers"](runtime)
        runtime.handlers = handlers
        register_adapters(hooks if hooks is not None else vm.hooks, adapters)
        return runtime


def compile_analysis(
    program: Union[str, ast.Program, ProgramInfo],
    options: Optional[CompileOptions] = None,
    externals: Optional[ExternalRegistry] = None,
    access_profile=None,
) -> CompiledAnalysis:
    """Run the full ALDAcc pipeline (sections 3.2 and 5 of the paper).

    ``access_profile`` (from
    :func:`repro.compiler.profile_guided.profile_analysis`) enables the
    profile-guided refinement of metadata grouping.
    """
    options = options or CompileOptions()
    if options.granularity not in (1, 2, 4, 8):
        raise CompileError(
            f"granularity must be 1, 2, 4 or 8 bytes, not {options.granularity}"
        )

    if isinstance(program, str):
        info = check_program(parse_program(program))
    elif isinstance(program, ast.Program):
        info = check_program(program)
    elif isinstance(program, ProgramInfo):
        info = program
    else:
        raise CompileError(f"cannot compile {type(program).__name__}")

    registry = externals or default_externals()
    missing = [name for name in info.externals if name not in registry]
    if missing:
        raise CompileError(
            f"analysis calls unregistered external functions: {sorted(missing)}"
        )

    accesses = analyze_accesses(info)
    groups = coalesce_maps(info, accesses, enabled=options.coalesce,
                           access_profile=access_profile)
    layout = plan_layout(
        groups,
        granularity=options.granularity,
        shadow_factor_threshold=options.shadow_factor_threshold,
        structure_selection=options.structure_selection,
    )
    group_of_map = {
        field.map_name: index
        for index, plan in enumerate(layout.groups)
        for field in plan.fields
    }
    source = generate_module(
        info, layout, group_of_map, options.cse, options.analysis_name
    )
    return CompiledAnalysis(
        name=options.analysis_name,
        info=info,
        options=options,
        accesses=accesses,
        groups=groups,
        layout=layout,
        group_of_map=group_of_map,
        source=source,
        externals=registry,
    )
