"""Combining analyses (paper section 6.4.2).

"This combination is as simple as concatenating our 4 ALDA analysis
source files into a single file."  ``combine_sources`` implements exactly
that, at the AST level: declarations are merged in order, and *identical*
type/const re-declarations (every analysis declares ``address :=
pointer`` for itself) are deduplicated.  Genuinely conflicting
declarations — two different metadata maps or handlers under one name —
are an error, matching what a textual concatenation would hit.

Compiling the merged program then coalesces maps *across* analyses (the
address-keyed metadata of Eraser, FastTrack, UAF and taint tracking all
land in one group), which is where the combined analysis's measured
speedup over running the analyses separately comes from.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.alda import ast_nodes as ast
from repro.alda.parser import parse_program
from repro.errors import CompileError


def _merge_type_decls(a: ast.TypeDecl, b: ast.TypeDecl) -> ast.TypeDecl:
    """Merge two declarations of one type name, strengthening soundly.

    ``sync`` is OR-ed (extra synchronization never breaks an analysis
    that did not ask for it); the base primitive must agree; domain
    bounds must agree when both are given (taking one analysis's bound
    for another's unbounded type would silently wrap its values).
    """
    if a.base != b.base:
        raise CompileError(
            f"combined analyses disagree on type {a.name!r} base "
            f"({a.base} vs {b.base})"
        )
    if a.bound is not None and b.bound is not None and a.bound != b.bound:
        raise CompileError(
            f"combined analyses disagree on type {a.name!r} domain bound "
            f"({a.bound} vs {b.bound})"
        )
    return ast.TypeDecl(
        name=a.name,
        base=a.base,
        sync=a.sync or b.sync,
        bound=a.bound if a.bound is not None else b.bound,
        line=a.line,
    )


def combine_programs(programs: Sequence[ast.Program]) -> ast.Program:
    """Merge parsed ALDA programs into one, deduplicating shared decls."""
    merged: List[ast.Decl] = []
    types: Dict[str, ast.TypeDecl] = {}
    consts: Dict[str, ast.ConstDecl] = {}
    named: Dict[str, str] = {}  # map/handler name -> owning kind

    for program in programs:
        for decl in program.decls:
            if isinstance(decl, ast.TypeDecl):
                existing = types.get(decl.name)
                if existing is not None:
                    replacement = _merge_type_decls(existing, decl)
                    index = merged.index(existing)
                    merged[index] = replacement
                    types[decl.name] = replacement
                    continue
                types[decl.name] = decl
                merged.append(decl)
            elif isinstance(decl, ast.ConstDecl):
                existing = consts.get(decl.name)
                if existing is not None:
                    if existing.value != decl.value:
                        raise CompileError(
                            f"combined analyses disagree on const {decl.name!r} "
                            f"({existing.value} vs {decl.value})"
                        )
                    continue
                consts[decl.name] = decl
                merged.append(decl)
            elif isinstance(decl, (ast.MetaDecl, ast.FuncDecl)):
                kind = "map" if isinstance(decl, ast.MetaDecl) else "handler"
                if decl.name in named:
                    raise CompileError(
                        f"combined analyses both define {kind} {decl.name!r}; "
                        "give analysis-specific names (e.g. er_onLoad)"
                    )
                named[decl.name] = kind
                merged.append(decl)
            else:
                merged.append(decl)
    return ast.Program(decls=merged)


def combine_sources(sources: Sequence[str]) -> ast.Program:
    """Parse and merge ALDA source texts (the paper's file concatenation)."""
    return combine_programs([parse_program(source) for source in sources])
