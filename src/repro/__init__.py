"""Reproduction of "Creating Concise and Efficient Dynamic Analyses with
ALDA" (Cheng & Devecsery, ASPLOS 2022).

This package contains the complete system described in the paper plus the
substrate it needs (see DESIGN.md):

* :mod:`repro.alda` — the ALDA language front end (lexer, parser, types,
  semantic checker);
* :mod:`repro.compiler` — ALDAcc, the optimizing compiler: static access
  analysis, map coalescing, data-structure selection by shadow factor,
  metadata-lookup reduction (CSE), handler generation and insertion;
* :mod:`repro.runtime` — the metadata structures ALDAcc selects among
  (bit-vector sets with universe algebra, tree sets, array maps, offset
  shadow memory, page-table maps, ...), all cost- and cache-accounted;
* :mod:`repro.ir` / :mod:`repro.vm` — the mini-IR and deterministic VM
  standing in for LLVM and native execution;
* :mod:`repro.analyses` — the paper's eight analyses written in ALDA
  (Eraser, MSan, UAF, StrictAliasCheck, FastTrack, IndexTT, SSLSan,
  ZlibSan);
* :mod:`repro.baselines` — the hand-tuned MSan/Eraser comparators;
* :mod:`repro.workloads` / :mod:`repro.harness` — benchmark programs and
  the regeneration harness for every table and figure in the evaluation.

Quickstart::

    from repro import CompileOptions, compile_analysis, Interpreter, IRBuilder

    analysis = compile_analysis(alda_source, CompileOptions(granularity=1))
    vm = Interpreter(program_module, track_shadow=analysis.needs_shadow)
    analysis.attach(vm)
    profile = vm.run()
    print(vm.reporter.reports, profile.cycles)
"""

from repro.compiler import (
    CompileOptions,
    CompiledAnalysis,
    combine_programs,
    combine_sources,
    compile_analysis,
)
from repro.ir import IRBuilder, Module
from repro.vm import Interpreter, Profile
from repro.errors import (
    AldaError,
    AldaSyntaxError,
    AldaTypeError,
    CompileError,
    ReproError,
    VMError,
)

__version__ = "1.0.0"

__all__ = [
    "AldaError",
    "AldaSyntaxError",
    "AldaTypeError",
    "CompileError",
    "CompileOptions",
    "CompiledAnalysis",
    "IRBuilder",
    "Interpreter",
    "Module",
    "Profile",
    "ReproError",
    "VMError",
    "combine_programs",
    "combine_sources",
    "compile_analysis",
    "__version__",
]
