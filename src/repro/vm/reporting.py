"""Analysis error reports and backtraces (ALDA's ``alda_assert`` output).

A :class:`Reporter` lives on the VM so that both ALDAcc-compiled handlers
and hand-tuned baselines report through the same channel; tests and the
Table 3 harness read reports back from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Report:
    """One analysis finding, with the program backtrace at report time."""

    analysis: str
    handler: str
    message: str
    location: str
    actual: Optional[int] = None
    expected: Optional[int] = None
    backtrace: Tuple[str, ...] = ()

    def __str__(self) -> str:
        detail = ""
        if self.actual is not None:
            detail = f" (got {self.actual}, expected {self.expected})"
        text = f"[{self.analysis}] {self.message} at {self.location} in {self.handler}{detail}"
        if self.backtrace:
            text += "\n" + "\n".join(f"    #{i} {frame}" for i, frame in enumerate(self.backtrace))
        return text


class Reporter:
    """Collects reports; deduplicates by (analysis, message, location)."""

    def __init__(self, profile=None, max_reports: int = 10_000) -> None:
        self.reports: List[Report] = []
        self._seen = set()
        self._profile = profile
        self._max_reports = max_reports

    def report(
        self,
        analysis: str,
        handler: str,
        message: str,
        location: str,
        actual: Optional[int] = None,
        expected: Optional[int] = None,
        backtrace: Tuple[str, ...] = (),
    ) -> None:
        key = (analysis, handler, message, location)
        if key in self._seen or len(self.reports) >= self._max_reports:
            return
        self._seen.add(key)
        self.reports.append(
            Report(analysis, handler, message, location, actual, expected, backtrace)
        )
        if self._profile is not None:
            self._profile.reports += 1

    def by_analysis(self, analysis: str) -> List[Report]:
        return [report for report in self.reports if report.analysis == analysis]

    def locations(self, analysis: Optional[str] = None) -> List[str]:
        reports = self.by_analysis(analysis) if analysis else self.reports
        return [report.location for report in reports]

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)
