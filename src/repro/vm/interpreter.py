"""Deterministic interpreter for the mini-IR with instrumentation hooks.

Execution model:

* registers are per-frame and mutable; memory is the shared
  :class:`repro.vm.memory.Memory`;
* threads run round-robin with a fixed instruction quantum, so every run
  is deterministic;
* ``spawn$<func>(args...)`` starts a thread, ``join(tid)`` waits for it,
  ``mutex_lock(addr)``/``mutex_unlock(addr)`` are blocking locks — all of
  these also fire ``func:`` instrumentation events;
* when ``track_shadow`` is on, every register carries a *local metadata*
  word (ALDA's ``$X.m``): constants reset it to 0, arithmetic ORs operand
  metadata, calls and returns propagate it, and ``after``-handlers with a
  return value overwrite the destination register's metadata.  Each
  propagated instruction bills one cycle to the analysis, modelling the
  inline shadow arithmetic a real compiler would have emitted.

Cost model: see :mod:`repro.vm.profile`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlockError, IRError, VMError
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Const,
    Jmp,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.validate import validate_module
from repro.vm.cache import CacheConfig, CacheSim
from repro.vm.events import EventContext, Hooks
from repro.vm.memory import AddressSpace, Heap, Memory
from repro.vm.profile import Profile
from repro.vm import libc as libc_module
from repro.vm.reporting import Reporter

_MASK64 = (1 << 64) - 1

_RUNNABLE = 0
_BLOCKED_JOIN = 1
_BLOCKED_MUTEX = 2
_DONE = 3

_CALL_CYCLES = 2
_HANDLER_DISPATCH_CYCLES = 2
_SHADOW_PROP_CYCLES = 1

_EIGHT = (8,)
_EIGHT_EIGHT = (8, 8)


class Frame:
    __slots__ = (
        "function",
        "blocks",
        "code",
        "ip",
        "regs",
        "shadow",
        "stack_mark",
        "call_instr",
        "call_ops",
        "caller_shadow",
    )

    def __init__(self, function: Function, regs: Dict[str, int],
                 code: Optional[list] = None) -> None:
        self.function = function
        self.blocks = function.blocks
        # ``code`` is the entry block's instruction list (reference
        # backend) or its compiled closure list (compiled backend).
        self.code = code if code is not None else function.blocks[function.entry].instructions
        self.ip = 0
        self.regs = regs
        self.shadow: Dict[str, int] = {}
        self.stack_mark = 0
        # Call-site bookkeeping for after-func events:
        self.call_instr: Optional[Call] = None
        self.call_ops: Tuple[int, ...] = ()
        self.caller_shadow: Optional[Dict[str, int]] = None


class ThreadState:
    __slots__ = ("tid", "frames", "status", "wait_tid", "wait_mutex", "result", "stack_top", "stack_base")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.frames: List[Frame] = []
        self.status = _RUNNABLE
        self.wait_tid = -1
        self.wait_mutex = -1
        self.result = 0
        self.stack_base = AddressSpace.STACK_BASE + tid * AddressSpace.STACK_STRIDE
        self.stack_top = self.stack_base + AddressSpace.STACK_STRIDE


class Interpreter:
    """Executes a validated module and produces a :class:`Profile`."""

    def __init__(
        self,
        module: Module,
        hooks: Optional[Hooks] = None,
        cache_config: Optional[CacheConfig] = None,
        extern: Optional[Dict[str, Callable]] = None,
        track_shadow: bool = False,
        quantum: int = 64,
        max_steps: int = 200_000_000,
        input_lines: Optional[Sequence[bytes]] = None,
        backend: str = "compiled",
    ) -> None:
        if backend not in ("compiled", "reference", "bytecode"):
            raise ValueError(
                f"unknown backend {backend!r}; "
                "choose 'compiled', 'reference', or 'bytecode'"
            )
        validate_module(module)
        self.module = module
        self.hooks = hooks or Hooks()
        self.memory = Memory()
        self.heap = Heap()
        self.cache = CacheSim(cache_config)
        self.profile = Profile()
        self.reporter = Reporter(self.profile)
        self.track_shadow = track_shadow
        self.quantum = quantum
        self.max_steps = max_steps
        self.input_lines = deque(input_lines or [])
        self._default_input = b"simulated-input\x00"

        self.threads: List[ThreadState] = []
        self._joiners: Dict[int, List[ThreadState]] = {}
        self._mutexes: Dict[int, Tuple[int, deque]] = {}
        self._globals: Dict[str, int] = {}
        self._rng_state = 0x2545F4914F6CDD1D

        self._builtins: Dict[str, Callable] = dict(libc_module.REGISTRY)
        if extern:
            self._builtins.update(extern)
        self._unresolved_check()
        self._layout_globals()

        self._hb = self.hooks.before
        self._ha = self.hooks.after
        self._fire_seq = 0
        self._current_thread: Optional[ThreadState] = None
        self._tracer = None

        #: Instrumentation-elision masks (repro.staticpass.elide): each
        #: attached analysis registers the site mask it proved safe (an
        #: empty mask vetoes).  The effective mask is the intersection,
        #: so hooks are only suppressed where *every* analysis agreed.
        self._elision_masks: List[Dict[Tuple[str, str, int], frozenset]] = []
        # Identity sets of Load/Store instruction objects whose
        # before/after hooks are suppressed (reference backend).
        self._elide_before: frozenset = frozenset()
        self._elide_after: frozenset = frozenset()

        #: "compiled" (default): decode-once closure execution, see
        #: :mod:`repro.vm.compile`.  "bytecode": the optimizing
        #: superinstruction backend, see :mod:`repro.vm.bytecode`.
        #: "reference": the object-walking switch loop below.  All three
        #: produce the same observable state, bit for bit.
        self.backend = backend
        self._entry_code: Optional[Dict[str, list]] = None

    def set_tracer(self, tracer) -> None:
        """Install an :class:`repro.vm.events.ExecutionTracer` (or None).

        Must be called before :meth:`run`; threads already created would
        otherwise miss their frame_push notifications.
        """
        if self.threads:
            raise VMError("set_tracer must be called before run()")
        self._tracer = tracer

    def register_elision(
        self, mask: Dict[Tuple[str, str, int], frozenset]
    ) -> None:
        """Register one analysis's statically-skippable hook sites.

        ``mask`` maps ``(function, block label, instruction index)`` to
        the hook positions (``"before"``/``"after"``) proved redundant
        by :mod:`repro.staticpass.elide`.  Every attaching analysis
        registers a mask (possibly empty); only the intersection is
        applied, so one elision-unsafe analysis disables elision for
        the whole run.  Must be called before :meth:`run`.
        """
        if self.threads:
            raise VMError("register_elision must be called before run()")
        self._elision_masks.append(dict(mask))

    def _elision_sites(self) -> Dict[Tuple[str, str, int], frozenset]:
        """Effective site mask: intersection of all registered masks."""
        if not self._elision_masks:
            return {}
        effective = dict(self._elision_masks[0])
        for mask in self._elision_masks[1:]:
            merged = {}
            for site, positions in effective.items():
                other = mask.get(site)
                if other:
                    common = positions & other
                    if common:
                        merged[site] = common
            effective = merged
        return effective

    def _materialize_elision(self) -> None:
        """Resolve the site mask to instruction identities for the
        reference loop (the compiled backend resolves at bind time)."""
        before, after = set(), set()
        for (fname, label, index), positions in self._elision_sites().items():
            function = self.module.functions.get(fname)
            block = function.blocks.get(label) if function else None
            if block is None or index >= len(block.instructions):
                continue
            instr_id = id(block.instructions[index])
            if "before" in positions:
                before.add(instr_id)
            if "after" in positions:
                after.add(instr_id)
        self._elide_before = frozenset(before)
        self._elide_after = frozenset(after)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _unresolved_check(self) -> None:
        for name in validate_module(self.module):
            base = name.split("$", 1)[0]
            if base in ("spawn", "global_addr", "join", "mutex_lock", "mutex_unlock"):
                continue
            if base not in self._builtins:
                raise IRError(f"unresolved call target {name!r}")

    def _layout_globals(self) -> None:
        cursor = AddressSpace.GLOBALS_BASE
        for name, size in self.module.globals.items():
            self._globals[name] = cursor
            cursor += (size + 63) & ~63  # line-align each global

    def global_address(self, name: str) -> int:
        try:
            return self._globals[name]
        except KeyError:
            raise VMError(f"unknown global {name!r}") from None

    # ------------------------------------------------------------------
    # memory helpers for builtins / runtime structures
    # ------------------------------------------------------------------
    def mem_read(self, address: int, size: int) -> int:
        self.profile.mem_cycles += self.cache.access(address, size)
        return self.memory.read(address, size)

    def mem_write(self, address: int, value: int, size: int) -> None:
        self.profile.mem_cycles += self.cache.access(address, size)
        self.memory.write(address, value, size)

    def next_input(self) -> bytes:
        if self.input_lines:
            return self.input_lines.popleft()
        return self._default_input

    def rand(self) -> int:
        # xorshift64*, deterministic across runs
        x = self._rng_state
        x ^= (x >> 12) & _MASK64
        x = (x ^ (x << 25)) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._rng_state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    # ------------------------------------------------------------------
    # threads
    # ------------------------------------------------------------------
    def _new_thread(self, function: Function, args: Sequence[int]) -> ThreadState:
        if len(args) != len(function.params):
            raise VMError(
                f"{function.name} expects {len(function.params)} args, got {len(args)}"
            )
        thread = ThreadState(len(self.threads))
        entry_code = self._entry_code
        frame = Frame(
            function, dict(zip(function.params, args)),
            entry_code[function.name] if entry_code is not None else None,
        )
        frame.stack_mark = thread.stack_top
        thread.frames.append(frame)
        self.threads.append(thread)
        if self._tracer is not None:
            self._tracer.frame_push(frame.shadow, thread.tid)
        return thread

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def run(self, entry: str = "main", args: Sequence[int] = ()) -> Profile:
        if self.backend == "compiled":
            if self._entry_code is None:
                # Bound here — not in __init__ — so the snapshot sees the
                # hooks analyses attached and any wrapped cache.access.
                from repro.vm.compile import bind_module

                self._entry_code = bind_module(self)
            run_quantum = self._run_quantum_compiled
        elif self.backend == "bytecode":
            if self._entry_code is None:
                from repro.vm.bytecode import bind_bytecode

                self._entry_code = bind_bytecode(self)
            # Threaded modules (and hook-heavy binds) have no fused
            # segments — every width is 1 — so the cheaper fixed-stride
            # compiled driver is exact for them.
            if any(
                w != 1
                for bc in self._entry_code.values()
                for w in bc.widths
            ):
                run_quantum = self._run_quantum_bytecode
            else:
                run_quantum = self._run_quantum_compiled
        else:
            if self._elision_masks and not self.threads:
                self._materialize_elision()
            run_quantum = self._run_quantum
        main = self.module.get_function(entry)
        self._new_thread(main, list(args))
        steps_budget = self.max_steps
        while True:
            ran_any = False
            all_done = True
            for thread in list(self.threads):
                status = thread.status
                if status == _DONE:
                    continue
                all_done = False
                if status != _RUNNABLE:
                    continue
                ran_any = True
                executed = run_quantum(thread)
                steps_budget -= executed
                if steps_budget <= 0:
                    raise VMError(f"exceeded max_steps={self.max_steps}")
            if all_done:
                break
            if not ran_any:
                raise DeadlockError(
                    f"all {len(self.threads)} threads blocked "
                    f"(joins/mutexes can never be satisfied)"
                )
        self.profile.heap_peak_bytes = self.heap.peak_bytes
        self.profile.cache = self.cache.stats
        return self.profile

    # ------------------------------------------------------------------
    # core execution
    # ------------------------------------------------------------------
    def _run_quantum_compiled(self, thread: ThreadState) -> int:
        """Quantum driver for the closure backend (:mod:`repro.vm.compile`).

        Each slot in ``frame.code`` is a specialized ``step(thread,
        frame)`` closure; all decode happened at bind time.  The frame,
        its code list, and the instruction pointer live in *locals*
        (threaded-code style — see the ``Step`` protocol in
        :mod:`repro.vm.compile`): ``None`` advances the local ip, a
        returned :class:`Frame` is a control transfer the driver reloads
        from, and any other truthy value ends the quantum (thread
        blocked or finished — ``frame.ip`` was already synchronized by
        the closure, so no write-back, which would clobber the rewound
        ip of a join/lock retry).  The per-step ``instructions``/
        ``base_cycles`` increments are batched into one add per quantum;
        the try/finally keeps the totals exact even when a step raises
        (the reference counts the raising instruction too, and the for
        loop has already assigned ``n`` when the body runs).
        """
        profile = self.profile
        frame = thread.frames[-1]
        code = frame.code
        ip = frame.ip
        n = 0
        self._current_thread = thread
        try:
            for n in range(1, self.quantum + 1):
                r = code[ip](thread, frame)
                if r is None:
                    ip += 1
                elif r.__class__ is Frame:
                    frame = r
                    code = frame.code
                    ip = frame.ip
                else:
                    return n
            frame.ip = ip
        finally:
            profile.instructions += n
            profile.base_cycles += n
        return n

    def _run_quantum_bytecode(self, thread: ThreadState) -> int:
        """Quantum driver for the flat superinstruction backend
        (:mod:`repro.vm.bytecode`).

        Same threaded-code protocol as :meth:`_run_quantum_compiled`,
        but a slot may cover several reference instructions
        (``code.widths``), so the driver spends *budget* instead of
        counting iterations and may overshoot the quantum by up to one
        segment.  Fused segments only exist in single-threaded modules
        — where quantum boundaries are unobservable — so round-robin
        interleaving in threaded modules (all widths 1) stays exact.
        A raising segment compensates its own unexecuted remainder
        before the finally-billing here lands (see
        :mod:`repro.vm.bytecode.codegen`).
        """
        profile = self.profile
        frame = thread.frames[-1]
        code = frame.code
        widths = code.widths
        ip = frame.ip
        n = 0
        self._current_thread = thread
        try:
            budget = self.quantum
            while budget > 0:
                w = widths[ip]
                n += w
                budget -= w
                r = code[ip](thread, frame)
                if r is None:
                    ip += 1
                elif r.__class__ is Frame:
                    frame = r
                    code = frame.code
                    widths = code.widths
                    ip = frame.ip
                else:
                    return n
            frame.ip = ip
        finally:
            profile.instructions += n
            profile.base_cycles += n
        return n

    def _run_quantum(self, thread: ThreadState) -> int:
        profile = self.profile
        cache_access = self.cache.access
        memory = self.memory
        track_shadow = self.track_shadow
        tracer = self._tracer
        hb = self._hb
        ha = self._ha
        elide_before = self._elide_before
        elide_after = self._elide_after
        executed = 0

        self._current_thread = thread
        while executed < self.quantum and thread.status == _RUNNABLE:
            frame = thread.frames[-1]
            instr = frame.code[frame.ip]
            frame.ip += 1
            executed += 1
            profile.instructions += 1
            profile.base_cycles += 1
            regs = frame.regs
            cls = instr.__class__

            if cls is Const:
                regs[instr.result] = instr.value
                if track_shadow:
                    frame.shadow[instr.result] = 0
                    if tracer is not None:
                        tracer.shadow_set0(frame.shadow, instr.result)
                if "ConstInst" in ha:
                    self._fire(
                        ha["ConstInst"], "ConstInst", thread, frame, instr,
                        (instr.value,), instr.value, _EIGHT, 8,
                    )

            elif cls is BinOp:
                lhs = instr.lhs
                rhs = instr.rhs
                a = regs[lhs] if type(lhs) is str else lhs
                b = regs[rhs] if type(rhs) is str else rhs
                op = instr.op
                if op == "add":
                    value = a + b
                elif op == "sub":
                    value = a - b
                elif op == "mul":
                    value = a * b
                elif op == "div":
                    if b == 0:
                        raise VMError(f"division by zero at {self._loc(frame, instr)}")
                    value = abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)
                elif op == "rem":
                    if b == 0:
                        raise VMError(f"remainder by zero at {self._loc(frame, instr)}")
                    value = abs(a) % abs(b) * (1 if a >= 0 else -1)
                elif op == "and":
                    value = (a & b) & _MASK64
                elif op == "or":
                    value = (a | b) & _MASK64
                elif op == "xor":
                    value = (a ^ b) & _MASK64
                elif op == "shl":
                    value = (a << (b & 63)) & _MASK64
                elif op == "shr":
                    value = (a & _MASK64) >> (b & 63)
                else:
                    raise VMError(f"unknown binop {op!r}")
                if "BinaryOperator" in hb:
                    self._fire(
                        hb["BinaryOperator"], "BinaryOperator", thread, frame, instr,
                        (a, b), None, _EIGHT_EIGHT, 8,
                    )
                regs[instr.result] = value
                if track_shadow:
                    shadow = frame.shadow
                    meta = (shadow.get(lhs, 0) if type(lhs) is str else 0) | (
                        shadow.get(rhs, 0) if type(rhs) is str else 0
                    )
                    shadow[instr.result] = meta
                    profile.instr_cycles += _SHADOW_PROP_CYCLES
                    if tracer is not None:
                        tracer.shadow_or2(
                            shadow, instr.result,
                            lhs if type(lhs) is str else None,
                            rhs if type(rhs) is str else None,
                        )
                if "BinaryOperator" in ha:
                    self._fire(
                        ha["BinaryOperator"], "BinaryOperator", thread, frame, instr,
                        (a, b), value, _EIGHT_EIGHT, 8,
                    )

            elif cls is Cmp:
                lhs = instr.lhs
                rhs = instr.rhs
                a = regs[lhs] if type(lhs) is str else lhs
                b = regs[rhs] if type(rhs) is str else rhs
                op = instr.op
                if op == "eq":
                    value = 1 if a == b else 0
                elif op == "ne":
                    value = 1 if a != b else 0
                elif op == "lt":
                    value = 1 if a < b else 0
                elif op == "le":
                    value = 1 if a <= b else 0
                elif op == "gt":
                    value = 1 if a > b else 0
                else:
                    value = 1 if a >= b else 0
                regs[instr.result] = value
                if track_shadow:
                    shadow = frame.shadow
                    meta = (shadow.get(lhs, 0) if type(lhs) is str else 0) | (
                        shadow.get(rhs, 0) if type(rhs) is str else 0
                    )
                    shadow[instr.result] = meta
                    profile.instr_cycles += _SHADOW_PROP_CYCLES
                    if tracer is not None:
                        tracer.shadow_or2(
                            shadow, instr.result,
                            lhs if type(lhs) is str else None,
                            rhs if type(rhs) is str else None,
                        )
                if "CmpInst" in ha:
                    self._fire(
                        ha["CmpInst"], "CmpInst", thread, frame, instr,
                        (a, b), value, _EIGHT_EIGHT, 8,
                    )

            elif cls is Load:
                address_op = instr.address
                address = regs[address_op] if type(address_op) is str else address_op
                size = instr.size
                if "LoadInst" in hb and id(instr) not in elide_before:
                    self._fire(
                        hb["LoadInst"], "LoadInst", thread, frame, instr,
                        (address,), None, _EIGHT, size,
                    )
                profile.mem_cycles += cache_access(address, size)
                value = memory.read(address, size)
                regs[instr.result] = value
                if track_shadow:
                    frame.shadow[instr.result] = 0
                    if tracer is not None:
                        tracer.shadow_set0(frame.shadow, instr.result)
                if "LoadInst" in ha and id(instr) not in elide_after:
                    self._fire(
                        ha["LoadInst"], "LoadInst", thread, frame, instr,
                        (address,), value, _EIGHT, size,
                    )

            elif cls is Store:
                value_op = instr.value
                address_op = instr.address
                value = regs[value_op] if type(value_op) is str else value_op
                address = regs[address_op] if type(address_op) is str else address_op
                size = instr.size
                if "StoreInst" in hb and id(instr) not in elide_before:
                    self._fire(
                        hb["StoreInst"], "StoreInst", thread, frame, instr,
                        (value, address), None, (size, 8), 0,
                    )
                profile.mem_cycles += cache_access(address, size)
                memory.write(address, value, size)
                if "StoreInst" in ha and id(instr) not in elide_after:
                    self._fire(
                        ha["StoreInst"], "StoreInst", thread, frame, instr,
                        (value, address), None, (size, 8), 0,
                    )

            elif cls is Br:
                cond_op = instr.cond
                cond = regs[cond_op] if type(cond_op) is str else cond_op
                if "BranchInst" in hb:
                    self._fire(
                        hb["BranchInst"], "BranchInst", thread, frame, instr,
                        (cond,), None, _EIGHT, 0,
                    )
                label = instr.then_label if cond else instr.else_label
                frame.code = frame.blocks[label].instructions
                frame.ip = 0
                if "BranchInst" in ha:
                    self._fire(
                        ha["BranchInst"], "BranchInst", thread, frame, instr,
                        (cond,), None, _EIGHT, 0,
                    )

            elif cls is Jmp:
                frame.code = frame.blocks[instr.label].instructions
                frame.ip = 0

            elif cls is Alloca:
                size_op = instr.size
                size = regs[size_op] if type(size_op) is str else size_op
                thread.stack_top -= (size + 15) & ~15
                if thread.stack_top <= thread.stack_base:
                    raise VMError(f"stack overflow in thread {thread.tid}")
                address = thread.stack_top
                regs[instr.result] = address
                if track_shadow:
                    frame.shadow[instr.result] = 0
                    if tracer is not None:
                        tracer.shadow_set0(frame.shadow, instr.result)
                if "AllocaInst" in ha:
                    self._fire(
                        ha["AllocaInst"], "AllocaInst", thread, frame, instr,
                        (size,), address, _EIGHT, size,
                    )

            elif cls is Call:
                self._do_call(thread, frame, instr)

            elif cls is Ret:
                if "ReturnInst" in hb:
                    value_op = instr.value
                    value = (
                        regs[value_op] if type(value_op) is str
                        else (0 if value_op is None else value_op)
                    )
                    self._fire(
                        hb["ReturnInst"], "ReturnInst", thread, frame, instr,
                        (value,), None, _EIGHT, 0,
                    )
                self._do_ret(thread, frame, instr)

            else:  # pragma: no cover - defensive
                raise VMError(f"unknown instruction {instr!r}")

        return executed

    # ------------------------------------------------------------------
    # calls and returns
    # ------------------------------------------------------------------
    def _do_call(self, thread: ThreadState, frame: Frame, instr: Call) -> None:
        profile = self.profile
        profile.base_cycles += _CALL_CYCLES
        regs = frame.regs
        args = tuple(regs[a] if type(a) is str else a for a in instr.args)
        callee = instr.callee
        hb = self._hb
        ha = self._ha

        if "CallInst" in hb:
            self._fire(hb["CallInst"], "CallInst", thread, frame, instr, args, None,
                       (8,) * len(args), 8)

        # Module-defined function: push a frame; after-hooks fire at Ret.
        target = self.module.functions.get(callee)
        if target is not None:
            if len(args) != len(target.params):
                raise VMError(
                    f"{callee} expects {len(target.params)} args, got {len(args)}"
                )
            key = "func:" + callee
            if key in hb:
                self._fire(hb[key], key, thread, frame, instr, args, None,
                           (8,) * len(args), 8)
            new_frame = Frame(target, dict(zip(target.params, args)))
            new_frame.stack_mark = thread.stack_top
            new_frame.call_instr = instr
            new_frame.call_ops = args
            new_frame.caller_shadow = frame.shadow
            tracer = self._tracer
            if tracer is not None:
                tracer.frame_push(
                    new_frame.shadow, thread.tid, frame.shadow,
                    self._bt_entry(frame),
                )
            if self.track_shadow:
                caller_shadow = frame.shadow
                for param, arg in zip(target.params, instr.args):
                    new_frame.shadow[param] = (
                        caller_shadow.get(arg, 0) if type(arg) is str else 0
                    )
                    if tracer is not None:
                        tracer.shadow_mov(
                            new_frame.shadow, param, caller_shadow,
                            arg if type(arg) is str else None,
                        )
            thread.frames.append(new_frame)
            return

        # Interpreter-level pseudo-calls.
        base, _, suffix = callee.partition("$")
        if base == "global_addr":
            value = self.global_address(suffix)
        elif base == "spawn":
            value = self._do_spawn(thread, frame, instr, suffix, args)
        elif base == "join":
            if self._do_join(thread, args):
                return  # blocked: retry this instruction when woken
            value = self.threads[args[0]].result
        elif base == "mutex_lock":
            key = "func:mutex_lock"
            if key in hb:
                self._fire(hb[key], key, thread, frame, instr, args, None, _EIGHT, 8)
            if self._do_lock(thread, args[0]):
                return  # blocked; before-hook refires on retry, matching spin acquisition
            profile.base_cycles += 4  # atomic RMW cost
            if key in ha:
                self._fire(ha[key], key, thread, frame, instr, args, 0, _EIGHT, 8)
            self._finish_call(thread, frame, instr, 0)
            return
        elif base == "mutex_unlock":
            key = "func:mutex_unlock"
            if key in hb:
                self._fire(hb[key], key, thread, frame, instr, args, None, _EIGHT, 8)
            self._do_unlock(thread, args[0])
            profile.base_cycles += 4
            if key in ha:
                self._fire(ha[key], key, thread, frame, instr, args, 0, _EIGHT, 8)
            self._finish_call(thread, frame, instr, 0)
            return
        else:
            builtin = self._builtins.get(callee)
            if builtin is None:
                raise VMError(f"call to unknown function {callee!r}")
            key = "func:" + callee
            if key in hb:
                self._fire(hb[key], key, thread, frame, instr, args, None,
                           (8,) * len(args), 8)
            value = builtin(self, thread, args)
            if value is None:
                value = 0
            if key in ha:
                self._fire(ha[key], key, thread, frame, instr, args, value,
                           (8,) * len(args), 8)
            self._finish_call(thread, frame, instr, value)
            return

        key = "func:" + base
        if key in ha:
            self._fire(ha[key], key, thread, frame, instr, args, value,
                       (8,) * len(args), 8)
        self._finish_call(thread, frame, instr, value)

    def _finish_call(self, thread: ThreadState, frame: Frame, instr: Call, value: int) -> None:
        if instr.result is not None:
            frame.regs[instr.result] = value
            if self.track_shadow:
                frame.shadow.setdefault(instr.result, 0)
                if self._tracer is not None:
                    self._tracer.shadow_default(frame.shadow, instr.result)

    def _do_ret(self, thread: ThreadState, frame: Frame, instr: Ret) -> None:
        value_op = instr.value
        value = 0
        if value_op is not None:
            value = frame.regs[value_op] if type(value_op) is str else value_op
        thread.stack_top = frame.stack_mark
        thread.frames.pop()
        tracer = self._tracer

        if not thread.frames:
            thread.status = _DONE
            thread.result = value
            for waiter in self._joiners.pop(thread.tid, []):
                waiter.status = _RUNNABLE
            if tracer is not None:
                tracer.frame_pop(frame.shadow, thread.tid)
            return

        caller = thread.frames[-1]
        call_instr = frame.call_instr
        if call_instr is not None and call_instr.result is not None:
            caller.regs[call_instr.result] = value
            if self.track_shadow:
                returned_shadow = (
                    frame.shadow.get(value_op, 0) if type(value_op) is str else 0
                )
                caller.shadow[call_instr.result] = returned_shadow
                if tracer is not None:
                    tracer.shadow_mov(
                        caller.shadow, call_instr.result, frame.shadow,
                        value_op if type(value_op) is str else None,
                    )
        if tracer is not None:
            tracer.frame_pop(frame.shadow, thread.tid)
        key = "func:" + frame.function.name
        if call_instr is not None and key in self._ha:
            self._fire(
                self._ha[key], key, thread, caller, call_instr,
                frame.call_ops, value, (8,) * len(frame.call_ops), 8,
            )

    # ------------------------------------------------------------------
    # threading primitives
    # ------------------------------------------------------------------
    def _do_spawn(self, thread: ThreadState, frame: Frame, instr: Call,
                  func_name: str, args: Tuple[int, ...]) -> int:
        target = self.module.functions.get(func_name)
        if target is None:
            raise VMError(f"spawn of unknown function {func_name!r}")
        child = self._new_thread(target, list(args))
        self.profile.base_cycles += 200  # thread creation cost
        return child.tid  # after-hooks fire in _do_call's tail ($r = child tid)

    def _do_join(self, thread: ThreadState, args: Tuple[int, ...]) -> bool:
        """Returns True if the thread blocked (instruction must be retried)."""
        target_tid = args[0]
        if target_tid < 0 or target_tid >= len(self.threads):
            raise VMError(f"join of unknown thread {target_tid}")
        target = self.threads[target_tid]
        if target.status == _DONE:
            self.profile.base_cycles += 100
            return False
        thread.status = _BLOCKED_JOIN
        thread.wait_tid = target_tid
        thread.frames[-1].ip -= 1  # re-execute the join when woken
        self._joiners.setdefault(target_tid, []).append(thread)
        return True

    def _do_lock(self, thread: ThreadState, mutex: int) -> bool:
        """Returns True if the thread blocked."""
        state = self._mutexes.get(mutex)
        if state is None or state[0] == -1:
            self._mutexes[mutex] = (thread.tid, state[1] if state else deque())
            return False
        owner, waiters = state
        if owner == thread.tid:
            raise VMError(f"thread {thread.tid} re-locking mutex {mutex:#x}")
        thread.status = _BLOCKED_MUTEX
        thread.wait_mutex = mutex
        thread.frames[-1].ip -= 1
        waiters.append(thread)
        return True

    def _do_unlock(self, thread: ThreadState, mutex: int) -> None:
        state = self._mutexes.get(mutex)
        if state is None or state[0] != thread.tid:
            raise VMError(
                f"thread {thread.tid} unlocking mutex {mutex:#x} it does not hold"
            )
        waiters = state[1]
        self._mutexes[mutex] = (-1, waiters)
        if waiters:
            waiter = waiters.popleft()
            waiter.status = _RUNNABLE

    # ------------------------------------------------------------------
    # event dispatch
    # ------------------------------------------------------------------
    def _fire(
        self,
        callbacks,
        kind: str,
        thread: ThreadState,
        frame: Frame,
        instr,
        ops: Tuple[int, ...],
        result: Optional[int],
        sizes: Tuple[int, ...],
        result_size: int,
    ) -> None:
        profile = self.profile
        if isinstance(instr, Call):
            operand_regs = tuple(a if type(a) is str else None for a in instr.args)
            result_reg = instr.result
        else:
            operand_regs = tuple(
                op if type(op) is str else None for op in instr.operands()
            )
            result_reg = instr.dst
        self._fire_seq += 1
        context = EventContext(
            self, kind, thread.tid, ops, result, frame.shadow,
            operand_regs, result_reg, sizes, result_size,
            self._loc(frame, instr),
            self._fire_seq,
        )
        for callback in callbacks:
            profile.handler_calls += 1
            # Inlined handlers (ALDAcc section 5.5) bill less dispatch
            # than out-of-line hook functions.
            profile.instr_cycles += getattr(
                callback, "dispatch_cycles", _HANDLER_DISPATCH_CYCLES
            )
            profile.count_event(kind)
            callback(context)

    def backtrace(self, limit: int = 16) -> Tuple[str, ...]:
        """Call stack of the currently executing thread, innermost first.

        Frames render as ``function+ip`` (or the instruction's source
        location when tagged) — the "analysis backtrace" ALDA's
        alda_assert attaches to reports (paper section 3.1.1).
        """
        thread = self._current_thread
        if thread is None or not thread.frames:
            return ()
        return tuple(
            self._bt_entry(frame) for frame in reversed(thread.frames[-limit:])
        )

    @staticmethod
    def _bt_entry(frame: Frame) -> str:
        """One frame's backtrace entry, exactly as :meth:`backtrace` renders it."""
        code = frame.code
        bts = getattr(code, "bts", None)
        if bts is not None:
            # Flat bytecode: the side table maps the flat ip back to the
            # reference's block-relative rendering (repro.vm.bytecode.ops).
            return bts[frame.ip]
        index = max(0, frame.ip - 1)
        instr = code[index] if index < len(code) else None
        loc = getattr(instr, "loc", "") if instr is not None else ""
        return loc if loc else f"{frame.function.name}+{frame.ip}"

    @staticmethod
    def _loc(frame: Frame, instr) -> str:
        if instr.loc:
            return instr.loc
        return f"{frame.function.name}+{frame.ip}"
