"""Simulated flat memory, heap allocator, and address-space layout.

Memory is byte-addressed and little-endian, stored sparsely as 8-byte
words.  Reads of unwritten memory yield zero bytes — *tracking* of
uninitialized reads is an analysis concern (that is MemorySanitizer's job),
not the substrate's.

The address-space layout keeps program memory and analysis metadata in
disjoint regions of the same space, so both kinds of traffic share one
cache simulator (see DESIGN.md section 5).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import MemoryFault

_MASK64 = (1 << 64) - 1


class AddressSpace:
    """Well-known region bases of the simulated address space."""

    NULL_GUARD = 0x1000
    GLOBALS_BASE = 0x0001_0000
    HEAP_BASE = 0x1000_0000
    STACK_BASE = 0x7000_0000
    STACK_STRIDE = 0x0010_0000  # 1 MiB per thread
    METADATA_BASE = 0x1_0000_0000


class Memory:
    """Sparse word-backed byte-addressable memory."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}

    def read(self, address: int, size: int) -> int:
        if address < AddressSpace.NULL_GUARD:
            raise MemoryFault(address, "read through null guard page")
        if size == 8 and address & 7 == 0:
            return self._words.get(address >> 3, 0)
        return self._read_slow(address, size)

    def _read_slow(self, address: int, size: int) -> int:
        value = 0
        words = self._words
        for offset in range(size):
            byte_addr = address + offset
            word = words.get(byte_addr >> 3, 0)
            byte = (word >> ((byte_addr & 7) * 8)) & 0xFF
            value |= byte << (offset * 8)
        return value

    def write(self, address: int, value: int, size: int) -> None:
        if address < AddressSpace.NULL_GUARD:
            raise MemoryFault(address, "write through null guard page")
        value &= (1 << (size * 8)) - 1
        if size == 8 and address & 7 == 0:
            self._words[address >> 3] = value
            return
        self._write_slow(address, value, size)

    def _write_slow(self, address: int, value: int, size: int) -> None:
        words = self._words
        for offset in range(size):
            byte_addr = address + offset
            index = byte_addr >> 3
            shift = (byte_addr & 7) * 8
            word = words.get(index, 0)
            byte = (value >> (offset * 8)) & 0xFF
            words[index] = (word & ~(0xFF << shift)) | (byte << shift)

    def fill(self, address: int, byte: int, size: int) -> None:
        """memset: write ``size`` copies of ``byte`` starting at ``address``."""
        pattern = byte & 0xFF
        word_pattern = int.from_bytes(bytes([pattern]) * 8, "little")
        end = address + size
        cursor = address
        while cursor < end and cursor & 7:
            self.write(cursor, pattern, 1)
            cursor += 1
        words = self._words
        while cursor + 8 <= end:
            words[cursor >> 3] = word_pattern
            cursor += 8
        while cursor < end:
            self.write(cursor, pattern, 1)
            cursor += 1

    def copy(self, dst: int, src: int, size: int) -> None:
        """memcpy with correct overlap handling (copies through a snapshot)."""
        data = [self.read(src + offset, 1) for offset in range(size)]
        for offset, byte in enumerate(data):
            self.write(dst + offset, byte, 1)


class Heap:
    """Bump allocator with free bookkeeping.

    Freed blocks are not reused by default: fresh addresses make
    use-after-free behaviour deterministic and keep the substrate simple.
    Double frees and frees of non-heap pointers are *tolerated* (counted
    in ``double_frees``/``bad_frees``) — like a production allocator they
    are program bugs for an analysis to report, not substrate crashes.
    """

    def __init__(self, base: int = AddressSpace.HEAP_BASE) -> None:
        self._cursor = base
        self.allocations: Dict[int, int] = {}
        self.freed: Set[int] = set()
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self.double_frees = 0
        self.bad_frees = 0
        self._live_bytes = 0

    def malloc(self, size: int) -> int:
        if size <= 0:
            size = 1
        address = self._cursor
        aligned = (size + 15) & ~15
        self._cursor += aligned + 16  # 16-byte guard gap between blocks
        self.allocations[address] = size
        self.bytes_allocated += size
        self._live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        return address

    def free(self, address: int) -> int:
        """Free a block; returns its size (analyses need it)."""
        if address == 0:
            return 0
        if address in self.freed:
            self.double_frees += 1
            return 0
        size = self.allocations.get(address)
        if size is None:
            self.bad_frees += 1
            return 0
        self.freed.add(address)
        self._live_bytes -= size
        return size

    def size_of(self, address: int) -> int:
        return self.allocations.get(address, 0)

    def live_blocks(self) -> Dict[int, int]:
        return {
            address: size
            for address, size in self.allocations.items()
            if address not in self.freed
        }
