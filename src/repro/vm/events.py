"""Instrumentation join points.

The VM fires an event at every instrumentable instruction and at every
call boundary, before and/or after, exactly mirroring ALDA's
``insert (before|after) <insert-point>`` declarations.  Hook keys are:

* an instruction-kind name: ``"LoadInst"``, ``"StoreInst"``, ``"AllocaInst"``,
  ``"BranchInst"``, ``"BinaryOperator"``, ``"CmpInst"``, ``"CallInst"``,
  ``"ReturnInst"``;
* a function boundary: ``"func:<name>"`` (e.g. ``"func:malloc"``), which
  fires for calls to module functions, libc builtins, and simulated library
  functions alike.

An :class:`EventContext` carries everything ALDA's call-arg syntax can ask
for: operand values (``$1..$n``), the result (``$r``), the thread id
(``$t``), operand sizes (``sizeof($X)``), and local (register) metadata
(``$X.m``), with the ability for a handler's return value to become the
result register's metadata.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

Callback = Callable[["EventContext"], None]


class Hooks:
    """Registry of instrumentation callbacks."""

    def __init__(self) -> None:
        self.before: Dict[str, List[Callback]] = {}
        self.after: Dict[str, List[Callback]] = {}

    def add(self, position: str, key: str, callback: Callback) -> None:
        if position not in ("before", "after"):
            raise ValueError(f"position must be 'before' or 'after', not {position!r}")
        table = self.before if position == "before" else self.after
        table.setdefault(key, []).append(callback)

    def add_instruction(self, position: str, kind: str, callback: Callback) -> None:
        self.add(position, kind, callback)

    def add_function(self, position: str, name: str, callback: Callback) -> None:
        self.add(position, "func:" + name, callback)

    @property
    def empty(self) -> bool:
        return not self.before and not self.after

    def keys(self) -> Tuple[str, ...]:
        return tuple(set(self.before) | set(self.after))


class EventContext:
    """A single fired event, as seen by a handler.

    Operand numbering follows LLVM conventions (see
    :mod:`repro.ir.instructions`): for ``StoreInst`` ``$1`` is the stored
    value and ``$2`` the address; for ``LoadInst`` ``$1`` is the address and
    ``$r`` the loaded value; for ``func:<name>`` events ``$1..$n`` are call
    arguments and ``$r`` the return value.
    """

    __slots__ = (
        "vm",
        "kind",
        "tid",
        "ops",
        "result",
        "_shadow_regs",
        "_operand_regs",
        "_result_reg",
        "_sizes",
        "_result_size",
        "loc",
        "seq",
    )

    def __init__(
        self,
        vm,
        kind: str,
        tid: int,
        ops: Tuple[int, ...],
        result: Optional[int],
        shadow_regs: Dict[str, int],
        operand_regs: Tuple[Optional[str], ...],
        result_reg: Optional[str],
        sizes: Tuple[int, ...],
        result_size: int,
        loc: str,
        seq: int = 0,
    ) -> None:
        self.vm = vm
        self.kind = kind
        self.tid = tid
        self.ops = ops
        self.result = result
        self._shadow_regs = shadow_regs
        self._operand_regs = operand_regs
        self._result_reg = result_reg
        self._sizes = sizes
        self._result_size = result_size
        self.loc = loc
        #: monotonically increasing event id — all handlers fired at one
        #: instrumentation event observe the same value
        self.seq = seq

    # -- capture accessors (used by repro.trace.recorder) ---------------
    @property
    def operand_regs(self) -> Tuple[Optional[str], ...]:
        """Register name (or None for constants) behind each operand."""
        return self._operand_regs

    @property
    def result_reg(self) -> Optional[str]:
        """Register name of the result, when the event has one."""
        return self._result_reg

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Byte sizes of all operands (``sizeof($1..$n)``)."""
        return self._sizes

    @property
    def result_size(self) -> int:
        """Byte size of the result (``sizeof($r)``)."""
        return self._result_size

    @property
    def shadow_regs(self) -> Dict[str, int]:
        """The live local-metadata plane this event reads and writes."""
        return self._shadow_regs

    # -- ALDA call-arg accessors ---------------------------------------
    def operand(self, index: int) -> int:
        """``$index`` (1-based)."""
        return self.ops[index - 1]

    def all_operands(self) -> Tuple[int, ...]:
        """``$p``."""
        return self.ops

    def sizeof(self, index_or_r) -> int:
        """``sizeof($X)`` — byte size of operand ``$X`` or of ``$r``."""
        if index_or_r == "r":
            return self._result_size
        return self._sizes[index_or_r - 1]

    def operand_shadow(self, index: int) -> int:
        """``$X.m`` — local metadata of the register behind operand ``$X``."""
        if index > len(self._operand_regs):
            return 0  # synthesized operand (e.g. a void return's 0)
        register = self._operand_regs[index - 1]
        if register is None:
            return 0
        return self._shadow_regs.get(register, 0)

    @property
    def result_shadow(self) -> int:
        """``$r.m`` — local metadata of the result register."""
        if self._result_reg is None:
            return 0
        return self._shadow_regs.get(self._result_reg, 0)

    def set_result_shadow(self, value: int) -> None:
        """Attach a handler's return value as ``$r``'s local metadata."""
        if self._result_reg is not None:
            self._shadow_regs[self._result_reg] = value


class ExecutionTracer:
    """Capture hook for full-execution tracing (see :mod:`repro.trace`).

    An interpreter with a tracer installed (``Interpreter.set_tracer``)
    reports every frame push/pop and every local-metadata (shadow
    register) dataflow operation as it executes.  Together with the
    instrumentation event stream (captured via ordinary :class:`Hooks`
    on every join point) and the cache-access stream, this is exactly
    the information a record/replay system needs to re-fire events
    through an analysis later *without* re-interpreting the IR, while
    keeping the cost model bit-identical.

    The default implementation ignores everything, so subclasses only
    override what they consume.  Shadow dicts are identified by object
    identity between ``frame_push`` and ``frame_pop``.
    """

    def frame_push(self, shadow: Dict[str, int], tid: int, caller_shadow=None,
                   caller_entry: str = "") -> None:
        """A frame was pushed; ``caller_entry`` is its caller's backtrace entry."""

    def frame_pop(self, shadow: Dict[str, int], tid: int) -> None:
        """A frame was popped (its shadow dict will not be referenced again)."""

    def shadow_set0(self, shadow: Dict[str, int], reg: str) -> None:
        """``reg.m := 0`` (Const/Load/Alloca destinations)."""

    def shadow_or2(self, shadow: Dict[str, int], dst: str,
                   lhs: Optional[str], rhs: Optional[str]) -> None:
        """``dst.m := lhs.m | rhs.m`` (BinOp/Cmp; None operands read 0)."""

    def shadow_mov(self, dst_shadow: Dict[str, int], dst: str,
                   src_shadow: Dict[str, int], src: Optional[str]) -> None:
        """``dst.m := src.m`` across frames (call args, return values)."""

    def shadow_default(self, shadow: Dict[str, int], reg: str) -> None:
        """``reg.m := 0`` unless already set (builtin-call results)."""
