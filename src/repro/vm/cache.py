"""Two-level set-associative cache simulator.

Both the subject program's memory traffic and the analysis's metadata
traffic flow through one shared :class:`CacheSim`.  This is what makes the
paper's layout optimizations *measurable* here: co-locating two metadata
values on one line turns the second access into an L1 hit, and an
eliminated lookup performs no access at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of the two cache levels plus DRAM."""

    line_bytes: int = 64
    l1_bytes: int = 32 * 1024
    l1_assoc: int = 8
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 8
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 10
    dram_cycles: int = 60


@dataclass(slots=True)
class CacheStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    dram_fills: int = 0

    @property
    def l1_miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.l1_hits / self.accesses


class _Level:
    """One set-associative LRU level."""

    __slots__ = ("n_sets", "assoc", "sets")

    def __init__(self, total_bytes: int, assoc: int, line_bytes: int) -> None:
        self.n_sets = max(1, total_bytes // (line_bytes * assoc))
        self.assoc = assoc
        self.sets: Dict[int, List[int]] = {}

    def access(self, line: int) -> bool:
        """Touch ``line``; return True on hit.  On miss the line is filled."""
        index = line % self.n_sets
        ways = self.sets.get(index)
        if ways is None:
            self.sets[index] = [line]
            return False
        if ways[-1] == line:
            return True  # already MRU: remove+append would be a no-op
        try:
            ways.remove(line)
        except ValueError:
            ways.append(line)
            if len(ways) > self.assoc:
                ways.pop(0)
            return False
        ways.append(line)
        return True


class CacheSim:
    """Shared cache hierarchy; ``access`` returns the cycle cost."""

    def __init__(self, config: CacheConfig | None = None) -> None:
        self.config = config or CacheConfig()
        self._line_shift = self.config.line_bytes.bit_length() - 1
        self.l1 = _Level(self.config.l1_bytes, self.config.l1_assoc, self.config.line_bytes)
        self.l2 = _Level(self.config.l2_bytes, self.config.l2_assoc, self.config.line_bytes)
        self.stats = CacheStats()
        self._l1_cycles = self.config.l1_hit_cycles
        self._l2_cycles = self.config.l2_hit_cycles
        self._dram_cycles = self.config.dram_cycles

    def access(self, address: int, size: int = 8) -> int:
        """Access ``size`` bytes at ``address``; returns total cycles."""
        shift = self._line_shift
        first = address >> shift
        last = (address + (size if size > 1 else 1) - 1) >> shift
        stats = self.stats
        if first == last:  # the overwhelmingly common, line-local case
            stats.accesses += 1
            if self.l1.access(first):
                stats.l1_hits += 1
                return self._l1_cycles
            if self.l2.access(first):
                stats.l2_hits += 1
                return self._l2_cycles
            stats.dram_fills += 1
            return self._dram_cycles
        cycles = 0
        for line in range(first, last + 1):
            stats.accesses += 1
            if self.l1.access(line):
                stats.l1_hits += 1
                cycles += self._l1_cycles
            elif self.l2.access(line):
                stats.l2_hits += 1
                cycles += self._l2_cycles
            else:
                stats.dram_fills += 1
                cycles += self._dram_cycles
        return cycles

    def reset_stats(self) -> None:
        self.stats = CacheStats()
