"""Run profiles: the cycle accounting behind "normalized overhead".

One :class:`Profile` is produced per VM run.  Total simulated cycles
decompose into three buckets:

* ``base_cycles`` — one cycle per interpreted instruction plus small fixed
  costs (calls, thread operations);
* ``mem_cycles`` — memory-hierarchy cycles for the subject program's own
  loads/stores, from the cache simulator;
* ``instr_cycles`` — everything the analysis adds: handler dispatch,
  handler body operations, and metadata-structure traffic (which also goes
  through the same cache simulator and is included here).

``overhead = instrumented.cycles / uninstrumented.cycles`` is the metric
plotted in the paper's Figures 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.vm.cache import CacheStats


@dataclass
class Profile:
    instructions: int = 0
    base_cycles: int = 0
    mem_cycles: int = 0
    instr_cycles: int = 0
    handler_calls: int = 0
    metadata_ops: int = 0
    metadata_bytes: int = 0
    heap_peak_bytes: int = 0
    reports: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: per-event-kind handler invocation counts, for diagnostics
    events: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.base_cycles + self.mem_cycles + self.instr_cycles

    def count_event(self, kind: str) -> None:
        self.events[kind] = self.events.get(kind, 0) + 1

    def overhead_vs(self, baseline: "Profile") -> float:
        """Normalized overhead of this (instrumented) run vs a clean run."""
        if baseline.cycles == 0:
            raise ValueError("baseline profile has zero cycles")
        return self.cycles / baseline.cycles


class CostMeter:
    """Shared cost sink handed to runtime metadata structures.

    Every metadata operation calls back into one meter so that handler and
    data-structure costs land in ``Profile.instr_cycles`` and metadata
    memory traffic flows through the same cache simulator as the program's.
    """

    __slots__ = ("profile", "cache")

    def __init__(self, profile: Profile, cache) -> None:
        self.profile = profile
        self.cache = cache

    def cycles(self, n: int) -> None:
        self.profile.instr_cycles += n

    def touch(self, address: int, size: int = 8) -> None:
        """A metadata memory access: cache-modelled, billed to the analysis."""
        self.profile.instr_cycles += self.cache.access(address, size)
        self.profile.metadata_ops += 1

    def footprint(self, n_bytes: int) -> None:
        self.profile.metadata_bytes += n_bytes
