"""Closure-compilation backend for the VM (decode-once interpretation).

The reference interpreter (:meth:`repro.vm.interpreter.Interpreter._run_quantum`)
re-decodes every instruction object on every dynamic step: an
``isinstance``-style class dispatch, attribute loads on the instruction,
reg-vs-immediate checks on each operand, and hook-presence lookups — all
per step, forever.  In CPython that decode dominates the loop, and it is
pure waste: none of it can change after the module is built.

This module performs the decode exactly once.  Each IR instruction is
translated into a *specialized Python closure* ``step(thread, frame)``
with every static decision burned into the closure's cells:

* operand register names / immediate values (no ``type(op) is str`` per step),
* the operator implementation (no string comparison chains per step),
* resolved branch targets (closure lists, no label->block lookups),
* resolved call targets, arity checks, and callee categories,
* cost-model constants and the static source location string,
* and — per the Interpreter's flag combination — whether shadow
  tracking, tracing, or any hook bound to that event kind exists at all.

Compilation is two-staged so the expensive part is shared:

* **stage 1** (:func:`compile_module`) is per-module and *cacheable*:
  it walks the IR once and produces, for every instruction, an *emitter*
  ``bind(binder) -> step`` holding only static data.  Results are
  memoized process-wide keyed by the module's IR digest
  (:func:`ir_digest`), so warm workers — e.g.
  :class:`repro.exec.workers.PersistentWorkerPool` processes and the
  :mod:`repro.serve` daemon — compile each distinct module exactly once.
* **stage 2** (:func:`bind_module`) is per-``Interpreter`` and cheap: it
  calls each emitter with a :class:`_Binder` exposing that VM's profile,
  memory, cache, hooks, tracer and shadow flag, yielding the final
  closures.  Binding happens at ``run()`` time, after analyses have
  attached their hooks (and after the trace recorder has wrapped
  ``vm.cache.access``).

The contract with the reference backend is **bit-identical observable
state**: profiles (all cycle counters, cache stats, event counts),
shadow metadata, reports (including locations and backtraces), and event
sequence numbers match exactly.  ``tests/vm/test_backends.py`` enforces
this differentially across every workload and every bundled analysis.

One deliberate restriction: the compiled backend snapshots the hook
table, tracer, and ``track_shadow`` flag when ``run()`` first binds the
module.  Registering hooks for a *new* event kind mid-run is not seen
(appending to an already-registered kind's list is).  All bundled
analyses attach before ``run()``, which is also what
:meth:`Interpreter.set_tracer` already requires.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import VMError
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Const,
    Jmp,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.vm.cache import CacheSim
from repro.vm.events import EventContext
from repro.vm.interpreter import (
    _BLOCKED_JOIN,
    _CALL_CYCLES,
    _DONE,
    _EIGHT,
    _EIGHT_EIGHT,
    _HANDLER_DISPATCH_CYCLES,
    _MASK64,
    _RUNNABLE,
    _SHADOW_PROP_CYCLES,
    Frame,
    Interpreter,
)

_NONE1 = (None,)


def _cache_inlinable(cache) -> bool:
    """True when ``cache.access`` is the stock :class:`CacheSim` method —
    not wrapped by the trace recorder, not a subclass override — so
    load/store closures may inline its L1-MRU-hit fast path.  The
    inlined path re-reads ``cache.stats`` on every step, keeping it
    correct across ``reset_stats()``."""
    return (type(cache) is CacheSim
            and "access" not in cache.__dict__
            and cache.l1.n_sets > 0)

# A step closure takes (thread, frame) and returns one of three things,
# forming a threaded-code protocol that lets the quantum driver keep the
# current frame, code list, and instruction pointer in *locals*:
#
# * ``None``      — straight-line step; the driver advances its local ip.
#   Fast-path closures never touch ``frame.ip`` at all.
# * a ``Frame``   — control transfer (branch, jump, call, return): the
#   closure has set that frame's ``ip``/``code`` and the driver reloads
#   its locals from it.
# * anything else (truthy) — the thread left the RUNNABLE state (blocked
#   join/mutex, final return); the quantum ends.
#
# Because the driver's ip lives in a local, ``frame.ip`` is stale during
# fast straight-line runs.  Every closure that can *observe* the ip —
# fires hooks (handlers may call ``vm.backtrace()``), calls builtins,
# pushes or pops frames, or may block-and-retry — re-synchronizes it
# first with its static successor index (``frame.ip = I1``), restoring
# exactly the state the reference interpreter would have at that point.
# The driver writes the ip back when a quantum expires.
Step = Callable[[object, object], object]
Emitter = Tuple[Callable[["_Binder"], Step], str]


# ----------------------------------------------------------------------
# stage-1 output containers
# ----------------------------------------------------------------------
class CompiledFunction:
    """Static translation of one IR function: emitters per block."""

    __slots__ = ("name", "entry", "blocks")

    def __init__(self, name: str, entry: str,
                 blocks: Dict[str, List[Emitter]]) -> None:
        self.name = name
        self.entry = entry
        self.blocks = blocks


class CompiledModule:
    """Stage-1 result — shareable across Interpreters (and identical
    re-constructions of the same module: emitters reference nothing
    VM-specific, and globals/externs resolve per-VM at bind or run time)."""

    __slots__ = ("digest", "functions")

    def __init__(self, digest: str,
                 functions: Dict[str, CompiledFunction]) -> None:
        self.digest = digest
        self.functions = functions


# ----------------------------------------------------------------------
# stage-1 cache, keyed by IR digest
# ----------------------------------------------------------------------
_CACHE_LOCK = threading.Lock()
_CACHE: "OrderedDict[str, CompiledModule]" = OrderedDict()
_CACHE_CAPACITY = 128
_HITS = 0
_MISSES = 0


def ir_digest(module: Module) -> str:
    """Content digest of a module's canonical disassembly.

    The same addressing scheme the trace store uses: two modules with
    identical text compile identically, whatever their object identity.
    """
    from repro.ir.text import print_module

    return hashlib.sha256(print_module(module).encode("utf-8")).hexdigest()


def compile_cache_stats() -> Dict[str, int]:
    """Process-wide stage-1 cache counters (also surfaced by
    ``repro.serve``'s ``stats`` command)."""
    with _CACHE_LOCK:
        return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_compile_cache() -> None:
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def compile_module(module: Module, digest: Optional[str] = None) -> CompiledModule:
    """Stage 1 with digest-keyed, process-wide memoization."""
    global _HITS, _MISSES
    if digest is None:
        digest = ir_digest(module)
    with _CACHE_LOCK:
        cached = _CACHE.get(digest)
        if cached is not None:
            _CACHE.move_to_end(digest)
            _HITS += 1
            return cached
        _MISSES += 1
    compiled = _compile_module(module, digest)
    with _CACHE_LOCK:
        _CACHE[digest] = compiled
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    return compiled


def _compile_module(module: Module, digest: str) -> CompiledModule:
    functions: Dict[str, CompiledFunction] = {}
    for name, function in module.functions.items():
        blocks: Dict[str, List[Emitter]] = {}
        for label, block in function.blocks.items():
            blocks[label] = [
                _EMITTERS[type(instr)](instr, name, label, index, module)
                for index, instr in enumerate(block.instructions)
            ]
        functions[name] = CompiledFunction(name, function.entry, blocks)
    return CompiledModule(digest, functions)


# ----------------------------------------------------------------------
# stage 2: binding to a concrete Interpreter
# ----------------------------------------------------------------------
class _Binder:
    """Everything an emitter may bake into a closure for one VM."""

    __slots__ = (
        "vm", "profile", "memory", "cache_access", "track_shadow",
        "tracer", "before", "after", "fire", "code", "entries", "elide",
    )

    def __init__(self, vm: Interpreter) -> None:
        self.vm = vm
        self.profile = vm.profile
        self.memory = vm.memory
        # Captured *after* any recorder has wrapped it (bind happens at
        # run() time), so recording sees every access.
        self.cache_access = vm.cache.access
        self.track_shadow = vm.track_shadow
        self.tracer = vm._tracer
        self.before = vm.hooks.before
        self.after = vm.hooks.after
        self.fire = _make_fire(vm)
        #: (function name, block label) -> the shared list object the
        #: block's closures live in; created empty up front so branch
        #: emitters can capture targets before they are filled.
        self.code: Dict[Tuple[str, str], list] = {}
        self.entries: Dict[str, list] = {}
        #: Effective instrumentation-elision mask (repro.staticpass):
        #: (function, label, index) -> suppressed hook positions.
        #: Stage 1 is digest-keyed and shared across VMs, so the
        #: per-analysis mask applies here, at bind time — suppressed
        #: sites see hb/ha as None and get the hookless fast path.
        self.elide = vm._elision_sites()

    def site_hooks(self, kind: str, fname: str, label: str, index: int):
        """Hook lists for one site, with the elision mask applied."""
        hb = self.before.get(kind)
        ha = self.after.get(kind)
        suppressed = self.elide.get((fname, label, index)) if self.elide else None
        if suppressed:
            if "before" in suppressed:
                hb = None
            if "after" in suppressed:
                ha = None
        return hb, ha


def bind_module(vm: Interpreter,
                compiled: Optional[CompiledModule] = None) -> Dict[str, list]:
    """Stage 2: produce executable code lists for one Interpreter.

    Returns ``{function name: entry-block closure list}``; every branch
    target inside the closures aliases the same list objects.
    """
    if compiled is None:
        compiled = compile_module(vm.module)
    binder = _Binder(vm)
    for name, cf in compiled.functions.items():
        for label in cf.blocks:
            binder.code[(name, label)] = []
        binder.entries[name] = binder.code[(name, cf.entry)]
    for name, cf in compiled.functions.items():
        for label, emitters in cf.blocks.items():
            out = binder.code[(name, label)]
            for bind, raw_loc in emitters:
                step = bind(binder)
                if raw_loc:
                    # _bt_entry / backtrace() read `.loc` off whatever
                    # sits in frame.code — tag closures like instructions.
                    step.loc = raw_loc
                out.append(step)
    return binder.entries


def _make_fire(vm: Interpreter):
    """Per-VM event dispatcher, semantically identical to
    :meth:`Interpreter._fire` minus the per-step operand_regs/loc
    derivation (those are closure constants here)."""
    profile = vm.profile

    def fire(callbacks, kind, thread, frame, ops, result, operand_regs,
             result_reg, sizes, result_size, loc):
        vm._fire_seq += 1
        context = EventContext(
            vm, kind, thread.tid, ops, result, frame.shadow,
            operand_regs, result_reg, sizes, result_size, loc, vm._fire_seq,
        )
        for callback in callbacks:
            profile.handler_calls += 1
            profile.instr_cycles += getattr(
                callback, "dispatch_cycles", _HANDLER_DISPATCH_CYCLES
            )
            profile.count_event(kind)
            callback(context)

    return fire


def _make_finish(b: _Binder, result_reg: Optional[str]):
    """Specialized :meth:`Interpreter._finish_call`."""
    if result_reg is None:
        def finish(frame, value):
            return None
        return finish
    if not b.track_shadow:
        def finish(frame, value):
            frame.regs[result_reg] = value
        return finish
    tracer = b.tracer
    if tracer is None:
        def finish(frame, value):
            frame.regs[result_reg] = value
            frame.shadow.setdefault(result_reg, 0)
        return finish

    def finish(frame, value):
        frame.regs[result_reg] = value
        shadow = frame.shadow
        shadow.setdefault(result_reg, 0)
        tracer.shadow_default(shadow, result_reg)
    return finish


def _args_extractor(args_spec: Tuple[object, ...]):
    """Closure turning a frame's regs into the call's args tuple."""
    n = len(args_spec)
    if n == 0:
        empty = ()

        def get0(regs):
            return empty
        return get0
    if n == 1:
        a0 = args_spec[0]
        if type(a0) is str:
            def get1(regs):
                return (regs[a0],)
            return get1
        k1 = (a0,)

        def get1c(regs):
            return k1
        return get1c
    if n == 2:
        a0, a1 = args_spec
        r0 = type(a0) is str
        r1 = type(a1) is str
        if r0 and r1:
            def get2(regs):
                return (regs[a0], regs[a1])
        elif r0:
            def get2(regs):
                return (regs[a0], a1)
        elif r1:
            def get2(regs):
                return (a0, regs[a1])
        else:
            k2 = (a0, a1)

            def get2(regs):
                return k2
        return get2

    def getn(regs):
        return tuple(regs[a] if type(a) is str else a for a in args_spec)
    return getn


# ----------------------------------------------------------------------
# operator implementations (shared by BinOp / Cmp emitters)
# ----------------------------------------------------------------------
def _binop_impl(op: str, loc: str):
    if op == "add":
        return lambda a, b: a + b
    if op == "sub":
        return lambda a, b: a - b
    if op == "mul":
        return lambda a, b: a * b
    if op == "and":
        return lambda a, b: (a & b) & _MASK64
    if op == "or":
        return lambda a, b: (a | b) & _MASK64
    if op == "xor":
        return lambda a, b: (a ^ b) & _MASK64
    if op == "shl":
        return lambda a, b: (a << (b & 63)) & _MASK64
    if op == "shr":
        return lambda a, b: (a & _MASK64) >> (b & 63)
    if op == "div":
        def div(a, b):
            if b == 0:
                raise VMError(f"division by zero at {loc}")
            return abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)
        return div
    if op == "rem":
        def rem(a, b):
            if b == 0:
                raise VMError(f"remainder by zero at {loc}")
            return abs(a) % abs(b) * (1 if a >= 0 else -1)
        return rem
    message = f"unknown binop {op!r}"

    def bad(a, b):
        raise VMError(message)
    return bad


_CMP_IMPL = {
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
}
_CMP_GE = lambda a, b: 1 if a >= b else 0  # noqa: E731  (reference's default arm)


# ----------------------------------------------------------------------
# emitters — one per instruction class
# ----------------------------------------------------------------------
def _emit_const(instr: Const, fname: str, label: str, index: int, module: Module) -> Emitter:
    result = instr.result
    value = instr.value
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    ops = (value,)

    def bind(b: _Binder) -> Step:
        ha = b.after.get("ConstInst")
        shadow_on = b.track_shadow
        tracer = b.tracer
        if ha is None and not shadow_on:
            def step(thread, frame):
                frame.regs[result] = value
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            frame.regs[result] = value
            if shadow_on:
                shadow = frame.shadow
                shadow[result] = 0
                if tracer is not None:
                    tracer.shadow_set0(shadow, result)
            if ha is not None:
                fire(ha, "ConstInst", thread, frame, ops, value,
                     _NONE1, result, _EIGHT, 8, loc)
        return step

    return bind, instr.loc


def _emit_binop(instr: BinOp, fname: str, label: str, index: int, module: Module) -> Emitter:
    result = instr.result
    lhs = instr.lhs
    rhs = instr.rhs
    lreg = type(lhs) is str
    rreg = type(rhs) is str
    op = instr.op
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    opfunc = _binop_impl(op, loc)
    operand_regs = (lhs if lreg else None, rhs if rreg else None)

    def bind(b: _Binder) -> Step:
        hb = b.before.get("BinaryOperator")
        ha = b.after.get("BinaryOperator")
        shadow_on = b.track_shadow
        tracer = b.tracer
        if hb is None and ha is None and not shadow_on:
            # Fully-specialized fast paths for the ops that dominate the
            # dynamic mix; anything exotic goes through opfunc.
            if lreg and rreg:
                if op == "add":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = regs[lhs] + regs[rhs]
                elif op == "sub":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = regs[lhs] - regs[rhs]
                elif op == "mul":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = regs[lhs] * regs[rhs]
                else:
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = opfunc(regs[lhs], regs[rhs])
            elif lreg:
                if op == "add":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = regs[lhs] + rhs
                elif op == "sub":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = regs[lhs] - rhs
                else:
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = opfunc(regs[lhs], rhs)
            elif rreg:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = opfunc(lhs, regs[rhs])
            else:
                def step(thread, frame):
                    frame.regs[result] = opfunc(lhs, rhs)
            return step
        fire = b.fire
        profile = b.profile

        def step(thread, frame):
            frame.ip = nxt
            regs = frame.regs
            a = regs[lhs] if lreg else lhs
            bv = regs[rhs] if rreg else rhs
            value = opfunc(a, bv)  # may raise, matching reference order
            if hb is not None:
                fire(hb, "BinaryOperator", thread, frame, (a, bv), None,
                     operand_regs, result, _EIGHT_EIGHT, 8, loc)
            regs[result] = value
            if shadow_on:
                shadow = frame.shadow
                meta = (shadow.get(lhs, 0) if lreg else 0) | (
                    shadow.get(rhs, 0) if rreg else 0
                )
                shadow[result] = meta
                profile.instr_cycles += _SHADOW_PROP_CYCLES
                if tracer is not None:
                    tracer.shadow_or2(
                        shadow, result,
                        lhs if lreg else None, rhs if rreg else None,
                    )
            if ha is not None:
                fire(ha, "BinaryOperator", thread, frame, (a, bv), value,
                     operand_regs, result, _EIGHT_EIGHT, 8, loc)
        return step

    return bind, instr.loc


def _emit_cmp(instr: Cmp, fname: str, label: str, index: int, module: Module) -> Emitter:
    result = instr.result
    lhs = instr.lhs
    rhs = instr.rhs
    lreg = type(lhs) is str
    rreg = type(rhs) is str
    op = instr.op
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    cmpfunc = _CMP_IMPL.get(op, _CMP_GE)
    operand_regs = (lhs if lreg else None, rhs if rreg else None)

    def bind(b: _Binder) -> Step:
        ha = b.after.get("CmpInst")
        shadow_on = b.track_shadow
        tracer = b.tracer
        if ha is None and not shadow_on:
            if lreg and rreg:
                if op == "lt":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = 1 if regs[lhs] < regs[rhs] else 0
                elif op == "eq":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = 1 if regs[lhs] == regs[rhs] else 0
                else:
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = cmpfunc(regs[lhs], regs[rhs])
            elif lreg:
                if op == "lt":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = 1 if regs[lhs] < rhs else 0
                elif op == "eq":
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = 1 if regs[lhs] == rhs else 0
                else:
                    def step(thread, frame):
                        regs = frame.regs
                        regs[result] = cmpfunc(regs[lhs], rhs)
            elif rreg:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = cmpfunc(lhs, regs[rhs])
            else:
                def step(thread, frame):
                    frame.regs[result] = cmpfunc(lhs, rhs)
            return step
        fire = b.fire
        profile = b.profile

        def step(thread, frame):
            frame.ip = nxt
            regs = frame.regs
            a = regs[lhs] if lreg else lhs
            bv = regs[rhs] if rreg else rhs
            value = cmpfunc(a, bv)
            regs[result] = value
            if shadow_on:
                shadow = frame.shadow
                meta = (shadow.get(lhs, 0) if lreg else 0) | (
                    shadow.get(rhs, 0) if rreg else 0
                )
                shadow[result] = meta
                profile.instr_cycles += _SHADOW_PROP_CYCLES
                if tracer is not None:
                    tracer.shadow_or2(
                        shadow, result,
                        lhs if lreg else None, rhs if rreg else None,
                    )
            if ha is not None:
                fire(ha, "CmpInst", thread, frame, (a, bv), value,
                     operand_regs, result, _EIGHT_EIGHT, 8, loc)
        return step

    return bind, instr.loc


def _emit_load(instr: Load, fname: str, label: str, index: int, module: Module) -> Emitter:
    result = instr.result
    address_op = instr.address
    areg = type(address_op) is str
    size = instr.size
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    operand_regs = (address_op if areg else None,)

    def bind(b: _Binder) -> Step:
        hb, ha = b.site_hooks("LoadInst", fname, label, index)
        shadow_on = b.track_shadow
        tracer = b.tracer
        profile = b.profile
        cache_access = b.cache_access
        memory_read = b.memory.read
        if hb is None and ha is None and not shadow_on:
            cache = b.vm.cache
            if areg and size == 8 and _cache_inlinable(cache):
                # Hottest shape: 8-byte load through a register address
                # on an unwrapped cache.  Inline the L1-MRU-hit
                # accounting and the aligned-word read; anything else
                # (line crossing, L1 miss, unaligned, guard page) falls
                # back to the exact slow calls.
                l1_get = cache.l1.sets.get
                n1 = cache.l1.n_sets
                shift = cache._line_shift
                l1_cycles = cache._l1_cycles
                words_get = b.memory._words.get

                def step(thread, frame):
                    regs = frame.regs
                    address = regs[address_op]
                    line = address >> shift
                    ways = l1_get(line % n1)
                    if (ways is not None and ways[-1] == line
                            and (address + 7) >> shift == line):
                        stats = cache.stats
                        stats.accesses += 1
                        stats.l1_hits += 1
                        profile.mem_cycles += l1_cycles
                    else:
                        profile.mem_cycles += cache_access(address, 8)
                    if address & 7 == 0 and address >= 0x1000:
                        regs[result] = words_get(address >> 3, 0)
                    else:
                        regs[result] = memory_read(address, 8)
                return step
            if areg:
                def step(thread, frame):
                    regs = frame.regs
                    address = regs[address_op]
                    profile.mem_cycles += cache_access(address, size)
                    regs[result] = memory_read(address, size)
            else:
                def step(thread, frame):
                    profile.mem_cycles += cache_access(address_op, size)
                    frame.regs[result] = memory_read(address_op, size)
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            regs = frame.regs
            address = regs[address_op] if areg else address_op
            if hb is not None:
                fire(hb, "LoadInst", thread, frame, (address,), None,
                     operand_regs, result, _EIGHT, size, loc)
            profile.mem_cycles += cache_access(address, size)
            value = memory_read(address, size)
            regs[result] = value
            if shadow_on:
                shadow = frame.shadow
                shadow[result] = 0
                if tracer is not None:
                    tracer.shadow_set0(shadow, result)
            if ha is not None:
                fire(ha, "LoadInst", thread, frame, (address,), value,
                     operand_regs, result, _EIGHT, size, loc)
        return step

    return bind, instr.loc


def _emit_store(instr: Store, fname: str, label: str, index: int, module: Module) -> Emitter:
    value_op = instr.value
    address_op = instr.address
    vreg = type(value_op) is str
    areg = type(address_op) is str
    size = instr.size
    sizes = (size, 8)
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    operand_regs = (value_op if vreg else None, address_op if areg else None)

    def bind(b: _Binder) -> Step:
        hb, ha = b.site_hooks("StoreInst", fname, label, index)
        profile = b.profile
        cache_access = b.cache_access
        memory_write = b.memory.write
        if hb is None and ha is None:
            cache = b.vm.cache
            if areg and size == 8 and _cache_inlinable(cache):
                l1_get = cache.l1.sets.get
                n1 = cache.l1.n_sets
                shift = cache._line_shift
                l1_cycles = cache._l1_cycles
                words = b.memory._words

                def step(thread, frame):
                    regs = frame.regs
                    address = regs[address_op]
                    line = address >> shift
                    ways = l1_get(line % n1)
                    if (ways is not None and ways[-1] == line
                            and (address + 7) >> shift == line):
                        stats = cache.stats
                        stats.accesses += 1
                        stats.l1_hits += 1
                        profile.mem_cycles += l1_cycles
                    else:
                        profile.mem_cycles += cache_access(address, 8)
                    value = regs[value_op] if vreg else value_op
                    if address & 7 == 0 and address >= 0x1000:
                        words[address >> 3] = value & _MASK64
                    else:
                        memory_write(address, value, 8)
                return step

            def step(thread, frame):
                regs = frame.regs
                address = regs[address_op] if areg else address_op
                profile.mem_cycles += cache_access(address, size)
                memory_write(address, regs[value_op] if vreg else value_op, size)
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            regs = frame.regs
            value = regs[value_op] if vreg else value_op
            address = regs[address_op] if areg else address_op
            if hb is not None:
                fire(hb, "StoreInst", thread, frame, (value, address), None,
                     operand_regs, None, sizes, 0, loc)
            profile.mem_cycles += cache_access(address, size)
            memory_write(address, value, size)
            if ha is not None:
                fire(ha, "StoreInst", thread, frame, (value, address), None,
                     operand_regs, None, sizes, 0, loc)
        return step

    return bind, instr.loc


def _emit_br(instr: Br, fname: str, label: str, index: int, module: Module) -> Emitter:
    cond_op = instr.cond
    creg = type(cond_op) is str
    then_label = instr.then_label
    else_label = instr.else_label
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    # The reference fires the after-hook once frame.ip is 0, so _loc
    # renders the *post-jump* position.
    loc_after = instr.loc or f"{fname}+0"
    operand_regs = (cond_op if creg else None,)

    def bind(b: _Binder) -> Step:
        then_code = b.code[(fname, then_label)]
        else_code = b.code[(fname, else_label)]
        hb = b.before.get("BranchInst")
        ha = b.after.get("BranchInst")
        if hb is None and ha is None:
            if creg:
                def step(thread, frame):
                    frame.code = then_code if frame.regs[cond_op] else else_code
                    frame.ip = 0
                    return frame
            else:
                target = then_code if cond_op else else_code

                def step(thread, frame):
                    frame.code = target
                    frame.ip = 0
                    return frame
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            cond = frame.regs[cond_op] if creg else cond_op
            if hb is not None:
                fire(hb, "BranchInst", thread, frame, (cond,), None,
                     operand_regs, None, _EIGHT, 0, loc)
            frame.code = then_code if cond else else_code
            frame.ip = 0
            if ha is not None:
                fire(ha, "BranchInst", thread, frame, (cond,), None,
                     operand_regs, None, _EIGHT, 0, loc_after)
            return frame
        return step

    return bind, instr.loc


def _emit_jmp(instr: Jmp, fname: str, label: str, index: int, module: Module) -> Emitter:
    label = instr.label

    def bind(b: _Binder) -> Step:
        target = b.code[(fname, label)]

        def step(thread, frame):
            frame.code = target
            frame.ip = 0
            return frame
        return step

    return bind, instr.loc


def _emit_alloca(instr: Alloca, fname: str, label: str, index: int, module: Module) -> Emitter:
    result = instr.result
    size_op = instr.size
    sreg = type(size_op) is str
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    operand_regs = (size_op if sreg else None,)

    def bind(b: _Binder) -> Step:
        ha = b.after.get("AllocaInst")
        shadow_on = b.track_shadow
        tracer = b.tracer
        if ha is None and not shadow_on:
            def step(thread, frame):
                size = frame.regs[size_op] if sreg else size_op
                top = thread.stack_top - ((size + 15) & ~15)
                if top <= thread.stack_base:
                    raise VMError(f"stack overflow in thread {thread.tid}")
                thread.stack_top = top
                frame.regs[result] = top
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            size = frame.regs[size_op] if sreg else size_op
            top = thread.stack_top - ((size + 15) & ~15)
            if top <= thread.stack_base:
                raise VMError(f"stack overflow in thread {thread.tid}")
            thread.stack_top = top
            frame.regs[result] = top
            if shadow_on:
                shadow = frame.shadow
                shadow[result] = 0
                if tracer is not None:
                    tracer.shadow_set0(shadow, result)
            if ha is not None:
                fire(ha, "AllocaInst", thread, frame, (size,), top,
                     operand_regs, result, _EIGHT, size, loc)
        return step

    return bind, instr.loc


def _emit_ret(instr: Ret, fname: str, label: str, index: int, module: Module) -> Emitter:
    value_op = instr.value
    vreg = type(value_op) is str
    const_value = 0 if value_op is None or vreg else value_op
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    operand_regs = () if value_op is None else ((value_op if vreg else None),)
    after_key = "func:" + fname

    def bind(b: _Binder) -> Step:
        vm = b.vm
        hb = b.before.get("ReturnInst")
        ha_func = b.after.get(after_key)
        if (hb is None and ha_func is None and b.tracer is None
                and not b.track_shadow):
            joiners = vm._joiners
            if vreg:
                def step(thread, frame):
                    value = frame.regs[value_op]
                    thread.stack_top = frame.stack_mark
                    frames = thread.frames
                    frames.pop()
                    if not frames:
                        thread.status = _DONE
                        thread.result = value
                        for waiter in joiners.pop(thread.tid, []):
                            waiter.status = _RUNNABLE
                        return True
                    call_instr = frame.call_instr
                    caller = frames[-1]
                    if call_instr is not None and call_instr.result is not None:
                        caller.regs[call_instr.result] = value
                    return caller
            else:
                def step(thread, frame):
                    thread.stack_top = frame.stack_mark
                    frames = thread.frames
                    frames.pop()
                    if not frames:
                        thread.status = _DONE
                        thread.result = const_value
                        for waiter in joiners.pop(thread.tid, []):
                            waiter.status = _RUNNABLE
                        return True
                    call_instr = frame.call_instr
                    caller = frames[-1]
                    if call_instr is not None and call_instr.result is not None:
                        caller.regs[call_instr.result] = const_value
                    return caller
            return step
        fire = b.fire

        def step(thread, frame):
            frame.ip = nxt
            if hb is not None:
                value = frame.regs[value_op] if vreg else const_value
                fire(hb, "ReturnInst", thread, frame, (value,), None,
                     operand_regs, None, _EIGHT, 0, loc)
            vm._do_ret(thread, frame, instr)
            frames = thread.frames
            if frames:
                return frames[-1]
            return True  # root frame popped; thread is _DONE
        return step

    return bind, instr.loc


def _emit_call(instr: Call, fname: str, label: str, index: int, module: Module) -> Emitter:
    callee = instr.callee
    args_spec = tuple(instr.args)
    nargs = len(args_spec)
    result_reg = instr.result
    operand_regs = tuple(a if type(a) is str else None for a in args_spec)
    sizes = (8,) * nargs
    nxt = index + 1
    loc = instr.loc or f"{fname}+{nxt}"
    get_args = _args_extractor(args_spec)

    target = module.functions.get(callee)
    if target is not None:
        func_key = "func:" + callee
        params = tuple(target.params)
        shadow_pairs = tuple(
            (param, arg if type(arg) is str else None)
            for param, arg in zip(params, args_spec)
        )
        arity_msg = (
            None if nargs == len(params)
            else f"{callee} expects {len(params)} args, got {nargs}"
        )

        def bind(b: _Binder) -> Step:
            vm = b.vm
            profile = b.profile
            entry = b.entries[callee]
            hb_call = b.before.get("CallInst")
            hb_func = b.before.get(func_key)
            tracer = b.tracer
            shadow_on = b.track_shadow
            if (hb_call is None and hb_func is None and tracer is None
                    and not shadow_on and arity_msg is None):
                def step(thread, frame):
                    frame.ip = nxt
                    profile.base_cycles += _CALL_CYCLES
                    args = get_args(frame.regs)
                    new = Frame(target, dict(zip(params, args)), entry)
                    new.stack_mark = thread.stack_top
                    new.call_instr = instr
                    new.call_ops = args
                    thread.frames.append(new)
                    return new
                return step
            fire = b.fire
            bt_entry = vm._bt_entry

            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                if arity_msg is not None:
                    raise VMError(arity_msg)
                if hb_func is not None:
                    fire(hb_func, func_key, thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                new = Frame(target, dict(zip(params, args)), entry)
                new.stack_mark = thread.stack_top
                new.call_instr = instr
                new.call_ops = args
                new.caller_shadow = frame.shadow
                if tracer is not None:
                    tracer.frame_push(new.shadow, thread.tid, frame.shadow,
                                      bt_entry(frame))
                if shadow_on:
                    caller_shadow = frame.shadow
                    new_shadow = new.shadow
                    for param, argreg in shadow_pairs:
                        new_shadow[param] = (
                            caller_shadow.get(argreg, 0)
                            if argreg is not None else 0
                        )
                        if tracer is not None:
                            tracer.shadow_mov(new_shadow, param,
                                              caller_shadow, argreg)
                thread.frames.append(new)
                return new
            return step

        return bind, instr.loc

    base, _, suffix = callee.partition("$")

    if base == "global_addr":
        def bind(b: _Binder) -> Step:
            vm = b.vm
            profile = b.profile
            fire = b.fire
            hb_call = b.before.get("CallInst")
            ha_key = b.after.get("func:global_addr")
            finish = _make_finish(b, result_reg)

            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                value = vm.global_address(suffix)
                if ha_key is not None:
                    fire(ha_key, "func:global_addr", thread, frame, args,
                         value, operand_regs, result_reg, sizes, 8, loc)
                finish(frame, value)
            return step

        return bind, instr.loc

    if base == "spawn":
        def bind(b: _Binder) -> Step:
            vm = b.vm
            profile = b.profile
            fire = b.fire
            hb_call = b.before.get("CallInst")
            ha_key = b.after.get("func:spawn")
            finish = _make_finish(b, result_reg)

            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                value = vm._do_spawn(thread, frame, instr, suffix, args)
                if ha_key is not None:
                    fire(ha_key, "func:spawn", thread, frame, args, value,
                         operand_regs, result_reg, sizes, 8, loc)
                finish(frame, value)
            return step

        return bind, instr.loc

    if base == "join":
        def bind(b: _Binder) -> Step:
            vm = b.vm
            profile = b.profile
            fire = b.fire
            hb_call = b.before.get("CallInst")
            ha_key = b.after.get("func:join")
            finish = _make_finish(b, result_reg)

            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                if vm._do_join(thread, args):
                    return True  # blocked: retried (and the hook refired) on wake
                value = vm.threads[args[0]].result
                if ha_key is not None:
                    fire(ha_key, "func:join", thread, frame, args, value,
                         operand_regs, result_reg, sizes, 8, loc)
                finish(frame, value)
            return step

        return bind, instr.loc

    if base in ("mutex_lock", "mutex_unlock"):
        func_key = "func:" + base
        locking = base == "mutex_lock"

        def bind(b: _Binder) -> Step:
            vm = b.vm
            profile = b.profile
            fire = b.fire
            hb_call = b.before.get("CallInst")
            hb_key = b.before.get(func_key)
            ha_key = b.after.get(func_key)
            finish = _make_finish(b, result_reg)
            if locking:
                def step(thread, frame):
                    frame.ip = nxt
                    profile.base_cycles += _CALL_CYCLES
                    args = get_args(frame.regs)
                    if hb_call is not None:
                        fire(hb_call, "CallInst", thread, frame, args, None,
                             operand_regs, result_reg, sizes, 8, loc)
                    if hb_key is not None:
                        fire(hb_key, func_key, thread, frame, args, None,
                             operand_regs, result_reg, _EIGHT, 8, loc)
                    if vm._do_lock(thread, args[0]):
                        return True  # blocked; hooks refire on retry (spin model)
                    profile.base_cycles += 4  # atomic RMW cost
                    if ha_key is not None:
                        fire(ha_key, func_key, thread, frame, args, 0,
                             operand_regs, result_reg, _EIGHT, 8, loc)
                    finish(frame, 0)
            else:
                def step(thread, frame):
                    frame.ip = nxt
                    profile.base_cycles += _CALL_CYCLES
                    args = get_args(frame.regs)
                    if hb_call is not None:
                        fire(hb_call, "CallInst", thread, frame, args, None,
                             operand_regs, result_reg, sizes, 8, loc)
                    if hb_key is not None:
                        fire(hb_key, func_key, thread, frame, args, None,
                             operand_regs, result_reg, _EIGHT, 8, loc)
                    vm._do_unlock(thread, args[0])
                    profile.base_cycles += 4
                    if ha_key is not None:
                        fire(ha_key, func_key, thread, frame, args, 0,
                             operand_regs, result_reg, _EIGHT, 8, loc)
                    finish(frame, 0)
            return step

        return bind, instr.loc

    # Builtin (libc / simulated library / extern).  Unknown names are
    # normally rejected at Interpreter construction; keep the lazy error
    # for parity with the reference's execution-time raise.
    func_key = "func:" + callee
    unknown_msg = f"call to unknown function {callee!r}"

    def bind(b: _Binder) -> Step:
        vm = b.vm
        profile = b.profile
        fire = b.fire
        builtin = vm._builtins.get(callee)
        hb_call = b.before.get("CallInst")
        hb_func = b.before.get(func_key)
        ha_func = b.after.get(func_key)
        finish = _make_finish(b, result_reg)
        if (hb_call is None and hb_func is None and ha_func is None
                and builtin is not None):
            if result_reg is None and not b.track_shadow:
                def step(thread, frame):
                    frame.ip = nxt
                    profile.base_cycles += _CALL_CYCLES
                    builtin(vm, thread, get_args(frame.regs))
            else:
                def step(thread, frame):
                    frame.ip = nxt
                    profile.base_cycles += _CALL_CYCLES
                    value = builtin(vm, thread, get_args(frame.regs))
                    finish(frame, 0 if value is None else value)
            return step

        def step(thread, frame):
            frame.ip = nxt
            profile.base_cycles += _CALL_CYCLES
            args = get_args(frame.regs)
            if hb_call is not None:
                fire(hb_call, "CallInst", thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            if builtin is None:
                raise VMError(unknown_msg)
            if hb_func is not None:
                fire(hb_func, func_key, thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            value = builtin(vm, thread, args)
            if value is None:
                value = 0
            if ha_func is not None:
                fire(ha_func, func_key, thread, frame, args, value,
                     operand_regs, result_reg, sizes, 8, loc)
            finish(frame, value)
        return step

    return bind, instr.loc


_EMITTERS = {
    Const: _emit_const,
    BinOp: _emit_binop,
    Cmp: _emit_cmp,
    Load: _emit_load,
    Store: _emit_store,
    Br: _emit_br,
    Jmp: _emit_jmp,
    Alloca: _emit_alloca,
    Ret: _emit_ret,
    Call: _emit_call,
}
