"""Stage-2 binder: LIR units -> one flat threaded-code stream per function.

Where the closure backend (:mod:`repro.vm.compile`) produces one closure
list per *block*, this backend lays every function out as a single flat
:class:`BCode` list — blocks concatenated in layout order, branch targets
resolved to flat indices — plus two side arrays:

* ``widths[k]`` — how many reference instructions slot ``k`` covers (1
  for plain ops, the fused width for superinstruction segments).  The
  quantum driver bills by width and allows the budget to overshoot, which
  is unobservable because fused segments only exist in single-threaded
  modules.
* ``bts[k]`` — the backtrace rendering for ``frame.ip == k``, matching
  byte for byte what the reference's block-relative
  :meth:`~repro.vm.interpreter.Interpreter._bt_entry` would produce for
  the equivalent logical position.

Whether a :class:`~repro.vm.bytecode.lir.SegUnit` actually fuses is
decided here, per bind: a segment executes as one slot only when the VM
has no shadow tracking, no tracer, and none of the segment's covered
instrumentation sites is live (hook tables with the
:mod:`repro.staticpass` elision mask applied).  Otherwise its ops are
laid out as individual slots whose step closures are faithful ports of
the closure backend's emitters — so with analyses attached the bytecode
backend degrades to exactly the compiled backend's behavior, and the
differential tests stay bit-identical in every configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import VMError
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Const,
    Jmp,
    Load,
    Ret,
    Store,
)
from repro.vm.compile import (
    _Binder,
    _args_extractor,
    _binop_impl,
    _cache_inlinable,
    _CMP_GE,
    _CMP_IMPL,
    _make_finish,
)
from repro.vm.interpreter import (
    _CALL_CYCLES,
    _DONE,
    _EIGHT,
    _EIGHT_EIGHT,
    _MASK64,
    _RUNNABLE,
    _SHADOW_PROP_CYCLES,
    Frame,
    Interpreter,
)
from repro.vm.bytecode.codegen import gen_segment_source
from repro.vm.bytecode.lir import LModule, LOp, SegUnit

_NONE1 = (None,)


class BCode(list):
    """A function's flat step-closure stream plus its side tables."""

    __slots__ = ("widths", "bts", "fname")


def _site_active(b: _Binder, kind: str, position: str,
                 site: Optional[Tuple[str, str, int]]) -> bool:
    """Would the reference consult a (possibly empty) hook list here?

    An *empty* registered list still counts: ``_fire`` bumps the event
    sequence number before iterating callbacks, so fusing across it
    would drop a sequence increment.
    """
    table = b.before if position == "before" else b.after
    lst = table.get(kind)
    if lst is None:
        return False
    if site is not None and b.elide:
        suppressed = b.elide.get(site)
        if suppressed and position in suppressed:
            return False
    return True


def _seg_fusable(b: _Binder, seg: SegUnit) -> bool:
    if b.track_shadow or b.tracer is not None:
        return False
    return not any(
        _site_active(b, kind, position, site)
        for kind, position, site in seg.covered
    )


# ----------------------------------------------------------------------
# fused segment binding
# ----------------------------------------------------------------------
def _bind_segment(b: _Binder, lmod: LModule, seg: SegUnit, fname: str,
                  block_start: Dict[str, int], fast_mem: bool):
    src = gen_segment_source(seg, fname, fast_mem)
    code = lmod.code_cache.get(src)
    if code is None:
        code = compile(src, "<repro.vm.bytecode>", "exec")
        lmod.code_cache[src] = code
    P = {
        "profile": b.profile,
        "cache_access": b.cache_access,
        "memory_read": b.memory.read,
        "memory_write": b.memory.write,
        "VMError": VMError,
    }
    if fast_mem:
        cache = b.vm.cache
        P.update(
            cache=cache,
            l1_get=cache.l1.sets.get,
            n1=cache.l1.n_sets,
            shift=cache._line_shift,
            l1c=cache._l1_cycles,
            words=b.memory._words,
            words_get=b.memory._words.get,
        )
    term = seg.absorb
    if term is not None:
        instr = term.instr
        if instr.__class__ is Jmp:
            P["T0"] = block_start[instr.label]
        else:
            P["T0"] = block_start[instr.then_label]
            P["T1"] = block_start[instr.else_label]
    ns: Dict[str, object] = {}
    exec(code, ns)
    return ns["_make"](P)


# ----------------------------------------------------------------------
# plain-op binding — faithful ports of repro.vm.compile's emitters with
# flat successor/target indices.  ``nxt`` is the *flat* next slot; every
# EventContext location string stays block-relative, identical to the
# reference and closure backends.
# ----------------------------------------------------------------------
def _bind_const(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    result = instr.result
    value = instr.value
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    ops = (value,)
    ha = b.after.get("ConstInst")
    shadow_on = b.track_shadow
    tracer = b.tracer
    if ha is None and not shadow_on:
        def step(thread, frame):
            frame.regs[result] = value
        return step
    fire = b.fire

    def step(thread, frame):
        frame.ip = nxt
        frame.regs[result] = value
        if shadow_on:
            shadow = frame.shadow
            shadow[result] = 0
            if tracer is not None:
                tracer.shadow_set0(shadow, result)
        if ha is not None:
            fire(ha, "ConstInst", thread, frame, ops, value,
                 _NONE1, result, _EIGHT, 8, loc)
    return step


def _bind_binop(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    result = instr.result
    lhs = instr.lhs
    rhs = instr.rhs
    lreg = type(lhs) is str
    rreg = type(rhs) is str
    op = instr.op
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    opfunc = _binop_impl(op, loc)
    operand_regs = (lhs if lreg else None, rhs if rreg else None)
    hb = b.before.get("BinaryOperator")
    ha = b.after.get("BinaryOperator")
    shadow_on = b.track_shadow
    tracer = b.tracer
    if hb is None and ha is None and not shadow_on:
        if lreg and rreg:
            if op == "add":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = regs[lhs] + regs[rhs]
            elif op == "sub":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = regs[lhs] - regs[rhs]
            elif op == "mul":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = regs[lhs] * regs[rhs]
            else:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = opfunc(regs[lhs], regs[rhs])
        elif lreg:
            if op == "add":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = regs[lhs] + rhs
            elif op == "sub":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = regs[lhs] - rhs
            else:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = opfunc(regs[lhs], rhs)
        elif rreg:
            def step(thread, frame):
                regs = frame.regs
                regs[result] = opfunc(lhs, regs[rhs])
        else:
            def step(thread, frame):
                frame.regs[result] = opfunc(lhs, rhs)
        return step
    fire = b.fire
    profile = b.profile

    def step(thread, frame):
        frame.ip = nxt
        regs = frame.regs
        a = regs[lhs] if lreg else lhs
        bv = regs[rhs] if rreg else rhs
        value = opfunc(a, bv)  # may raise, matching reference order
        if hb is not None:
            fire(hb, "BinaryOperator", thread, frame, (a, bv), None,
                 operand_regs, result, _EIGHT_EIGHT, 8, loc)
        regs[result] = value
        if shadow_on:
            shadow = frame.shadow
            meta = (shadow.get(lhs, 0) if lreg else 0) | (
                shadow.get(rhs, 0) if rreg else 0
            )
            shadow[result] = meta
            profile.instr_cycles += _SHADOW_PROP_CYCLES
            if tracer is not None:
                tracer.shadow_or2(
                    shadow, result,
                    lhs if lreg else None, rhs if rreg else None,
                )
        if ha is not None:
            fire(ha, "BinaryOperator", thread, frame, (a, bv), value,
                 operand_regs, result, _EIGHT_EIGHT, 8, loc)
    return step


def _bind_cmp(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    result = instr.result
    lhs = instr.lhs
    rhs = instr.rhs
    lreg = type(lhs) is str
    rreg = type(rhs) is str
    op = instr.op
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    cmpfunc = _CMP_IMPL.get(op, _CMP_GE)
    operand_regs = (lhs if lreg else None, rhs if rreg else None)
    ha = b.after.get("CmpInst")
    shadow_on = b.track_shadow
    tracer = b.tracer
    if ha is None and not shadow_on:
        if lreg and rreg:
            if op == "lt":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = 1 if regs[lhs] < regs[rhs] else 0
            elif op == "eq":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = 1 if regs[lhs] == regs[rhs] else 0
            else:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = cmpfunc(regs[lhs], regs[rhs])
        elif lreg:
            if op == "lt":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = 1 if regs[lhs] < rhs else 0
            elif op == "eq":
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = 1 if regs[lhs] == rhs else 0
            else:
                def step(thread, frame):
                    regs = frame.regs
                    regs[result] = cmpfunc(regs[lhs], rhs)
        elif rreg:
            def step(thread, frame):
                regs = frame.regs
                regs[result] = cmpfunc(lhs, regs[rhs])
        else:
            def step(thread, frame):
                frame.regs[result] = cmpfunc(lhs, rhs)
        return step
    fire = b.fire
    profile = b.profile

    def step(thread, frame):
        frame.ip = nxt
        regs = frame.regs
        a = regs[lhs] if lreg else lhs
        bv = regs[rhs] if rreg else rhs
        value = cmpfunc(a, bv)
        regs[result] = value
        if shadow_on:
            shadow = frame.shadow
            meta = (shadow.get(lhs, 0) if lreg else 0) | (
                shadow.get(rhs, 0) if rreg else 0
            )
            shadow[result] = meta
            profile.instr_cycles += _SHADOW_PROP_CYCLES
            if tracer is not None:
                tracer.shadow_or2(
                    shadow, result,
                    lhs if lreg else None, rhs if rreg else None,
                )
        if ha is not None:
            fire(ha, "CmpInst", thread, frame, (a, bv), value,
                 operand_regs, result, _EIGHT_EIGHT, 8, loc)
    return step


def _bind_load(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    result = instr.result
    address_op = instr.address
    areg = type(address_op) is str
    size = instr.size
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    operand_regs = (address_op if areg else None,)
    hb, ha = b.site_hooks("LoadInst", lop.fname, lop.label, lop.index)
    shadow_on = b.track_shadow
    tracer = b.tracer
    profile = b.profile
    cache_access = b.cache_access
    memory_read = b.memory.read
    if hb is None and ha is None and not shadow_on:
        cache = b.vm.cache
        if areg and size == 8 and _cache_inlinable(cache):
            l1_get = cache.l1.sets.get
            n1 = cache.l1.n_sets
            shift = cache._line_shift
            l1_cycles = cache._l1_cycles
            words_get = b.memory._words.get

            def step(thread, frame):
                regs = frame.regs
                address = regs[address_op]
                line = address >> shift
                ways = l1_get(line % n1)
                if (ways is not None and ways[-1] == line
                        and (address + 7) >> shift == line):
                    stats = cache.stats
                    stats.accesses += 1
                    stats.l1_hits += 1
                    profile.mem_cycles += l1_cycles
                else:
                    profile.mem_cycles += cache_access(address, 8)
                if address & 7 == 0 and address >= 0x1000:
                    regs[result] = words_get(address >> 3, 0)
                else:
                    regs[result] = memory_read(address, 8)
            return step
        if areg:
            def step(thread, frame):
                regs = frame.regs
                address = regs[address_op]
                profile.mem_cycles += cache_access(address, size)
                regs[result] = memory_read(address, size)
        else:
            def step(thread, frame):
                profile.mem_cycles += cache_access(address_op, size)
                frame.regs[result] = memory_read(address_op, size)
        return step
    fire = b.fire

    def step(thread, frame):
        frame.ip = nxt
        regs = frame.regs
        address = regs[address_op] if areg else address_op
        if hb is not None:
            fire(hb, "LoadInst", thread, frame, (address,), None,
                 operand_regs, result, _EIGHT, size, loc)
        profile.mem_cycles += cache_access(address, size)
        value = memory_read(address, size)
        regs[result] = value
        if shadow_on:
            shadow = frame.shadow
            shadow[result] = 0
            if tracer is not None:
                tracer.shadow_set0(shadow, result)
        if ha is not None:
            fire(ha, "LoadInst", thread, frame, (address,), value,
                 operand_regs, result, _EIGHT, size, loc)
    return step


def _bind_store(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    value_op = instr.value
    address_op = instr.address
    vreg = type(value_op) is str
    areg = type(address_op) is str
    size = instr.size
    sizes = (size, 8)
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    operand_regs = (value_op if vreg else None, address_op if areg else None)
    hb, ha = b.site_hooks("StoreInst", lop.fname, lop.label, lop.index)
    profile = b.profile
    cache_access = b.cache_access
    memory_write = b.memory.write
    if hb is None and ha is None:
        cache = b.vm.cache
        if areg and size == 8 and _cache_inlinable(cache):
            l1_get = cache.l1.sets.get
            n1 = cache.l1.n_sets
            shift = cache._line_shift
            l1_cycles = cache._l1_cycles
            words = b.memory._words

            def step(thread, frame):
                regs = frame.regs
                address = regs[address_op]
                line = address >> shift
                ways = l1_get(line % n1)
                if (ways is not None and ways[-1] == line
                        and (address + 7) >> shift == line):
                    stats = cache.stats
                    stats.accesses += 1
                    stats.l1_hits += 1
                    profile.mem_cycles += l1_cycles
                else:
                    profile.mem_cycles += cache_access(address, 8)
                value = regs[value_op] if vreg else value_op
                if address & 7 == 0 and address >= 0x1000:
                    words[address >> 3] = value & _MASK64
                else:
                    memory_write(address, value, 8)
            return step

        def step(thread, frame):
            regs = frame.regs
            address = regs[address_op] if areg else address_op
            profile.mem_cycles += cache_access(address, size)
            memory_write(address, regs[value_op] if vreg else value_op, size)
        return step
    fire = b.fire

    def step(thread, frame):
        frame.ip = nxt
        regs = frame.regs
        value = regs[value_op] if vreg else value_op
        address = regs[address_op] if areg else address_op
        if hb is not None:
            fire(hb, "StoreInst", thread, frame, (value, address), None,
                 operand_regs, None, sizes, 0, loc)
        profile.mem_cycles += cache_access(address, size)
        memory_write(address, value, size)
        if ha is not None:
            fire(ha, "StoreInst", thread, frame, (value, address), None,
                 operand_regs, None, sizes, 0, loc)
    return step


def _bind_br(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    cond_op = instr.cond
    creg = type(cond_op) is str
    then_t = block_start[instr.then_label]
    else_t = block_start[instr.else_label]
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    # The reference fires the after-hook once frame.ip is 0 (post-jump).
    loc_after = instr.loc or f"{lop.fname}+0"
    operand_regs = (cond_op if creg else None,)
    hb = b.before.get("BranchInst")
    ha = b.after.get("BranchInst")
    if hb is None and ha is None:
        if creg:
            def step(thread, frame):
                frame.ip = then_t if frame.regs[cond_op] else else_t
                return frame
        else:
            target = then_t if cond_op else else_t

            def step(thread, frame):
                frame.ip = target
                return frame
        return step
    fire = b.fire

    def step(thread, frame):
        frame.ip = nxt
        cond = frame.regs[cond_op] if creg else cond_op
        if hb is not None:
            fire(hb, "BranchInst", thread, frame, (cond,), None,
                 operand_regs, None, _EIGHT, 0, loc)
        frame.ip = then_t if cond else else_t
        if ha is not None:
            fire(ha, "BranchInst", thread, frame, (cond,), None,
                 operand_regs, None, _EIGHT, 0, loc_after)
        return frame
    return step


def _bind_jmp(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    target = block_start[lop.instr.label]

    def step(thread, frame):
        frame.ip = target
        return frame
    return step


def _bind_alloca(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    result = instr.result
    size_op = instr.size
    sreg = type(size_op) is str
    loc = instr.loc or f"{lop.fname}+{lop.index + 1}"
    operand_regs = (size_op if sreg else None,)
    ha = b.after.get("AllocaInst")
    shadow_on = b.track_shadow
    tracer = b.tracer
    if ha is None and not shadow_on:
        def step(thread, frame):
            size = frame.regs[size_op] if sreg else size_op
            top = thread.stack_top - ((size + 15) & ~15)
            if top <= thread.stack_base:
                raise VMError(f"stack overflow in thread {thread.tid}")
            thread.stack_top = top
            frame.regs[result] = top
        return step
    fire = b.fire

    def step(thread, frame):
        frame.ip = nxt
        size = frame.regs[size_op] if sreg else size_op
        top = thread.stack_top - ((size + 15) & ~15)
        if top <= thread.stack_base:
            raise VMError(f"stack overflow in thread {thread.tid}")
        thread.stack_top = top
        frame.regs[result] = top
        if shadow_on:
            shadow = frame.shadow
            shadow[result] = 0
            if tracer is not None:
                tracer.shadow_set0(shadow, result)
        if ha is not None:
            fire(ha, "AllocaInst", thread, frame, (size,), top,
                 operand_regs, result, _EIGHT, size, loc)
    return step


def _bind_ret(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    fname = lop.fname
    value_op = instr.value
    vreg = type(value_op) is str
    const_value = 0 if value_op is None or vreg else value_op
    loc = instr.loc or f"{fname}+{lop.index + 1}"
    operand_regs = () if value_op is None else ((value_op if vreg else None),)
    after_key = "func:" + fname
    vm = b.vm
    hb = b.before.get("ReturnInst")
    ha_func = b.after.get(after_key)
    tracer = b.tracer
    shadow_on = b.track_shadow
    joiners = vm._joiners
    if hb is None and ha_func is None and tracer is None and not shadow_on:
        if vreg:
            def step(thread, frame):
                value = frame.regs[value_op]
                thread.stack_top = frame.stack_mark
                frames = thread.frames
                frames.pop()
                if not frames:
                    thread.status = _DONE
                    thread.result = value
                    for waiter in joiners.pop(thread.tid, []):
                        waiter.status = _RUNNABLE
                    return True
                call_instr = frame.call_instr
                caller = frames[-1]
                if call_instr is not None and call_instr.result is not None:
                    caller.regs[call_instr.result] = value
                return caller
        else:
            def step(thread, frame):
                thread.stack_top = frame.stack_mark
                frames = thread.frames
                frames.pop()
                if not frames:
                    thread.status = _DONE
                    thread.result = const_value
                    for waiter in joiners.pop(thread.tid, []):
                        waiter.status = _RUNNABLE
                    return True
                call_instr = frame.call_instr
                caller = frames[-1]
                if call_instr is not None and call_instr.result is not None:
                    caller.regs[call_instr.result] = const_value
                return caller
        return step
    fire = b.fire
    profile = b.profile

    # Slow path: a port of Interpreter._do_ret, except the after-func
    # event's location comes from the caller's bts table (its flat ip
    # would otherwise leak into the rendered `func+ip` fallback).
    def step(thread, frame):
        frame.ip = nxt
        if hb is not None:
            value = frame.regs[value_op] if vreg else const_value
            fire(hb, "ReturnInst", thread, frame, (value,), None,
                 operand_regs, None, _EIGHT, 0, loc)
        value = frame.regs[value_op] if vreg else const_value
        thread.stack_top = frame.stack_mark
        frames = thread.frames
        frames.pop()
        if not frames:
            thread.status = _DONE
            thread.result = value
            for waiter in joiners.pop(thread.tid, []):
                waiter.status = _RUNNABLE
            if tracer is not None:
                tracer.frame_pop(frame.shadow, thread.tid)
            return True
        caller = frames[-1]
        call_instr = frame.call_instr
        if call_instr is not None and call_instr.result is not None:
            caller.regs[call_instr.result] = value
            if shadow_on:
                returned_shadow = (
                    frame.shadow.get(value_op, 0) if vreg else 0
                )
                caller.shadow[call_instr.result] = returned_shadow
                if tracer is not None:
                    tracer.shadow_mov(
                        caller.shadow, call_instr.result, frame.shadow,
                        value_op if vreg else None,
                    )
        if tracer is not None:
            tracer.frame_pop(frame.shadow, thread.tid)
        if ha_func is not None and call_instr is not None:
            call_ops = frame.call_ops
            fire(
                ha_func, after_key, thread, caller, call_ops, value,
                tuple(a if type(a) is str else None for a in call_instr.args),
                call_instr.result, (8,) * len(call_ops), 8,
                call_instr.loc or caller.code.bts[caller.ip],
            )
        return caller
    return step


def _bind_call(b: _Binder, lop: LOp, nxt: int, block_start, entries):
    instr = lop.instr
    fname = lop.fname
    callee = instr.callee
    args_spec = tuple(instr.args)
    nargs = len(args_spec)
    result_reg = instr.result
    operand_regs = tuple(a if type(a) is str else None for a in args_spec)
    sizes = (8,) * nargs
    loc = instr.loc or f"{fname}+{lop.index + 1}"
    get_args = _args_extractor(args_spec)
    vm = b.vm
    profile = b.profile
    fire = b.fire

    target = vm.module.functions.get(callee)
    if target is not None:
        func_key = "func:" + callee
        params = tuple(target.params)
        shadow_pairs = tuple(
            (param, arg if type(arg) is str else None)
            for param, arg in zip(params, args_spec)
        )
        arity_msg = (
            None if nargs == len(params)
            else f"{callee} expects {len(params)} args, got {nargs}"
        )
        entry = entries[callee]
        hb_call = b.before.get("CallInst")
        hb_func = b.before.get(func_key)
        tracer = b.tracer
        shadow_on = b.track_shadow
        if (hb_call is None and hb_func is None and tracer is None
                and not shadow_on and arity_msg is None):
            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                new = Frame(target, dict(zip(params, args)), entry)
                new.stack_mark = thread.stack_top
                new.call_instr = instr
                new.call_ops = args
                thread.frames.append(new)
                return new
            return step
        bt_entry = vm._bt_entry

        def step(thread, frame):
            frame.ip = nxt
            profile.base_cycles += _CALL_CYCLES
            args = get_args(frame.regs)
            if hb_call is not None:
                fire(hb_call, "CallInst", thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            if arity_msg is not None:
                raise VMError(arity_msg)
            if hb_func is not None:
                fire(hb_func, func_key, thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            new = Frame(target, dict(zip(params, args)), entry)
            new.stack_mark = thread.stack_top
            new.call_instr = instr
            new.call_ops = args
            new.caller_shadow = frame.shadow
            if tracer is not None:
                tracer.frame_push(new.shadow, thread.tid, frame.shadow,
                                  bt_entry(frame))
            if shadow_on:
                caller_shadow = frame.shadow
                new_shadow = new.shadow
                for param, argreg in shadow_pairs:
                    new_shadow[param] = (
                        caller_shadow.get(argreg, 0)
                        if argreg is not None else 0
                    )
                    if tracer is not None:
                        tracer.shadow_mov(new_shadow, param,
                                          caller_shadow, argreg)
            thread.frames.append(new)
            return new
        return step

    base, _, suffix = callee.partition("$")

    if base == "global_addr":
        hb_call = b.before.get("CallInst")
        ha_key = b.after.get("func:global_addr")
        finish = _make_finish(b, result_reg)

        def step(thread, frame):
            frame.ip = nxt
            profile.base_cycles += _CALL_CYCLES
            args = get_args(frame.regs)
            if hb_call is not None:
                fire(hb_call, "CallInst", thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            value = vm.global_address(suffix)
            if ha_key is not None:
                fire(ha_key, "func:global_addr", thread, frame, args,
                     value, operand_regs, result_reg, sizes, 8, loc)
            finish(frame, value)
        return step

    if base == "spawn":
        hb_call = b.before.get("CallInst")
        ha_key = b.after.get("func:spawn")
        finish = _make_finish(b, result_reg)

        def step(thread, frame):
            frame.ip = nxt
            profile.base_cycles += _CALL_CYCLES
            args = get_args(frame.regs)
            if hb_call is not None:
                fire(hb_call, "CallInst", thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            value = vm._do_spawn(thread, frame, instr, suffix, args)
            if ha_key is not None:
                fire(ha_key, "func:spawn", thread, frame, args, value,
                     operand_regs, result_reg, sizes, 8, loc)
            finish(frame, value)
        return step

    if base == "join":
        hb_call = b.before.get("CallInst")
        ha_key = b.after.get("func:join")
        finish = _make_finish(b, result_reg)

        def step(thread, frame):
            frame.ip = nxt
            profile.base_cycles += _CALL_CYCLES
            args = get_args(frame.regs)
            if hb_call is not None:
                fire(hb_call, "CallInst", thread, frame, args, None,
                     operand_regs, result_reg, sizes, 8, loc)
            if vm._do_join(thread, args):
                return True  # blocked: retried (and the hook refired) on wake
            value = vm.threads[args[0]].result
            if ha_key is not None:
                fire(ha_key, "func:join", thread, frame, args, value,
                     operand_regs, result_reg, sizes, 8, loc)
            finish(frame, value)
        return step

    if base in ("mutex_lock", "mutex_unlock"):
        func_key = "func:" + base
        locking = base == "mutex_lock"
        hb_call = b.before.get("CallInst")
        hb_key = b.before.get(func_key)
        ha_key = b.after.get(func_key)
        finish = _make_finish(b, result_reg)
        if locking:
            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                if hb_key is not None:
                    fire(hb_key, func_key, thread, frame, args, None,
                         operand_regs, result_reg, _EIGHT, 8, loc)
                if vm._do_lock(thread, args[0]):
                    return True  # blocked; hooks refire on retry (spin model)
                profile.base_cycles += 4  # atomic RMW cost
                if ha_key is not None:
                    fire(ha_key, func_key, thread, frame, args, 0,
                         operand_regs, result_reg, _EIGHT, 8, loc)
                finish(frame, 0)
        else:
            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                args = get_args(frame.regs)
                if hb_call is not None:
                    fire(hb_call, "CallInst", thread, frame, args, None,
                         operand_regs, result_reg, sizes, 8, loc)
                if hb_key is not None:
                    fire(hb_key, func_key, thread, frame, args, None,
                         operand_regs, result_reg, _EIGHT, 8, loc)
                vm._do_unlock(thread, args[0])
                profile.base_cycles += 4
                if ha_key is not None:
                    fire(ha_key, func_key, thread, frame, args, 0,
                         operand_regs, result_reg, _EIGHT, 8, loc)
                finish(frame, 0)
        return step

    func_key = "func:" + callee
    unknown_msg = f"call to unknown function {callee!r}"
    builtin = vm._builtins.get(callee)
    hb_call = b.before.get("CallInst")
    hb_func = b.before.get(func_key)
    ha_func = b.after.get(func_key)
    finish = _make_finish(b, result_reg)
    if (hb_call is None and hb_func is None and ha_func is None
            and builtin is not None):
        if result_reg is None and not b.track_shadow:
            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                builtin(vm, thread, get_args(frame.regs))
        else:
            def step(thread, frame):
                frame.ip = nxt
                profile.base_cycles += _CALL_CYCLES
                value = builtin(vm, thread, get_args(frame.regs))
                finish(frame, 0 if value is None else value)
        return step

    def step(thread, frame):
        frame.ip = nxt
        profile.base_cycles += _CALL_CYCLES
        args = get_args(frame.regs)
        if hb_call is not None:
            fire(hb_call, "CallInst", thread, frame, args, None,
                 operand_regs, result_reg, sizes, 8, loc)
        if builtin is None:
            raise VMError(unknown_msg)
        if hb_func is not None:
            fire(hb_func, func_key, thread, frame, args, None,
                 operand_regs, result_reg, sizes, 8, loc)
        value = builtin(vm, thread, args)
        if value is None:
            value = 0
        if ha_func is not None:
            fire(ha_func, func_key, thread, frame, args, value,
                 operand_regs, result_reg, sizes, 8, loc)
        finish(frame, value)
    return step


_BINDERS = {
    Const: _bind_const,
    BinOp: _bind_binop,
    Cmp: _bind_cmp,
    Load: _bind_load,
    Store: _bind_store,
    Br: _bind_br,
    Jmp: _bind_jmp,
    Alloca: _bind_alloca,
    Ret: _bind_ret,
    Call: _bind_call,
}


# ----------------------------------------------------------------------
# module binding
# ----------------------------------------------------------------------
def bind_bytecode(vm: Interpreter,
                  lmod: Optional[LModule] = None) -> Dict[str, BCode]:
    """Stage 2: produce one flat :class:`BCode` per function for one VM.

    Returns ``{function name: BCode}`` — the same shape
    :func:`repro.vm.compile.bind_module` returns, so
    ``Interpreter._new_thread`` needs no backend-specific branches.
    """
    if lmod is None:
        from repro.vm.bytecode import compile_bytecode

        lmod = compile_bytecode(vm.module)
    b = _Binder(vm)
    fast_mem = _cache_inlinable(vm.cache)
    entries: Dict[str, BCode] = {}
    for fname in lmod.functions:
        bc = BCode()
        bc.fname = fname
        entries[fname] = bc

    # Pass A: fuse/explode decisions and the flat layout (indices depend
    # on which segments fuse, which is a per-bind property of the VM's
    # hooks, tracer, shadow flag, and elision masks).
    plans: Dict[str, Tuple[list, Dict[str, int]]] = {}
    fused_segments = 0
    exploded_segments = 0
    fused_width = 0
    for fname, lfn in lmod.functions.items():
        slots: List[Tuple[str, object, str]] = []
        block_start: Dict[str, int] = {}
        for label in lfn.layout:
            block_start[label] = len(slots)
            for unit in lfn.blocks[label].effective_units():
                if isinstance(unit, SegUnit):
                    if _seg_fusable(b, unit):
                        slots.append(("seg", unit, label))
                        fused_segments += 1
                        fused_width += unit.width
                    else:
                        exploded_segments += 1
                        for lop in unit.all_lops():
                            slots.append(("op", lop, label))
                else:
                    slots.append(("op", unit.lop, label))
        plans[fname] = (slots, block_start)
    # Bind diagnostics live on the VM, never on the Profile: profiles are
    # compared bit-for-bit across backends, fuse decisions are per-bind.
    vm.bytecode_bind_stats = {
        "fused_segments": fused_segments,
        "exploded_segments": exploded_segments,
        "fused_width": fused_width,
    }

    # Pass B: emit steps with every target resolved to a flat index, and
    # build the width/backtrace side tables.
    for fname, lfn in lmod.functions.items():
        slots, block_start = plans[fname]
        bc = entries[fname]
        widths: List[int] = []
        # Flat layout collapses "just past block A's terminator" and
        # "start of block B" onto one index — but the reference renders
        # those states differently (terminator's loc vs first-instr
        # loc).  Br/Ret slow paths therefore park frame.ip on a shadow
        # bts entry past the real code during their before-hook window;
        # the index is never executed (Br overwrites it with the jump
        # target, Ret pops the frame).
        shadow_ip: Dict[int, int] = {}
        next_shadow = len(slots) + 1
        for k, (tag, payload, label) in enumerate(slots):
            if tag == "op" and payload.instr.__class__ in (Br, Ret):
                shadow_ip[k] = next_shadow
                next_shadow += 1
        bts: List[str] = [""] * next_shadow
        for k, (tag, payload, label) in enumerate(slots):
            if tag == "seg":
                step = _bind_segment(b, lmod, payload, fname,
                                     block_start, fast_mem)
                width = payload.width
                last = payload.all_lops()[-1]
            else:
                lop = payload
                step = _BINDERS[lop.instr.__class__](
                    b, lop, shadow_ip.get(k, k + 1), block_start, entries)
                width = 1
                last = lop
            bc.append(step)
            widths.append(width)
            # Reference-equivalent rendering for frame.ip == k+1: the
            # last covered instruction's loc, else block-relative f+N.
            rendering = last.instr.loc or f"{fname}+{last.index + 1}"
            bts[k + 1] = rendering
            if k in shadow_ip:
                bts[shadow_ip[k]] = rendering
        # Block starts render like the reference at ip == 0: the first
        # instruction's loc, else "f+0".
        for label, start in block_start.items():
            first = lfn.blocks[label].lops[0]
            bts[start] = first.instr.loc or f"{fname}+0"
        bc.widths = widths
        bc.bts = bts
    return entries
