"""Python source generation for fused superinstructions.

A :class:`~repro.vm.bytecode.lir.SegUnit` lowers to the source of a
``_make(P)`` factory: ``P`` is a dict of bind-time values (the VM's
profile, memory, cache fast-path fields, flat branch targets) and the
returned ``step(thread, frame)`` closure executes the whole segment as
one dispatcher slot.  The source depends only on the stage-1 LIR and the
``fast_mem`` variant flag, so it is generated once per segment, interned
by text in the owning LModule's ``code_cache``, and shared across binds.

Billing protocol: the dispatcher pre-bills the segment's full width
(``profile.instructions`` / ``base_cycles``) before calling the closure,
exactly like the quantum driver bills one per slot.  Segments containing
ops that can raise (memory, alloca, div/rem) maintain a local ``_n`` —
the 1-based position of the op in flight — and compensate the over-billed
remainder in an ``except`` arm, so a crash mid-segment bills
bit-identically to the reference executing the same prefix (the raising
instruction itself *is* billed, matching the reference driver).

Register homes: a value flows through a generated local (``_t3``) when
the passes proved the frame's ``regs`` dict can never be observed holding
it (see ``compress``); otherwise every def also writes ``regs`` so any
later instruction — fused or not — sees exactly the reference state.
A ``Cmp`` whose only consumer is the block's absorbed branch is *deferred*
and fuses into a single compare+branch with no 0/1 materialization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Cmp,
    Const,
    Jmp,
    Load,
    Store,
)

from repro.vm.bytecode.lir import LOp, SegUnit

_MASK64 = (1 << 64) - 1

_CMP_SYM = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">"}

#: P-dict keys a segment may import, in preamble emission order.
_PARAMS = (
    "profile", "cache", "cache_access", "memory_read", "memory_write",
    "words", "words_get", "l1_get", "n1", "shift", "l1c",
    "VMError", "T0", "T1",
)


class _Gen:
    """Emission state for one segment body."""

    def __init__(self, fname: str, fast_mem: bool) -> None:
        self.fname = fname
        self.fast_mem = fast_mem
        self.lines: List[str] = []
        #: register -> expression (a local name or literal) holding its value
        self.bind: Dict[str, str] = {}
        self.uses = set()
        self.ntmp = 0
        self.pos = 0           # reference instructions completed so far
        self.risky = False
        #: deferred comparison: (dst, lhs expr, rhs expr, python operator)
        self.pending_cmp: Optional[Tuple[str, str, str, str]] = None

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def mark_risky(self) -> None:
        self.risky = True
        self.emit(f"_n = {self.pos + 1}")

    def val(self, operand, fold: Optional[int] = None) -> str:
        """Expression for an operand's current value: an int literal, a
        previously-bound local, a folded constant, or a cached dict read."""
        if type(operand) is not str:
            return repr(operand)
        self.materialize_if_pending(operand)
        if operand in self.bind:
            return self.bind[operand]
        if fold is not None:
            return repr(fold)
        t = self.tmp()
        self.emit(f"{t} = regs[{operand!r}]")
        self.bind[operand] = t
        return t

    def materialize_if_pending(self, reg: str) -> None:
        pending = self.pending_cmp
        if pending is not None and pending[0] == reg:
            dst, a, b, sym = pending
            self.pending_cmp = None
            t = self.tmp()
            self.emit(f"{t} = 1 if {a} {sym} {b} else 0")
            self.bind[dst] = t

    def redefine_guard(self, dst: str) -> None:
        """A new def of ``dst`` kills any deferred compare into it."""
        if self.pending_cmp is not None and self.pending_cmp[0] == dst:
            self.pending_cmp = None

    def define(self, lop: LOp, expr: str, simple: bool = False) -> None:
        dst = lop.instr.dst
        self.redefine_guard(dst)
        if simple:
            value = expr
        else:
            value = self.tmp()
            self.emit(f"{value} = {expr}")
        self.bind[dst] = value
        if lop.dict_store:
            self.emit(f"regs[{dst!r}] = {value}")


def _fold_operand(lop: LOp, which: int) -> Optional[int]:
    if lop.fold_ops is not None:
        return lop.fold_ops[which]
    return None


def _emit_const(g: _Gen, lop: LOp) -> None:
    g.define(lop, repr(lop.instr.value), simple=True)


def _emit_binop(g: _Gen, lop: LOp) -> None:
    instr = lop.instr
    if lop.folded is not None:
        g.define(lop, repr(lop.folded), simple=True)
        return
    if lop.alg is not None and lop.alg[0] == "copy":
        g.define(lop, g.val(lop.alg[1]), simple=True)
        return
    op = instr.op
    if op in ("div", "rem"):
        a = g.val(instr.lhs, _fold_operand(lop, 0))
        b = g.val(instr.rhs, _fold_operand(lop, 1))
        g.mark_risky()
        g.uses.add("VMError")
        loc = instr.loc or f"{g.fname}+{lop.index + 1}"
        word = "division" if op == "div" else "remainder"
        g.emit(f"if {b} == 0:")
        g.emit(f"    raise VMError({f'{word} by zero at {loc}'!r})")
        if op == "div":
            expr = (f"abs({a}) // abs({b}) * "
                    f"(1 if ({a} >= 0) == ({b} >= 0) else -1)")
        else:
            expr = f"abs({a}) % abs({b}) * (1 if {a} >= 0 else -1)"
        g.define(lop, expr)
        return
    a = g.val(instr.lhs, _fold_operand(lop, 0))
    b = g.val(instr.rhs, _fold_operand(lop, 1))
    if op == "add":
        expr = f"{a} + {b}"
    elif op == "sub":
        expr = f"{a} - {b}"
    elif op == "mul":
        expr = f"{a} * {b}"
    elif op == "and":
        expr = f"({a} & {b}) & {_MASK64}"
    elif op == "or":
        expr = f"({a} | {b}) & {_MASK64}"
    elif op == "xor":
        expr = f"({a} ^ {b}) & {_MASK64}"
    elif op == "shl":
        expr = f"({a} << ({b} & 63)) & {_MASK64}"
    elif op == "shr":
        expr = f"({a} & {_MASK64}) >> ({b} & 63)"
    else:
        g.mark_risky()
        g.uses.add("VMError")
        g.emit(f"raise VMError({f'unknown binop {op!r}'!r})")
        return
    g.define(lop, expr)


def _emit_cmp(g: _Gen, lop: LOp) -> None:
    instr = lop.instr
    if lop.folded is not None:
        g.define(lop, repr(lop.folded), simple=True)
        return
    a = g.val(instr.lhs, _fold_operand(lop, 0))
    b = g.val(instr.rhs, _fold_operand(lop, 1))
    sym = _CMP_SYM.get(instr.op, ">=")
    if not lop.dict_store:
        # Defer: if the only consumer turns out to be the absorbed
        # branch, the compare fuses into it and no 0/1 is materialized.
        g.redefine_guard(instr.result)
        g.pending_cmp = (instr.result, a, b, sym)
        g.bind.pop(instr.result, None)
        return
    g.define(lop, f"1 if {a} {sym} {b} else 0")


def _cache_probe(g: _Gen, a: str) -> None:
    """Inline L1-MRU-hit accounting for an 8-byte access at ``a`` —
    ported verbatim from the closure backend's hottest-shape fast path."""
    g.uses.update(("cache", "l1_get", "n1", "shift", "l1c", "cache_access"))
    line = g.tmp()
    ways = g.tmp()
    g.emit(f"{line} = {a} >> shift")
    g.emit(f"{ways} = l1_get({line} % n1)")
    g.emit(f"if {ways} is not None and {ways}[-1] == {line} "
           f"and ({a} + 7) >> shift == {line}:")
    g.emit("    _s = cache.stats")
    g.emit("    _s.accesses += 1")
    g.emit("    _s.l1_hits += 1")
    g.emit("    profile.mem_cycles += l1c")
    g.emit("else:")
    g.emit(f"    profile.mem_cycles += cache_access({a}, 8)")


def _emit_load(g: _Gen, lop: LOp) -> None:
    instr = lop.instr
    size = instr.size
    a = g.val(instr.address)
    g.redefine_guard(instr.result)
    g.mark_risky()
    g.uses.update(("profile", "cache_access", "memory_read"))
    value = g.tmp()
    if g.fast_mem and size == 8:
        g.uses.add("words_get")
        _cache_probe(g, a)
        g.emit(f"if {a} & 7 == 0 and {a} >= 4096:")
        g.emit(f"    {value} = words_get({a} >> 3, 0)")
        g.emit("else:")
        g.emit(f"    {value} = memory_read({a}, 8)")
    else:
        g.emit(f"profile.mem_cycles += cache_access({a}, {size})")
        g.emit(f"{value} = memory_read({a}, {size})")
    g.bind[instr.result] = value
    if lop.dict_store:
        g.emit(f"regs[{instr.result!r}] = {value}")


def _emit_store(g: _Gen, lop: LOp) -> None:
    instr = lop.instr
    size = instr.size
    a = g.val(instr.address)
    g.mark_risky()
    g.uses.update(("profile", "cache_access", "memory_write"))
    if g.fast_mem and size == 8:
        g.uses.add("words")
        _cache_probe(g, a)
        v = g.val(instr.value)
        g.emit(f"if {a} & 7 == 0 and {a} >= 4096:")
        g.emit(f"    words[{a} >> 3] = {v} & {_MASK64}")
        g.emit("else:")
        g.emit(f"    memory_write({a}, {v}, 8)")
    else:
        g.emit(f"profile.mem_cycles += cache_access({a}, {size})")
        v = g.val(instr.value)
        g.emit(f"memory_write({a}, {v}, {size})")


def _emit_alloca(g: _Gen, lop: LOp) -> None:
    instr = lop.instr
    s = g.val(instr.size)
    g.redefine_guard(instr.result)
    g.mark_risky()
    g.uses.add("VMError")
    top = g.tmp()
    g.emit(f"{top} = thread.stack_top - (({s} + 15) & ~15)")
    g.emit(f"if {top} <= thread.stack_base:")
    g.emit('    raise VMError(f"stack overflow in thread {thread.tid}")')
    g.emit(f"thread.stack_top = {top}")
    g.bind[instr.result] = top
    if lop.dict_store:
        g.emit(f"regs[{instr.result!r}] = {top}")


def _emit_inline_call(g: _Gen, lop: LOp) -> None:
    info = lop.inline
    g.uses.add("profile")
    g.emit("profile.base_cycles += 2")  # _CALL_CYCLES, billed at the call
    mark = None
    if info.has_alloca:
        mark = g.tmp()
        g.emit(f"{mark} = thread.stack_top")
    # Bind arguments to the callee's synthetic parameter names; argument
    # reads happen here, at the call's position, like the reference.
    args = [g.val(arg) for arg in lop.instr.args]
    for synth, expr in zip(_callee_params(lop), args):
        g.redefine_guard(synth)
        g.bind[synth] = expr
    g.pos += 1  # the call instruction itself
    for body_lop in info.body:
        _EMITTERS[body_lop.instr.__class__](g, body_lop)
        g.pos += 1
    ret_expr = None
    if lop.instr.result is not None:
        rv = info.ret_value
        ret_expr = "0" if rv is None else g.val(rv)
    if mark is not None:
        g.emit(f"thread.stack_top = {mark}")
    g.pos += 1  # the callee's ret
    if ret_expr is not None:
        g.define(lop, ret_expr, simple=True)


def _callee_params(lop: LOp) -> List[str]:
    # InlinePass seeds the rename map with the params first, in order.
    info = lop.inline
    return list(info.rename.values())[:len(lop.instr.args)]


_EMITTERS = {
    Const: _emit_const,
    BinOp: _emit_binop,
    Cmp: _emit_cmp,
    Load: _emit_load,
    Store: _emit_store,
    Alloca: _emit_alloca,
}


def gen_segment_source(seg: SegUnit, fname: str, fast_mem: bool) -> str:
    """Source of the ``_make(P)`` factory for one segment variant."""
    g = _Gen(fname, fast_mem)
    for lop in seg.lops:
        if lop.inline is not None:
            _emit_inline_call(g, lop)
        else:
            _EMITTERS[lop.instr.__class__](g, lop)
            g.pos += 1

    tail: List[str] = []
    term = seg.absorb
    if term is not None:
        instr = term.instr
        if instr.__class__ is Jmp:
            g.uses.add("T0")
            tail = ["frame.ip = T0", "return frame"]
        else:  # Br
            g.uses.update(("T0", "T1"))
            cond = instr.cond
            known: Optional[int] = None
            if type(cond) is int:
                known = cond
            elif term.fold_ops is not None and term.fold_ops[0] is not None:
                known = term.fold_ops[0]
            pending = g.pending_cmp
            if known is not None:
                tail = [f"frame.ip = {'T0' if known else 'T1'}",
                        "return frame"]
            elif (pending is not None and type(cond) is str
                    and pending[0] == cond):
                _, a, b, sym = pending
                g.pending_cmp = None
                tail = [f"frame.ip = T0 if {a} {sym} {b} else T1",
                        "return frame"]
            else:
                tail = [f"frame.ip = T0 if {g.val(cond)} else T1",
                        "return frame"]
        g.pos += 1

    width = seg.width
    body = g.lines + tail
    if not body:
        body = ["pass"]
    if g.risky:
        g.uses.add("profile")
    out: List[str] = ["def _make(P):"]
    for name in _PARAMS:
        if name in g.uses:
            out.append(f"    {name} = P[{name!r}]")
    out.append("    def step(thread, frame):")
    out.append("        regs = frame.regs")
    indent = "        "
    if g.risky:
        out.append(f"{indent}_n = {width}")
        out.append(f"{indent}try:")
        indent = "            "
    for line in body:
        out.append(indent + line)
    if g.risky:
        out.append("        except BaseException:")
        out.append(f"            _d = {width} - _n")
        out.append("            profile.instructions -= _d")
        out.append("            profile.base_cycles -= _d")
        out.append("            raise")
    out.append("    return step")
    return "\n".join(out) + "\n"
