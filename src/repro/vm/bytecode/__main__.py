"""Command-line inspector for the bytecode backend's compiler pipeline.

``report`` runs the staged pipeline (see :mod:`repro.vm.bytecode.passes`)
over a bundled workload — or the built-in ``demo`` module, whose shape
exercises every pass — and prints what each pass changed as a unified
diff of the LIR disassembly, followed by the final superinstruction
layout and the pass statistics.  ``list`` enumerates the available
passes and workloads.

Usage::

    python -m repro.vm.bytecode report <workload> [--passes P1,P2,...]
                                       [--full] [--context N]
    python -m repro.vm.bytecode list

Because every pass only annotates or regroups the LIR, the diffs read
as annotations appearing on unchanged instructions (``fold=32``,
``copy(%m)``, ``nostore``) and as instructions regrouping into
``seg w=N { ... }`` superinstructions.
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro.ir import parse_module
from repro.vm.bytecode import DEFAULT_PASSES, PASSES, run_pipeline
from repro.vm.bytecode.lir import render

#: A hand-written module shaped so every pass visibly fires: ``scale``
#: is a single-block leaf (inlined at its call site), ``mul 4, %step``
#: has statically-known operands (folded), the inlined ``add %m, 0``
#: is an algebraic copy (simplified), and the loop body is a fusable
#: straight line ending in a compare+branch (fused and compressed).
DEMO_TEXT = """\
module demo

func scale(%x, %k) {
entry:
  %m = mul %x, %k
  %r = add %m, 0
  ret %r
}

func main() {
entry:
  %buf = call malloc(64)
  %step = const 8
  %limit = mul 4, %step
  %i0 = const 0
  %p = alloca 8
  store %i0 -> [%p], 8
  jmp head
head:
  %i = load [%p], 8
  %c = cmp lt %i, %limit
  br %c, body, done
body:
  %off = call scale(%i, %step)
  %addr = add %buf, %off
  store %i -> [%addr], 8
  %n = add %i, 1
  store %n -> [%p], 8
  jmp head
done:
  call free(%buf)
  ret 0
}
"""


def _load_module(name: str):
    if name == "demo":
        return parse_module(DEMO_TEXT)
    from repro.workloads import ALL

    workload = ALL.get(name)
    if workload is None:
        raise SystemExit(
            f"unknown workload {name!r}; choose 'demo' or one of: "
            + ", ".join(sorted(ALL))
        )
    return workload.make_module(1)


def _parse_passes(spec):
    if not spec:
        return DEFAULT_PASSES
    names = tuple(n.strip() for n in spec.split(",") if n.strip())
    unknown = [n for n in names if n not in PASSES]
    if unknown:
        raise SystemExit(
            f"unknown passes {unknown!r}; available: {', '.join(PASSES)}"
        )
    return names


def _report(args, out) -> int:
    module = _load_module(args.workload)
    names = _parse_passes(args.passes)
    state = {}

    def before(pass_name, position, lmod):
        state["prev"] = render(lmod)

    def after(pass_name, position, lmod):
        current = render(lmod)
        previous = state.pop("prev", "")
        print(f"== pass {pass_name} ==", file=out)
        if args.full:
            out.write(current)
            return
        diff = list(
            difflib.unified_diff(
                previous.splitlines(),
                current.splitlines(),
                lineterm="",
                n=args.context,
            )
        )
        if diff:
            for line in diff[2:]:  # drop the +++/--- file headers
                print(line, file=out)
        else:
            print("(no change)", file=out)

    lmod = run_pipeline(module, names, before=(before,), after=(after,))
    print("== final layout ==", file=out)
    out.write(render(lmod))
    print("== stats ==", file=out)
    for key in sorted(lmod.stats):
        print(f"{key:24s} {lmod.stats[key]}", file=out)
    print(f"{'threaded':24s} {int(lmod.threaded)}", file=out)
    return 0


def _list(args, out) -> int:
    print("passes (pipeline order):", file=out)
    for name in DEFAULT_PASSES:
        summary = (PASSES[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:12s} {summary}", file=out)
    from repro.workloads import ALL

    print("workloads:", file=out)
    print("  demo (built-in pipeline showcase)", file=out)
    for name in sorted(ALL):
        print(f"  {name}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.vm.bytecode",
        description="Inspect the bytecode backend's compiler pipeline.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report",
        help="show per-pass LIR diffs and the final superinstruction layout",
    )
    report.add_argument(
        "workload",
        help="bundled workload name, or 'demo' for the built-in example",
    )
    report.add_argument(
        "--passes",
        default=None,
        help="comma-separated pass subset to run (default: full pipeline)",
    )
    report.add_argument(
        "--full",
        action="store_true",
        help="print the full LIR after each pass instead of a diff",
    )
    report.add_argument(
        "--context",
        type=int,
        default=2,
        help="unified-diff context lines (default 2)",
    )
    report.set_defaults(func=_report)
    lister = sub.add_parser(
        "list", help="list available passes and workloads"
    )
    lister.set_defaults(func=_list)
    return parser


def main(argv=None, out=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args, out if out is not None else sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
