"""Low-level IR (LIR) for the bytecode backend's optimizer pipeline.

The pipeline (:mod:`repro.vm.bytecode.passes`) never mutates the source
:class:`repro.ir.module.Module`.  Instead :func:`lower` wraps every IR
instruction in an :class:`LOp` — a mutable annotation record carrying the
instruction's static coordinates (function, block label, index) plus the
facts the optimizer passes discover about it:

* ``folded`` / ``fold_ops`` — compile-time constant results/operands
  (constant folding),
* ``alg`` — algebraic strength reduction (``x + 0`` is a copy),
* ``dict_store`` — whether the destination register must be written to
  the frame's ``regs`` dict, or may live in a Python local because no
  later instruction outside the fused segment can observe it,
* ``inline`` — an :class:`InlineInfo` expansion for calls to small leaf
  functions.

``to_bytecode`` then groups each block's LOps into *units*
(:class:`PlainUnit` for one instruction, :class:`SegUnit` for a fused
straight-line superinstruction) and ``compress`` absorbs trailing
terminators and interns duplicate generated sources.  Binding the result
to a concrete :class:`~repro.vm.interpreter.Interpreter` happens in
:mod:`repro.vm.bytecode.ops`.

Every annotation is advisory: a :class:`SegUnit` only *executes* fused
when the bind-time context (hooks, tracer, shadow, elision masks) proves
none of its covered instrumentation sites is live; otherwise the ops run
individually, exactly like the closure backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Const,
    Jmp,
    Load,
    Store,
)
from repro.ir.module import Module
from repro.ir.text import _fmt_instruction

#: Instruction classes a fused segment may cover (calls only via inlining).
FUSABLE = (Const, BinOp, Cmp, Load, Store, Alloca)

#: Upper bound on reference instructions covered by one superinstruction.
MAX_SEGMENT_WIDTH = 64


class InlineInfo:
    """Expansion of a call to a small leaf function, attached to its LOp."""

    __slots__ = ("callee", "rename", "body", "ret_value", "has_alloca", "width")

    def __init__(self, callee: str, rename: Dict[str, str], body: List["LOp"],
                 ret_value, has_alloca: bool) -> None:
        self.callee = callee
        #: callee register -> synthetic segment-local name
        self.rename = rename
        #: callee body LOps (terminating Ret excluded; its billing is not)
        self.body = body
        #: renamed Ret operand (synthetic reg name, int, or None)
        self.ret_value = ret_value
        self.has_alloca = has_alloca
        # call + body instructions + the callee's ret, all billed 1 each
        self.width = 1 + len(body) + 1


class LOp:
    """One IR instruction plus everything the passes proved about it."""

    __slots__ = ("instr", "fname", "label", "index",
                 "folded", "fold_ops", "alg", "dict_store", "inline")

    def __init__(self, instr, fname: str, label: str, index: int) -> None:
        self.instr = instr
        self.fname = fname
        self.label = label
        self.index = index
        self.folded: Optional[int] = None
        self.fold_ops: Optional[Tuple[Optional[int], ...]] = None
        self.alg: Optional[Tuple[str, object]] = None
        self.dict_store = True
        self.inline: Optional[InlineInfo] = None

    @property
    def width(self) -> int:
        return self.inline.width if self.inline is not None else 1

    def render(self) -> str:
        """Disassembly line with pass annotations, for ``report`` diffs."""
        text = _fmt_instruction(self.instr)
        notes = []
        if self.folded is not None:
            notes.append(f"fold={self.folded}")
        elif self.fold_ops is not None and any(v is not None for v in self.fold_ops):
            known = ",".join("?" if v is None else str(v) for v in self.fold_ops)
            notes.append(f"ops=[{known}]")
        if self.alg is not None:
            notes.append(f"{self.alg[0]}({self.alg[1]})")
        if not self.dict_store:
            notes.append("nostore")
        if self.inline is not None:
            notes.append(f"inline={self.inline.callee} w={self.inline.width}")
        if notes:
            return f"{text}  ; {' '.join(n for n in notes if n)}"
        return text


class PlainUnit:
    """One LOp executed as a single dispatcher slot."""

    __slots__ = ("lop",)

    def __init__(self, lop: LOp) -> None:
        self.lop = lop

    @property
    def width(self) -> int:
        return self.lop.width

    def render(self) -> List[str]:
        return [self.lop.render()]


class SegUnit:
    """A fused straight-line superinstruction covering several LOps.

    ``absorb`` (set by the ``compress`` pass) is the block's trailing
    ``Br``/``Jmp`` LOp, folded into the segment's generated code so a hot
    loop body costs one dispatch per iteration.  ``covered`` lists the
    instrumentation sites the segment hides; the binder refuses to fuse
    while any of them is live.
    """

    __slots__ = ("lops", "absorb", "covered")

    def __init__(self, lops: List[LOp]) -> None:
        self.lops = lops
        self.absorb: Optional[LOp] = None
        self.covered: List[Tuple[str, str, Optional[Tuple[str, str, int]]]] = []
        for lop in lops:
            self.covered.extend(_covered_sites(lop))

    @property
    def width(self) -> int:
        w = sum(lop.width for lop in self.lops)
        if self.absorb is not None:
            w += 1
        return w

    def all_lops(self) -> List[LOp]:
        """Covered LOps in order, including an absorbed terminator."""
        if self.absorb is not None:
            return self.lops + [self.absorb]
        return list(self.lops)

    def render(self) -> List[str]:
        lines = [f"seg w={self.width} {{"]
        for lop in self.all_lops():
            lines.append(f"  {lop.render()}")
        lines.append("}")
        return lines


def _covered_sites(lop: LOp):
    """(kind, position, elision-site) triples a fused LOp would hide.

    Mirrors exactly which hook tables the reference interpreter consults
    for each instruction class — e.g. ``Const`` only ever fires an
    *after* event, so a registered before-hook on ``ConstInst`` is inert
    and must not block fusion.
    """
    instr = lop.instr
    site = (lop.fname, lop.label, lop.index)
    cls = instr.__class__
    if cls is Const:
        return [("ConstInst", "after", None)]
    if cls is BinOp:
        return [("BinaryOperator", "before", None), ("BinaryOperator", "after", None)]
    if cls is Cmp:
        return [("CmpInst", "after", None)]
    if cls is Load:
        return [("LoadInst", "before", site), ("LoadInst", "after", site)]
    if cls is Store:
        return [("StoreInst", "before", site), ("StoreInst", "after", site)]
    if cls is Alloca:
        return [("AllocaInst", "after", None)]
    if cls is Br:
        return [("BranchInst", "before", None), ("BranchInst", "after", None)]
    if cls is Jmp:
        return []
    if cls is Call and lop.inline is not None:
        sites = [("CallInst", "before", None),
                 ("func:" + lop.inline.callee, "before", None),
                 ("func:" + lop.inline.callee, "after", None),
                 ("ReturnInst", "before", None)]
        for body_lop in lop.inline.body:
            sites.extend(_covered_sites(body_lop))
        return sites
    raise AssertionError(f"not segment-eligible: {instr!r}")


class LBlock:
    __slots__ = ("label", "lops", "units")

    def __init__(self, label: str, lops: List[LOp]) -> None:
        self.label = label
        self.lops = lops
        #: set by to_bytecode; None means "every lop is its own unit"
        self.units: Optional[list] = None

    def effective_units(self) -> list:
        if self.units is not None:
            return self.units
        return [PlainUnit(lop) for lop in self.lops]


class LFunction:
    __slots__ = ("name", "entry", "blocks", "function", "read_sites", "layout")

    def __init__(self, name: str, entry: str, blocks: "Dict[str, LBlock]",
                 function) -> None:
        self.name = name
        self.entry = entry
        self.blocks = blocks
        self.function = function
        #: reg -> list of (label, index) read positions; set by simplify
        self.read_sites: Optional[Dict[str, List[Tuple[str, int]]]] = None
        #: block emission order (entry first); set by compress
        self.layout: List[str] = [entry] + [
            label for label in blocks if label != entry
        ]


class LModule:
    __slots__ = ("module", "functions", "threaded", "stats", "code_cache")

    def __init__(self, module: Module,
                 functions: "Dict[str, LFunction]", threaded: bool) -> None:
        self.module = module
        self.functions = functions
        #: modules that may spawn threads get no fused segments: deferred
        #: thread-local work is invisible single-threaded, but a fused
        #: memory access could otherwise slide across a quantum boundary
        #: another thread observes through the shared cache simulator.
        self.threaded = threaded
        self.stats: Dict[str, int] = {}
        #: generated-source interning (compress): src text -> code object
        self.code_cache: Dict[str, object] = {}


def lower(module: Module) -> LModule:
    """Wrap a validated module in LIR with empty annotations."""
    functions: Dict[str, LFunction] = {}
    threaded = False
    for fname, function in module.functions.items():
        blocks: Dict[str, LBlock] = {}
        for label, block in function.blocks.items():
            lops = [
                LOp(instr, fname, label, index)
                for index, instr in enumerate(block.instructions)
            ]
            for lop in lops:
                instr = lop.instr
                if instr.__class__ is Call and instr.callee.startswith("spawn$"):
                    threaded = True
            blocks[label] = LBlock(label, lops)
        functions[fname] = LFunction(fname, function.entry, blocks, function)
    return LModule(module, functions, threaded)


def render(lmod: LModule) -> str:
    """Deterministic textual form of the LIR, used for per-pass diffs."""
    out: List[str] = []
    for fname, lfn in lmod.functions.items():
        params = ", ".join(lfn.function.params)
        out.append(f"func {fname}({params}):")
        for label in lfn.layout:
            lblock = lfn.blocks[label]
            out.append(f"  {label}:")
            for unit in lblock.effective_units():
                for line in unit.render():
                    out.append(f"    {line}")
        out.append("")
    return "\n".join(out)
