"""Third-tier optimizing bytecode backend for the VM.

``Interpreter(module, backend="bytecode")`` runs the module through a
staged compiler pipeline — ``fold`` → ``inline`` → ``simplify`` →
``to_bytecode`` → ``compress`` (:mod:`repro.vm.bytecode.passes`) — and
executes the result as one flat superinstruction stream per function
(:mod:`repro.vm.bytecode.ops`): straight-line runs of hookless
instructions fuse into single generated-code dispatcher slots, compares
fuse into their branches, and small leaf calls inline into the caller's
segment, while billing and all observable state stay bit-identical to
the reference and closure backends (``tests/vm/test_backends.py``).

Like :mod:`repro.vm.compile`, stage 1 (pipeline over the IR) is memoized
process-wide, keyed by the module's IR digest *and* the active pass
list, so warm serve/exec workers optimize each distinct module once; the
cache counters surface as the ``vm.compile.bytecode`` subsystem in
``repro.serve`` stats alongside the closure tier's ``vm.compile``.

Inspect the pipeline with ``python -m repro.vm.bytecode report
<workload>``, which prints each pass's IR diff and the final
superinstruction layout (:mod:`repro.vm.bytecode.__main__`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.vm.compile import ir_digest
from repro.vm.bytecode.lir import LModule, lower, render
from repro.vm.bytecode.passes import (
    DEFAULT_PASSES,
    PASSES,
    Pass,
    build_pipeline,
    run_pipeline,
)
from repro.vm.bytecode.ops import BCode, bind_bytecode

__all__ = [
    "BCode",
    "DEFAULT_PASSES",
    "LModule",
    "PASSES",
    "Pass",
    "bind_bytecode",
    "build_pipeline",
    "bytecode_cache_stats",
    "clear_bytecode_cache",
    "compile_bytecode",
    "ir_digest",
    "lower",
    "pipeline_override",
    "render",
    "run_pipeline",
]

# ----------------------------------------------------------------------
# stage-1 cache, keyed by (IR digest, active pass names)
# ----------------------------------------------------------------------
_BC_LOCK = threading.Lock()
_BC_CACHE: "OrderedDict[Tuple[str, Tuple[str, ...]], LModule]" = OrderedDict()
_BC_CAPACITY = 128
_BC_HITS = 0
_BC_MISSES = 0

#: Process-wide default pass selection; tests and the report CLI swap it
#: via :func:`pipeline_override` to run partial pipelines.
_ACTIVE_PASSES: Tuple[str, ...] = DEFAULT_PASSES


@contextmanager
def pipeline_override(names: Sequence[str]):
    """Temporarily replace the default pass list used by
    :func:`compile_bytecode` (and therefore by
    ``Interpreter(backend="bytecode")``).  Results compiled under an
    override are cached under their own key, so mixing overridden and
    default runs in one process stays correct."""
    global _ACTIVE_PASSES
    previous = _ACTIVE_PASSES
    _ACTIVE_PASSES = tuple(names)
    try:
        yield
    finally:
        _ACTIVE_PASSES = previous


def bytecode_cache_stats() -> Dict[str, int]:
    """Process-wide stage-1 counters — the ``vm.compile.bytecode``
    subsystem in ``repro.serve`` stats."""
    with _BC_LOCK:
        return {"hits": _BC_HITS, "misses": _BC_MISSES,
                "entries": len(_BC_CACHE)}


def clear_bytecode_cache() -> None:
    global _BC_HITS, _BC_MISSES
    with _BC_LOCK:
        _BC_CACHE.clear()
        _BC_HITS = 0
        _BC_MISSES = 0


def compile_bytecode(
    module: Module,
    digest: Optional[str] = None,
    passes: Optional[Sequence[str]] = None,
    before: Sequence = (),
    after: Sequence = (),
) -> LModule:
    """Stage 1: run the optimizer pipeline, memoized process-wide.

    ``passes`` defaults to the active selection (see
    :func:`pipeline_override`).  Supplying observation hooks bypasses the
    cache — hooks must see every pass actually run.
    """
    global _BC_HITS, _BC_MISSES
    names = tuple(passes) if passes is not None else _ACTIVE_PASSES
    if before or after:
        return run_pipeline(module, names, before=before, after=after)
    if digest is None:
        digest = ir_digest(module)
    key = (digest, names)
    with _BC_LOCK:
        cached = _BC_CACHE.get(key)
        if cached is not None:
            _BC_CACHE.move_to_end(key)
            _BC_HITS += 1
            return cached
        _BC_MISSES += 1
    lmod = run_pipeline(module, names)
    with _BC_LOCK:
        _BC_CACHE[key] = lmod
        while len(_BC_CACHE) > _BC_CAPACITY:
            _BC_CACHE.popitem(last=False)
    return lmod
