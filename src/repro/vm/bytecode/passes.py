"""The staged optimizer pipeline: fold → inline → simplify → to_bytecode → compress.

Modeled on the classic phase-runner shape (each phase a small, composable
unit with uniform before/after hooks) so phases can be toggled, reordered
for experiments, and observed by the ``report`` CLI without special
cases.  Every pass only *annotates* or *regroups* the LIR
(:mod:`repro.vm.bytecode.lir`); none of them may change observable
semantics — ``tests/vm/test_bytecode_passes.py`` re-runs the backend
differential equality with each pass enabled in isolation.

Pass summaries:

* ``fold``      — block-local constant propagation: resolve operands whose
  values are statically known and precompute results of pure ops.
* ``inline``    — expand calls to small single-block leaf functions into
  the caller so the call participates in a fused segment (billing still
  counts the call, every body instruction, and the ret).
* ``simplify``  — compute the function-wide register read-site index,
  strength-reduce algebraic identities (``x+0``, ``x*1`` …) to copies,
  and mark never-read destinations as local-only (dead-store elision).
* ``to_bytecode`` — group straight-line runs of fusable instructions into
  :class:`~repro.vm.bytecode.lir.SegUnit` superinstructions.
* ``compress``  — absorb each block's trailing branch/jump into the
  preceding segment (fused compare+branch) and finalize register homes
  (frame dict vs generated-code local) now that segment spans are known.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Const,
    Jmp,
    Load,
    Ret,
    Store,
)

from repro.vm.bytecode.lir import (
    FUSABLE,
    MAX_SEGMENT_WIDTH,
    InlineInfo,
    LModule,
    LOp,
    PlainUnit,
    SegUnit,
    lower,
)

_MASK64 = (1 << 64) - 1

#: Largest single-block leaf function the inliner will expand (instruction
#: count including the terminating ret).
MAX_INLINE_SIZE = 13


class Pass:
    """Base class: ``run`` transforms the LIR in place; hooks observe it.

    Every hook — before or after, on any pass — has the uniform signature
    ``hook(pass_name: str, position: str, lmod: LModule) -> None`` where
    ``position`` is ``"before"`` or ``"after"``.
    """

    name = "pass"

    def __init__(self, before=(), after=()) -> None:
        self.before = list(before)
        self.after = list(after)

    def __call__(self, lmod: LModule) -> LModule:
        for hook in self.before:
            hook(self.name, "before", lmod)
        self.run(lmod)
        for hook in self.after:
            hook(self.name, "after", lmod)
        return lmod

    def run(self, lmod: LModule) -> None:
        raise NotImplementedError


# ----------------------------------------------------------------------
# fold
# ----------------------------------------------------------------------
def _eval_binop(op: str, a: int, b: int) -> Optional[int]:
    """Compile-time evaluation with the interpreter's exact semantics.
    Returns None when the op would raise (fold must not hide the raise)
    or is unknown."""
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "and":
        return (a & b) & _MASK64
    if op == "or":
        return (a | b) & _MASK64
    if op == "xor":
        return (a ^ b) & _MASK64
    if op == "shl":
        return (a << (b & 63)) & _MASK64
    if op == "shr":
        return (a & _MASK64) >> (b & 63)
    if op == "div":
        if b == 0:
            return None
        return abs(a) // abs(b) * (1 if (a >= 0) == (b >= 0) else -1)
    if op == "rem":
        if b == 0:
            return None
        return abs(a) % abs(b) * (1 if a >= 0 else -1)
    return None


def _eval_cmp(op: str, a: int, b: int) -> int:
    if op == "eq":
        return 1 if a == b else 0
    if op == "ne":
        return 1 if a != b else 0
    if op == "lt":
        return 1 if a < b else 0
    if op == "le":
        return 1 if a <= b else 0
    if op == "gt":
        return 1 if a > b else 0
    return 1 if a >= b else 0  # reference's default arm


class FoldPass(Pass):
    """Block-local constant propagation over analysis/metadata arithmetic.

    A register's value is known from its defining op until the next
    redefinition; propagation never crosses block boundaries (a back
    edge may re-enter the block with different values)."""

    name = "fold"

    def run(self, lmod: LModule) -> None:
        folded = 0
        for lfn in lmod.functions.values():
            for lblock in lfn.blocks.values():
                env: Dict[str, int] = {}
                for lop in lblock.lops:
                    instr = lop.instr
                    cls = instr.__class__
                    if cls is Const:
                        lop.folded = instr.value
                        env[instr.result] = instr.value
                    elif cls is BinOp or cls is Cmp:
                        a = self._resolve(instr.lhs, env)
                        b = self._resolve(instr.rhs, env)
                        lop.fold_ops = (a, b)
                        value = None
                        if a is not None and b is not None:
                            if cls is BinOp:
                                value = _eval_binop(instr.op, a, b)
                            else:
                                value = _eval_cmp(instr.op, a, b)
                        if value is not None:
                            lop.folded = value
                            env[instr.result] = value
                            folded += 1
                        else:
                            env.pop(instr.result, None)
                    elif cls is Br:
                        lop.fold_ops = (self._resolve(instr.cond, env),)
                    else:
                        dst = instr.dst
                        if dst is not None:
                            env.pop(dst, None)
        lmod.stats["fold.constants"] = folded

    @staticmethod
    def _resolve(operand, env) -> Optional[int]:
        if type(operand) is str:
            return env.get(operand)
        return operand


# ----------------------------------------------------------------------
# inline
# ----------------------------------------------------------------------
def _inline_template(lmod: LModule, callee: str):
    """(params, body instrs, ret) when ``callee`` is inlinable, else None.

    Inlinable: a single-block module function of at most
    :data:`MAX_INLINE_SIZE` instructions, no calls, whose reads are all
    definitely assigned in order (so the expansion can promote every
    callee register to a generated-code local), ending in ``ret``.
    """
    function = lmod.module.functions.get(callee)
    if function is None or len(function.blocks) != 1:
        return None
    block = function.blocks[function.entry]
    instrs = block.instructions
    if len(instrs) > MAX_INLINE_SIZE or not isinstance(instrs[-1], Ret):
        return None
    defined = set(function.params)
    for instr in instrs[:-1]:
        if not isinstance(instr, FUSABLE):
            return None
        for operand in instr.operands():
            if type(operand) is str and operand not in defined:
                return None
        dst = instr.dst
        if dst is not None:
            defined.add(dst)
    ret = instrs[-1]
    if type(ret.value) is str and ret.value not in defined:
        return None
    return tuple(function.params), instrs[:-1], ret


def _rename_instr(instr, rn):
    """Clone ``instr`` with registers mapped through ``rn``."""
    def r(op):
        return rn[op] if type(op) is str else op

    cls = instr.__class__
    if cls is Const:
        return dataclasses.replace(instr, result=rn[instr.result])
    if cls is BinOp or cls is Cmp:
        return dataclasses.replace(
            instr, result=rn[instr.result], lhs=r(instr.lhs), rhs=r(instr.rhs))
    if cls is Load:
        return dataclasses.replace(
            instr, result=rn[instr.result], address=r(instr.address))
    if cls is Store:
        return dataclasses.replace(
            instr, value=r(instr.value), address=r(instr.address))
    if cls is Alloca:
        return dataclasses.replace(
            instr, result=rn[instr.result], size=r(instr.size))
    raise AssertionError(f"not inlinable: {instr!r}")


class InlinePass(Pass):
    """Expand calls to small leaf functions at their insertion sites.

    Callee registers get synthetic names that can never collide with the
    caller's (they contain ``#``, which the IR parser rejects in register
    names), and are always promoted to generated-code locals.  Threaded
    modules are skipped entirely — they form no segments, so the
    annotation could never be used.
    """

    name = "inline"

    def run(self, lmod: LModule) -> None:
        if lmod.threaded:
            lmod.stats["inline.calls"] = 0
            return
        templates: Dict[str, object] = {}
        inlined = 0
        site = 0
        for lfn in lmod.functions.values():
            for lblock in lfn.blocks.values():
                for lop in lblock.lops:
                    instr = lop.instr
                    if instr.__class__ is not Call:
                        continue
                    callee = instr.callee
                    if callee not in lmod.module.functions:
                        continue
                    if callee not in templates:
                        templates[callee] = _inline_template(lmod, callee)
                    template = templates[callee]
                    if template is None:
                        continue
                    params, body_instrs, ret = template
                    if len(instr.args) != len(params):
                        continue
                    site += 1
                    rn = {p: f"{callee}#{site}#{p}" for p in params}
                    body: List[LOp] = []
                    entry = lmod.module.functions[callee].entry
                    for index, body_instr in enumerate(body_instrs):
                        dst = body_instr.dst
                        if dst is not None and dst not in rn:
                            rn[dst] = f"{callee}#{site}#{dst}"
                        clone = _rename_instr(body_instr, rn)
                        body_lop = LOp(clone, callee, entry, index)
                        body_lop.dict_store = False
                        body.append(body_lop)
                    ret_value = ret.value
                    if type(ret_value) is str:
                        ret_value = rn[ret_value]
                    lop.inline = InlineInfo(
                        callee, rn, body, ret_value,
                        any(i.__class__ is Alloca for i in body_instrs),
                    )
                    inlined += 1
        lmod.stats["inline.calls"] = inlined


# ----------------------------------------------------------------------
# simplify
# ----------------------------------------------------------------------
class SimplifyPass(Pass):
    """Read-site indexing, algebraic strength reduction, dead-store marks."""

    name = "simplify"

    def run(self, lmod: LModule) -> None:
        reduced = 0
        dead = 0
        for lfn in lmod.functions.values():
            reads: Dict[str, List[Tuple[str, int]]] = {}
            for lblock in lfn.blocks.values():
                for lop in lblock.lops:
                    for operand in lop.instr.operands():
                        if type(operand) is str:
                            reads.setdefault(operand, []).append(
                                (lblock.label, lop.index))
            lfn.read_sites = reads
            for lblock in lfn.blocks.values():
                for lop in lblock.lops:
                    instr = lop.instr
                    if instr.__class__ is BinOp and lop.folded is None:
                        reduced += self._reduce(lop)
                    dst = instr.dst
                    if (dst is not None and dst not in reads
                            and instr.__class__ is not Call):
                        # Never read anywhere in the function: the value
                        # need not live in the frame's regs dict when the
                        # defining op runs inside a fused segment.
                        lop.dict_store = False
                        dead += 1
        lmod.stats["simplify.reduced"] = reduced
        lmod.stats["simplify.dead"] = dead

    @staticmethod
    def _reduce(lop: LOp) -> int:
        """Mark exact algebraic identities. Only identities that hold for
        the interpreter's unmasked add/sub/mul are used — masked ops like
        ``or x, 0`` are *not* copies (they clamp to 64 bits)."""
        instr = lop.instr
        known = lop.fold_ops or (None, None)
        lhs_const = instr.lhs if type(instr.lhs) is int else known[0]
        rhs_const = instr.rhs if type(instr.rhs) is int else known[1]
        op = instr.op
        if op == "add":
            if rhs_const == 0:
                lop.alg = ("copy", instr.lhs)
                return 1
            if lhs_const == 0:
                lop.alg = ("copy", instr.rhs)
                return 1
        elif op == "sub" and rhs_const == 0:
            lop.alg = ("copy", instr.lhs)
            return 1
        elif op == "mul":
            if rhs_const == 1:
                lop.alg = ("copy", instr.lhs)
                return 1
            if lhs_const == 1:
                lop.alg = ("copy", instr.rhs)
                return 1
            if rhs_const == 0 or lhs_const == 0:
                lop.folded = 0
                return 1
        elif op == "and" and (rhs_const == 0 or lhs_const == 0):
            lop.folded = 0
            return 1
        return 0


# ----------------------------------------------------------------------
# to_bytecode
# ----------------------------------------------------------------------
class ToBytecodePass(Pass):
    """Group straight-line runs of fusable ops into superinstructions.

    Threaded modules keep every op in its own dispatcher slot: a fused
    memory access could otherwise slip across a round-robin quantum
    boundary, and another thread would observe the different interleaving
    through the shared cache simulator.
    """

    name = "to_bytecode"

    def run(self, lmod: LModule) -> None:
        segments = 0
        fused_width = 0
        for lfn in lmod.functions.values():
            for lblock in lfn.blocks.values():
                units: list = []
                run: List[LOp] = []
                run_width = 0

                def flush():
                    nonlocal run, run_width, segments, fused_width
                    if len(run) >= 2:
                        seg = SegUnit(run)
                        units.append(seg)
                        segments += 1
                        fused_width += seg.width
                    else:
                        units.extend(PlainUnit(lop) for lop in run)
                    run = []
                    run_width = 0

                if not lmod.threaded:
                    for lop in lblock.lops:
                        eligible = (
                            isinstance(lop.instr, FUSABLE)
                            or lop.inline is not None
                        )
                        if eligible:
                            if run_width + lop.width > MAX_SEGMENT_WIDTH:
                                flush()
                            run.append(lop)
                            run_width += lop.width
                        else:
                            flush()
                            units.append(PlainUnit(lop))
                    flush()
                else:
                    units = [PlainUnit(lop) for lop in lblock.lops]
                lblock.units = units
        lmod.stats["to_bytecode.segments"] = segments
        lmod.stats["to_bytecode.fused_width"] = fused_width


# ----------------------------------------------------------------------
# compress
# ----------------------------------------------------------------------
class CompressPass(Pass):
    """Seal segments: absorb trailing terminators, finalize register homes.

    With the final segment spans known, a register defined in a segment
    whose every read also happens inside that segment (after the def)
    never needs its frame-dict slot — the generated code keeps it in a
    Python local.  Non-final defs within a span are dead stores outright.
    """

    name = "compress"

    def run(self, lmod: LModule) -> None:
        absorbed = 0
        localized = 0
        for lfn in lmod.functions.values():
            for lblock in lfn.blocks.values():
                units = lblock.units
                if units is None:
                    continue
                if (len(units) >= 2
                        and isinstance(units[-1], PlainUnit)
                        and units[-1].lop.instr.__class__ in (Br, Jmp)
                        and isinstance(units[-2], SegUnit)
                        and units[-2].width < MAX_SEGMENT_WIDTH):
                    seg = units[-2]
                    term = units.pop().lop
                    seg.absorb = term
                    seg.covered.extend(
                        c for c in _term_covered(term))
                    absorbed += 1
                if lfn.read_sites is None:
                    continue
                for unit in units:
                    if isinstance(unit, SegUnit):
                        localized += _finalize_homes(lfn, lblock.label, unit)
        lmod.stats["compress.absorbed"] = absorbed
        lmod.stats["compress.localized"] = localized


def _term_covered(term: LOp):
    from repro.vm.bytecode.lir import _covered_sites

    return _covered_sites(term)


def _finalize_homes(lfn, label: str, seg: SegUnit) -> int:
    span = {lop.index for lop in seg.all_lops()}
    last_def: Dict[str, LOp] = {}
    for lop in seg.lops:
        dst = lop.instr.dst
        if dst is not None and lop.dict_store:
            last_def[dst] = lop
    localized = 0
    for lop in seg.lops:
        dst = lop.instr.dst
        if dst is None or not lop.dict_store:
            continue
        if lop is not last_def.get(dst):
            # Overwritten later in the same straight-line span: the
            # intermediate value is unobservable outside it.
            lop.dict_store = False
            localized += 1
            continue
        reads = lfn.read_sites.get(dst, ())
        if all(rl == label and ri in span for rl, ri in reads):
            lop.dict_store = False
            localized += 1
    return localized


# ----------------------------------------------------------------------
# pipeline assembly
# ----------------------------------------------------------------------
PASSES = {
    "fold": FoldPass,
    "inline": InlinePass,
    "simplify": SimplifyPass,
    "to_bytecode": ToBytecodePass,
    "compress": CompressPass,
}

DEFAULT_PASSES: Tuple[str, ...] = (
    "fold", "inline", "simplify", "to_bytecode", "compress",
)


def build_pipeline(names=None, before=(), after=()) -> List[Pass]:
    """Instantiate passes by name, each with the given uniform hooks."""
    if names is None:
        names = DEFAULT_PASSES
    unknown = [n for n in names if n not in PASSES]
    if unknown:
        raise ValueError(f"unknown passes: {unknown!r} (have {sorted(PASSES)})")
    return [PASSES[name](before=before, after=after) for name in names]


def run_pipeline(module, names=None, before=(), after=()) -> LModule:
    """Lower ``module`` and run the (possibly partial) pipeline over it."""
    lmod = lower(module)
    for p in build_pipeline(names, before=before, after=after):
        p(lmod)
    return lmod
