"""Execution substrate: deterministic interpreter plus memory-hierarchy model.

This package stands in for "run the instrumented binary on hardware" in the
original paper.  It executes :mod:`repro.ir` programs under a simple cycle
cost model with a set-associative cache simulator, fires instrumentation
hooks at the same join points LLVM instrumentation passes would use, and
reports a :class:`repro.vm.profile.Profile` per run.
"""

from repro.vm.cache import CacheConfig, CacheSim
from repro.vm.memory import AddressSpace, Memory
from repro.vm.profile import Profile
from repro.vm.events import EventContext, Hooks
from repro.vm.interpreter import Interpreter

__all__ = [
    "AddressSpace",
    "CacheConfig",
    "CacheSim",
    "EventContext",
    "Hooks",
    "Interpreter",
    "Memory",
    "Profile",
]
