"""Builtin library functions available to IR programs.

Each builtin has the signature ``fn(vm, thread, args) -> int | None`` and
bills realistic cycle costs through the VM.  These are the functions ALDA
analyses commonly instrument (``malloc``, ``free``, ``gets``, ...) plus a
few conveniences for writing workloads (``rand``, ``print_int``).

Simulated library surfaces (OpenSSL, ZLib) are *not* here — they live in
:mod:`repro.workloads.libssl` / :mod:`repro.workloads.libzlib` and are
passed to the interpreter via its ``extern`` parameter.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

REGISTRY: Dict[str, Callable] = {}


def builtin(name: str):
    def register(fn):
        REGISTRY[name] = fn
        return fn

    return register


@builtin("malloc")
def _malloc(vm, thread, args: Tuple[int, ...]) -> int:
    vm.profile.base_cycles += 30
    return vm.heap.malloc(args[0])


@builtin("calloc")
def _calloc(vm, thread, args: Tuple[int, ...]) -> int:
    count, size = args
    total = count * size
    vm.profile.base_cycles += 30 + total // 8
    address = vm.heap.malloc(total)
    vm.memory.fill(address, 0, total)
    return address


@builtin("free")
def _free(vm, thread, args: Tuple[int, ...]) -> int:
    vm.profile.base_cycles += 20
    vm.heap.free(args[0])
    return 0


@builtin("memset")
def _memset(vm, thread, args: Tuple[int, ...]) -> int:
    address, byte, size = args
    vm.profile.base_cycles += max(1, size // 8)
    vm.profile.mem_cycles += vm.cache.access(address, size)
    vm.memory.fill(address, byte, size)
    return address


@builtin("memcpy")
def _memcpy(vm, thread, args: Tuple[int, ...]) -> int:
    dst, src, size = args
    vm.profile.base_cycles += max(1, size // 8)
    vm.profile.mem_cycles += vm.cache.access(src, size)
    vm.profile.mem_cycles += vm.cache.access(dst, size)
    vm.memory.copy(dst, src, size)
    return dst


@builtin("gets")
def _gets(vm, thread, args: Tuple[int, ...]) -> int:
    """Read a simulated input line into the buffer; returns the buffer.

    Reproduces the interception gap from the paper's Table 3: LLVM MSan
    does not intercept ``gets``, so the written bytes keep their poison.
    Our ALDA MSan source ships a ``gets`` handler; the hand-tuned baseline
    deliberately omits one.
    """
    buffer = args[0]
    line = vm.next_input()
    vm.profile.base_cycles += 50
    vm.profile.mem_cycles += vm.cache.access(buffer, len(line))
    for offset, byte in enumerate(line):
        vm.memory.write(buffer + offset, byte, 1)
    return buffer


def _read_cstring_length(vm, address: int, limit: int = 4096) -> int:
    """Length (excluding NUL) of the C string at ``address``."""
    length = 0
    while length < limit and vm.memory.read(address + length, 1) != 0:
        length += 1
    return length


@builtin("strlen")
def _strlen(vm, thread, args: Tuple[int, ...]) -> int:
    address = args[0]
    length = _read_cstring_length(vm, address)
    vm.profile.base_cycles += max(1, length // 8)
    vm.profile.mem_cycles += vm.cache.access(address, length + 1)
    return length


@builtin("strcpy")
def _strcpy(vm, thread, args: Tuple[int, ...]) -> int:
    """Copy the C string; returns bytes copied *including* the NUL.

    (Deviation from C's return value, documented: interceptor handlers
    need the length and ALDA cannot loop — the real MSan interceptor
    knows the length the same way.)
    """
    dst, src = args
    length = _read_cstring_length(vm, src) + 1
    vm.profile.base_cycles += max(1, length // 8)
    vm.profile.mem_cycles += vm.cache.access(src, length)
    vm.profile.mem_cycles += vm.cache.access(dst, length)
    vm.memory.copy(dst, src, length)
    return length


@builtin("strcmp")
def _strcmp(vm, thread, args: Tuple[int, ...]) -> int:
    a, b = args
    offset = 0
    while True:
        byte_a = vm.memory.read(a + offset, 1)
        byte_b = vm.memory.read(b + offset, 1)
        if byte_a != byte_b:
            result = 1 if byte_a > byte_b else -1
            break
        if byte_a == 0:
            result = 0
            break
        offset += 1
    vm.profile.base_cycles += max(1, offset // 4)
    vm.profile.mem_cycles += vm.cache.access(a, offset + 1)
    vm.profile.mem_cycles += vm.cache.access(b, offset + 1)
    return result


@builtin("atoi")
def _atoi(vm, thread, args: Tuple[int, ...]) -> int:
    address = args[0]
    length = _read_cstring_length(vm, address, limit=20)
    vm.profile.base_cycles += 10 + length
    vm.profile.mem_cycles += vm.cache.access(address, length + 1)
    text = bytes(
        vm.memory.read(address + i, 1) for i in range(length)
    ).decode("ascii", errors="replace")
    digits = ""
    for position, char in enumerate(text.lstrip()):
        if char in "+-" and position == 0:
            digits += char
        elif char.isdigit():
            digits += char
        else:
            break
    try:
        return int(digits)
    except ValueError:
        return 0


@builtin("puts")
def _puts(vm, thread, args: Tuple[int, ...]) -> int:
    vm.profile.base_cycles += 40
    return 0


@builtin("print_int")
def _print_int(vm, thread, args: Tuple[int, ...]) -> int:
    vm.profile.base_cycles += 40
    return 0


@builtin("rand")
def _rand(vm, thread, args: Tuple[int, ...]) -> int:
    vm.profile.base_cycles += 5
    return vm.rand() & 0x7FFF_FFFF


@builtin("program_exit")
def _program_exit(vm, thread, args: Tuple[int, ...]) -> int:
    """Explicit end-of-program marker workloads call before returning.

    It does nothing itself; sanitizers hook ``func:program_exit`` for
    end-of-run checks (leak detection).
    """
    vm.profile.base_cycles += 10
    return 0


@builtin("abort")
def _abort(vm, thread, args: Tuple[int, ...]) -> int:
    from repro.errors import VMError

    raise VMError("program called abort()")


@builtin("exit_thread")
def _exit_thread(vm, thread, args: Tuple[int, ...]) -> int:
    # Force the current frame stack to unwind at next Ret; workloads use
    # plain Ret instead, so this is a stub kept for API parity.
    vm.profile.base_cycles += 10
    return 0
