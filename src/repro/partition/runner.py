"""Fan shards across the worker pool; settle results as they stream in.

:func:`replay_partitioned` is the one entry point the executor, the
harness, and the serve scheduler all use.  Decode work (range read +
digest verify + varint decode + spec filtering — 54–90% of monolithic
replay wall-clock on the bundled analyses) runs in parallel:

* with a :class:`repro.exec.workers.PersistentWorkerPool`, each shard
  is a ``DECODE_SHARD_TASK`` submission and artifacts come back over
  the worker pipes;
* without a pool (``pool=None``), shards decode lazily in-process —
  the differential-test configuration, and the degraded serve mode.

Handler execution stays sequential in the caller's process
(:func:`repro.partition.merge.settle`), threading analysis state, the
cache simulator, and frames through the shards in segment order.  The
settle loop starts on shard 0 the moment it arrives while later shards
are still decoding, so partitioned replay overlaps decode and settle
even at one worker.

Failure contract: any shard decode failure — worker crash, corrupt
segment (quarantined by the verified read), injected
``partition.shard.fail`` — raises :class:`PartitionShardError`; a
perturbed artifact raises :class:`PartitionMergeError` from the settle.
Both are subclasses of :class:`PartitionError`, and both leave the
trace store intact, so callers fall back to monolithic replay.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.trace.format import FORMAT_VERSION_V2, TraceReader
from repro.trace.store import TraceStore
from repro.vm.cache import CacheConfig
from repro.vm.profile import Profile
from repro.vm.reporting import Reporter

from repro.partition import counters
from repro.partition.merge import PartitionError, PartitionShardError, settle
from repro.partition.planner import (
    PartitionPlan,
    plan_partition,
    plan_partition_meta,
)
from repro.partition.shard import DECODE_SHARD_TASK, decode_shard, hooked_kinds


def _shard_payloads(plan: PartitionPlan, meta: dict, root: str, path: str,
                    specs: Tuple[str, ...]) -> list:
    payloads = []
    for shard in plan.shards:
        packed = {
            "root": root,
            "path": path,
            "version": plan.version,
            "index": shard.index,
            "specs": specs,
            "ustart": shard.ustart,
            "uend": shard.uend,
            "strings": list(plan.strings[:shard.n_strings]),
            "last_address": shard.last_address,
            "records_before": shard.records_before,
            "events_before": shard.events_before,
            "next_serial": shard.next_serial,
            "entries": (
                meta["segments"][shard.seg_start:shard.seg_end]
                if plan.version == FORMAT_VERSION_V2 else None
            ),
        }
        payloads.append(packed)
    return payloads


def replay_partitioned(
    store: Union[TraceStore, str],
    trace_path,
    specs: Sequence[str],
    shards: int,
    *,
    pool=None,
    cache_config: Optional[CacheConfig] = None,
    reader: Optional[TraceReader] = None,
    checkpoint_every: int = 4096,
) -> Tuple[Profile, Reporter, dict]:
    """Partitioned replay of one stored trace through analysis specs.

    ``specs`` are :data:`repro.exec.pool.ANALYSIS_SPECS` keys; the
    result is bit-identical to
    ``TraceReplayer(trace).replay([build_analysis(s) for s in specs])``.
    For v2 traces planning reads only the tail meta and shard decoders
    range-read only their own segments; a v1 trace is planned from its
    (verified) payload and each shard re-reads the blob.

    Returns ``(profile, reporter, stats)`` where ``stats`` records the
    plan shape, decode mode, per-shard settle timings, and wall time.
    """
    started = time.perf_counter()
    if not isinstance(store, TraceStore):
        store = TraceStore(store)
    trace_path = Path(trace_path)
    specs = tuple(specs)

    if reader is not None:
        plan = plan_partition(reader, shards, checkpoint_every)
        meta = reader.meta
    else:
        meta = store.read_tail_meta(trace_path)
        if meta.get("version") == FORMAT_VERSION_V2:
            plan = plan_partition_meta(meta, shards)
        else:
            reader = store.open_path(trace_path)
            plan = plan_partition(reader, shards, checkpoint_every)

    counters.bump("plans")
    counters.bump("shards_planned", plan.n_shards)
    payloads = _shard_payloads(plan, meta, str(store.root), str(trace_path),
                               specs)
    # Warm the hook-probe cache BEFORE settle attaches the analyses: the
    # probe attaches the same memoized instances to a throwaway VM, and
    # hand-tuned baselines bind internal billing state to their most
    # recent attach — an inline decode probing mid-settle would hijack
    # that binding and bill metadata traffic into the throwaway VM.
    hooked_kinds(specs)

    if pool is None:
        def artifacts():
            for packed in payloads:
                try:
                    artifact = decode_shard(packed)
                except PartitionError:
                    counters.bump("shard_failures")
                    raise
                except Exception as exc:
                    counters.bump("shard_failures")
                    raise PartitionShardError(
                        f"shard {packed['index']} failed to decode: {exc}"
                    ) from exc
                counters.bump("shards_executed")
                yield artifact

        profile, reporter, merge_stats = settle(
            artifacts(), _build_analyses(specs), cache_config
        )
        mode = "inline"
    else:
        with ThreadPoolExecutor(
            max_workers=min(len(payloads), pool.size) or 1
        ) as executor:
            futures = [
                executor.submit(pool.call, DECODE_SHARD_TASK, packed)
                for packed in payloads
            ]

            def artifacts():
                for index, future in enumerate(futures):
                    try:
                        artifact = future.result()
                    except Exception as exc:
                        counters.bump("shard_failures")
                        raise PartitionShardError(
                            f"shard {index} failed to decode: {exc}"
                        ) from exc
                    counters.bump("shards_executed")
                    yield artifact

            profile, reporter, merge_stats = settle(
                artifacts(), _build_analyses(specs), cache_config
            )
        mode = "pool"

    counters.bump("merges")
    counters.bump("merge_seconds", merge_stats["merge_seconds"])
    counters.bump("replays")
    stats = {
        "mode": mode,
        "version": plan.version,
        "requested_shards": shards,
        "planned_shards": plan.n_shards,
        "records": merge_stats["records"],
        "events": merge_stats["events"],
        "merge_seconds": merge_stats["merge_seconds"],
        "per_shard": merge_stats["per_shard"],
        "wall_seconds": time.perf_counter() - started,
    }
    return profile, reporter, stats


def _build_analyses(specs: Tuple[str, ...]):
    from repro.exec.pool import build_analysis

    return [build_analysis(spec) for spec in specs]


__all__ = ["replay_partitioned"]
