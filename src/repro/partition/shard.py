"""Worker-side shard decode: verified range read + filtered decode.

``decode_shard`` is the :class:`repro.exec.workers.PersistentWorkerPool`
task behind partitioned replay.  Given one :class:`ShardSpec`'s worth of
plan data it:

1. reads *only this shard's bytes* — per-segment verified range reads
   for v2 traces (:meth:`repro.trace.store.TraceStore.read_segment`), a
   whole verified read + slice for v1;
2. decodes them into the replayer's resolved record tuples, seeded from
   the shard snapshot (string-table prefix, last address, running event
   count);
3. pre-filters what the requested analyses can never observe: event
   records whose (position, kind) has no attached hook, and shadow
   dataflow records when no analysis needs shadow.  Dropped events still
   advance the global sequence number, so every surviving event record
   carries its *absolute* ``seq`` as an extra trailing element — the
   settle loop fires handlers with exactly the seq a monolithic replay
   would have used.

The hook probe builds the analyses in the worker (warm per-process via
``build_analysis``'s lru_cache) and attaches them to a throwaway
:class:`~repro.trace.replayer.ReplayVM`; analysis construction is
deterministic, so the worker's hook table matches the settle VM's.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro import faultline
from repro.trace.format import (
    EVF_AFTER,
    EVF_HAS_BT,
    EVF_HAS_RESULT,
    OP_ACCESS,
    OP_DEFAULT,
    OP_EVENT,
    OP_MOV,
    OP_OR2,
    OP_POP,
    OP_PUSH,
    OP_SET0,
    OP_STR,
    OP_SUMMARY,
    TraceFormatError,
    read_varint,
    unzigzag,
)
from repro.trace.replayer import (
    R_ACCESS,
    R_DEFAULT,
    R_EVENT,
    R_MOV,
    R_OR2,
    R_POP,
    R_PUSH,
    R_SET0,
    R_SUMMARY,
    ReplayVM,
    _materialize,
)

#: dotted task path for PersistentWorkerPool submission
DECODE_SHARD_TASK = "repro.partition.shard:decode_shard"


@dataclass
class ShardArtifact:
    """One decoded, filtered shard — the unit the settle loop consumes.

    The ``*_before`` fields restate the plan's expectations so the
    merger can verify artifact continuity (shards arriving out of
    order, doubled, or perturbed raise ``PartitionMergeError`` instead
    of silently producing wrong results).
    """

    index: int
    records: List[tuple] = field(repr=False)
    records_before: int = 0
    n_records: int = 0  # records decoded (pre-filter)
    events_before: int = 0
    n_events: int = 0
    next_serial_before: int = 0
    n_pushes: int = 0
    saw_summary: bool = False
    n_filtered: int = 0  # records dropped by spec filtering


@functools.lru_cache(maxsize=64)
def hooked_kinds(
    specs: Tuple[str, ...],
) -> Tuple[FrozenSet[str], FrozenSet[str], bool]:
    """(before-kinds, after-kinds, needs-shadow) for a spec tuple.

    Probes by attaching the built analyses to a throwaway ReplayVM —
    the exact registration path replay uses, so the filter can never
    disagree with the settle VM about what fires.
    """
    vm = ReplayVM()
    from repro.exec.pool import build_analysis

    attachables = [_materialize(build_analysis(spec)) for spec in specs]
    vm.track_shadow = any(a.needs_shadow for a in attachables)
    for attachable in attachables:
        attachable.attach(vm)
    before = frozenset(k for k, v in vm.hooks.before.items() if v)
    after = frozenset(k for k, v in vm.hooks.after.items() if v)
    return before, after, vm.track_shadow


def decode_slice(
    payload: bytes,
    *,
    index: int = 0,
    strings: Tuple[str, ...] = (),
    last_address: int = 0,
    records_before: int = 0,
    events_before: int = 0,
    next_serial_before: int = 0,
    fire_before: Optional[FrozenSet[str]] = None,
    fire_after: Optional[FrozenSet[str]] = None,
    keep_shadow: bool = True,
) -> ShardArtifact:
    """Decode one payload slice into a :class:`ShardArtifact`.

    A superset of :func:`repro.trace.replayer._decode` seeded with the
    shard snapshot: the string table starts from ``strings``, access
    addresses resolve against ``last_address``, and every surviving
    event record gains a trailing absolute ``seq`` element (index 13).
    ``fire_before``/``fire_after`` of ``None`` keep every event.
    """
    table: List[str] = list(strings)
    records: List[tuple] = []
    append = records.append
    pos = 0
    end = len(payload)
    n_records = 0
    n_events = 0
    n_pushes = 0
    n_filtered = 0
    saw_summary = False
    seq = events_before

    while pos < end:
        op = payload[pos]
        pos += 1

        if op == OP_ACCESS:
            delta, pos = read_varint(payload, pos)
            size, pos = read_varint(payload, pos)
            last_address += unzigzag(delta)
            append((R_ACCESS, last_address, size))
            n_records += 1

        elif op == OP_EVENT:
            flags, pos = read_varint(payload, pos)
            kind_id, pos = read_varint(payload, pos)
            tid, pos = read_varint(payload, pos)
            frame_serial, pos = read_varint(payload, pos)
            n_ops, pos = read_varint(payload, pos)
            ops = []
            for _ in range(n_ops):
                value, pos = read_varint(payload, pos)
                ops.append(unzigzag(value))
            result = None
            if flags & EVF_HAS_RESULT:
                value, pos = read_varint(payload, pos)
                result = unzigzag(value)
            n_sizes, pos = read_varint(payload, pos)
            sizes = []
            for _ in range(n_sizes):
                value, pos = read_varint(payload, pos)
                sizes.append(value)
            result_size, pos = read_varint(payload, pos)
            n_regs, pos = read_varint(payload, pos)
            operand_regs = []
            for _ in range(n_regs):
                value, pos = read_varint(payload, pos)
                operand_regs.append(None if value == 0 else table[value - 1])
            result_reg_id, pos = read_varint(payload, pos)
            loc_id, pos = read_varint(payload, pos)
            loc = table[loc_id]
            bt_top = loc
            if flags & EVF_HAS_BT:
                bt_id, pos = read_varint(payload, pos)
                bt_top = table[bt_id]
            n_records += 1
            n_events += 1
            seq += 1
            after = bool(flags & EVF_AFTER)
            kind = table[kind_id]
            firing = fire_after if after else fire_before
            if firing is not None and kind not in firing:
                n_filtered += 1
                continue
            append((
                R_EVENT,
                after,
                kind,
                tid,
                frame_serial,
                tuple(ops),
                result,
                tuple(sizes),
                result_size,
                tuple(operand_regs),
                None if result_reg_id == 0 else table[result_reg_id - 1],
                loc,
                bt_top,
                seq,
            ))

        elif op == OP_STR:
            length, pos = read_varint(payload, pos)
            table.append(payload[pos:pos + length].decode("utf-8"))
            pos += length

        elif op == OP_OR2:
            frame_serial, pos = read_varint(payload, pos)
            dst_id, pos = read_varint(payload, pos)
            lhs_id, pos = read_varint(payload, pos)
            rhs_id, pos = read_varint(payload, pos)
            n_records += 1
            if not keep_shadow:
                n_filtered += 1
                continue
            append((
                R_OR2,
                frame_serial,
                table[dst_id],
                None if lhs_id == 0 else table[lhs_id - 1],
                None if rhs_id == 0 else table[rhs_id - 1],
            ))

        elif op == OP_SET0 or op == OP_DEFAULT:
            frame_serial, pos = read_varint(payload, pos)
            reg_id, pos = read_varint(payload, pos)
            n_records += 1
            if not keep_shadow:
                n_filtered += 1
                continue
            append((R_SET0 if op == OP_SET0 else R_DEFAULT,
                    frame_serial, table[reg_id]))

        elif op == OP_MOV:
            dst_serial, pos = read_varint(payload, pos)
            dst_id, pos = read_varint(payload, pos)
            src_serial, pos = read_varint(payload, pos)
            src_id, pos = read_varint(payload, pos)
            n_records += 1
            if not keep_shadow:
                n_filtered += 1
                continue
            append((
                R_MOV,
                dst_serial,
                table[dst_id],
                src_serial,
                None if src_id == 0 else table[src_id - 1],
            ))

        elif op == OP_PUSH:
            tid, pos = read_varint(payload, pos)
            entry_id, pos = read_varint(payload, pos)
            append((R_PUSH, tid,
                    None if entry_id == 0 else table[entry_id - 1]))
            n_records += 1
            n_pushes += 1

        elif op == OP_POP:
            frame_serial, pos = read_varint(payload, pos)
            tid, pos = read_varint(payload, pos)
            append((R_POP, frame_serial, tid))
            n_records += 1

        elif op == OP_SUMMARY:
            base_cycles, pos = read_varint(payload, pos)
            instructions, pos = read_varint(payload, pos)
            mem_cycles, pos = read_varint(payload, pos)
            heap_peak, pos = read_varint(payload, pos)
            _n_events, pos = read_varint(payload, pos)
            _n_accesses, pos = read_varint(payload, pos)
            append((R_SUMMARY, base_cycles, instructions, mem_cycles, heap_peak))
            n_records += 1
            saw_summary = True

        else:
            raise TraceFormatError(f"unknown opcode {op} at offset {pos - 1}")

    return ShardArtifact(
        index=index,
        records=records,
        records_before=records_before,
        n_records=n_records,
        events_before=events_before,
        n_events=n_events,
        next_serial_before=next_serial_before,
        n_pushes=n_pushes,
        saw_summary=saw_summary,
        n_filtered=n_filtered,
    )


def decode_shard(packed: dict) -> ShardArtifact:
    """Pool task: read, verify, decode, and filter one shard.

    ``packed`` carries the store root, trace path, format version, the
    shard's plan fields, its v2 segment entries (or v1 byte range), and
    the analysis spec tuple for filtering.  Raises whatever the
    verified read raises — a corrupt segment surfaces as
    ``StoreCorruptionError`` from exactly this shard, leaving the other
    shards' work intact.
    """
    if faultline.inject("partition.shard.fail"):
        raise RuntimeError("faultline: injected partition shard failure")

    from repro.trace.store import TraceStore

    store = TraceStore(packed["root"])
    path = packed["path"]
    if packed["version"] == 2:
        blob = b"".join(
            store.read_segment(path, entry) for entry in packed["entries"]
        )
    else:
        reader = store.open_path(path)
        blob = reader.payload[packed["ustart"]:packed["uend"]]

    specs = tuple(packed["specs"])
    fire_before, fire_after, needs_shadow = hooked_kinds(specs)
    return decode_slice(
        blob,
        index=packed["index"],
        strings=tuple(packed["strings"]),
        last_address=packed["last_address"],
        records_before=packed["records_before"],
        events_before=packed["events_before"],
        next_serial_before=packed["next_serial"],
        fire_before=fire_before,
        fire_after=fire_after,
        keep_shadow=needs_shadow,
    )


__all__ = [
    "DECODE_SHARD_TASK",
    "ShardArtifact",
    "decode_shard",
    "decode_slice",
    "hooked_kinds",
]
