"""Cut a recorded trace into contiguous, balanced replay shards.

A *shard* is a contiguous byte range of the (uncompressed) payload plus
the decoder state at its first record — everything
:func:`repro.partition.shard.decode_shard` needs to decode it without
touching any other byte of the trace:

* the string-table prefix length (ids are interned in-stream, in order,
  so the first ``n_strings`` entries of the final table seed a
  mid-stream decoder);
* the last access address (``OP_ACCESS`` stores zigzag deltas);
* the next frame serial and the running record/event/access totals
  (events carry a global sequence number; frame pushes assign serials
  implicitly).

For v2 traces the cut candidates are exactly the segment boundaries
from the tail index — planning needs only the tail meta, no payload IO.
For v1 traces the planner makes one cheap skip-scan over the payload
(no tuple materialization) collecting a checkpoint every few thousand
records, then cuts at the checkpoints closest to an even record split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.trace.format import (
    FORMAT_VERSION_V2,
    OP_ACCESS,
    OP_DEFAULT,
    OP_EVENT,
    OP_MOV,
    OP_OR2,
    OP_POP,
    OP_PUSH,
    OP_SET0,
    OP_STR,
    OP_SUMMARY,
    EVF_HAS_BT,
    EVF_HAS_RESULT,
    TraceFormatError,
    TraceReader,
    read_varint,
)


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous slice of a trace payload plus its start state."""

    index: int
    ustart: int  # uncompressed payload byte range [ustart, uend)
    uend: int
    #: v2: [seg_start, seg_end) into the trace's segment index;
    #: None for v1 shards (cut by payload scan, read as one blob).
    seg_start: Optional[int]
    seg_end: Optional[int]
    n_strings: int
    last_address: int
    next_serial: int
    records_before: int
    events_before: int
    accesses_before: int
    n_records: int
    n_events: int


@dataclass(frozen=True)
class PartitionPlan:
    """The full cut of one trace into replay shards."""

    digest: str
    version: int
    requested_shards: int
    shards: Tuple[ShardSpec, ...]
    #: Final interned string table; shard ``k`` seeds its decoder with
    #: ``strings[:shards[k].n_strings]``.
    strings: Tuple[str, ...]
    n_records: int
    n_events: int

    @property
    def n_shards(self) -> int:
        return len(self.shards)


@dataclass(frozen=True)
class _Candidate:
    """A cut-safe position: a record boundary with known decoder state."""

    pos: int
    seg_index: Optional[int]
    n_strings: int
    last_address: int
    next_serial: int
    records_before: int
    events_before: int
    accesses_before: int


def _skip_event(buf: bytes, pos: int) -> int:
    """Advance past one OP_EVENT body without materializing it."""
    flags, pos = read_varint(buf, pos)
    _, pos = read_varint(buf, pos)  # kind id
    _, pos = read_varint(buf, pos)  # tid
    _, pos = read_varint(buf, pos)  # frame serial
    n_ops, pos = read_varint(buf, pos)
    for _ in range(n_ops):
        _, pos = read_varint(buf, pos)
    if flags & EVF_HAS_RESULT:
        _, pos = read_varint(buf, pos)
    n_sizes, pos = read_varint(buf, pos)
    for _ in range(n_sizes):
        _, pos = read_varint(buf, pos)
    _, pos = read_varint(buf, pos)  # result size
    n_regs, pos = read_varint(buf, pos)
    for _ in range(n_regs):
        _, pos = read_varint(buf, pos)
    _, pos = read_varint(buf, pos)  # result reg id
    _, pos = read_varint(buf, pos)  # loc id
    if flags & EVF_HAS_BT:
        _, pos = read_varint(buf, pos)
    return pos


#: varint field counts for the fixed-shape opcodes the scan skips.
_SKIP_FIELDS = {
    OP_ACCESS: 2,
    OP_SET0: 2,
    OP_DEFAULT: 2,
    OP_OR2: 4,
    OP_MOV: 4,
    OP_PUSH: 2,
    OP_POP: 2,
    OP_SUMMARY: 6,
}


def _scan_v1(payload: bytes, checkpoint_every: int):
    """Skip-scan a v1 payload; returns (strings, candidates, totals).

    Candidates include the implicit start-of-payload checkpoint; every
    candidate is a record boundary (any record boundary is cut-safe —
    the snapshot fields fully describe the decoder state there).
    """
    from repro.trace.format import unzigzag

    strings: List[str] = []
    candidates: List[_Candidate] = []
    pos = 0
    end = len(payload)
    last_address = 0
    next_serial = 0
    n_records = 0
    n_events = 0
    n_accesses = 0
    since_checkpoint = checkpoint_every  # force a candidate at pos 0

    while pos < end:
        if since_checkpoint >= checkpoint_every:
            candidates.append(_Candidate(
                pos=pos, seg_index=None, n_strings=len(strings),
                last_address=last_address, next_serial=next_serial,
                records_before=n_records, events_before=n_events,
                accesses_before=n_accesses,
            ))
            since_checkpoint = 0
        op = payload[pos]
        pos += 1
        if op == OP_ACCESS:
            delta, pos = read_varint(payload, pos)
            _, pos = read_varint(payload, pos)
            last_address += unzigzag(delta)
            n_accesses += 1
            n_records += 1
            since_checkpoint += 1
        elif op == OP_EVENT:
            pos = _skip_event(payload, pos)
            n_events += 1
            n_records += 1
            since_checkpoint += 1
        elif op == OP_STR:
            length, pos = read_varint(payload, pos)
            strings.append(payload[pos:pos + length].decode("utf-8"))
            pos += length
        elif op in _SKIP_FIELDS:
            if op == OP_PUSH:
                next_serial += 1
            for _ in range(_SKIP_FIELDS[op]):
                _, pos = read_varint(payload, pos)
            n_records += 1
            since_checkpoint += 1
        else:
            raise TraceFormatError(f"unknown opcode {op} at offset {pos - 1}")

    totals = {"pos": pos, "n_records": n_records, "n_events": n_events,
              "n_accesses": n_accesses}
    return strings, candidates, totals


def _candidates_v2(meta: dict):
    """Segment-index cut candidates for a v2 trace (tail meta only)."""
    candidates = []
    pos = 0
    entries = meta["segments"]
    for index, entry in enumerate(entries):
        snapshot = entry["snapshot"]
        candidates.append(_Candidate(
            pos=pos, seg_index=index,
            n_strings=snapshot["n_strings"],
            last_address=snapshot["last_address"],
            next_serial=snapshot["next_serial"],
            records_before=snapshot["records_before"],
            events_before=snapshot["events_before"],
            accesses_before=snapshot["accesses_before"],
        ))
        pos += entry["ulen"]
    last = entries[-1]
    totals = {
        "pos": pos,
        "n_records": last["snapshot"]["records_before"] + last["n_records"],
        "n_events": last["snapshot"]["events_before"] + last["n_events"],
        "n_accesses": last["snapshot"]["accesses_before"] + last["n_accesses"],
    }
    return candidates, totals


def _choose_boundaries(candidates: Sequence[_Candidate], total_records: int,
                       shards: int) -> List[_Candidate]:
    """Pick up to ``shards - 1`` interior candidates balancing records."""
    interior = [c for c in candidates if c.pos > 0]
    chosen: List[_Candidate] = []
    for k in range(1, shards):
        target = total_records * k / shards
        best = None
        for candidate in interior:
            if chosen and candidate.pos <= chosen[-1].pos:
                continue
            distance = abs(candidate.records_before - target)
            if best is None or distance < best[0]:
                best = (distance, candidate)
        if best is None:
            break
        # Refuse boundaries that would create an empty leading shard.
        previous = chosen[-1] if chosen else candidates[0]
        if best[1].records_before <= previous.records_before:
            continue
        chosen.append(best[1])
    return chosen


def _build_plan(digest: str, version: int, shards: int,
                candidates: Sequence[_Candidate], totals: dict,
                strings: Sequence[str]) -> PartitionPlan:
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    boundaries = _choose_boundaries(candidates, totals["n_records"], shards)
    starts = [candidates[0]] + boundaries
    specs = []
    n_segments = 1 + (candidates[-1].seg_index or 0)
    for index, start in enumerate(starts):
        nxt = starts[index + 1] if index + 1 < len(starts) else None
        uend = nxt.pos if nxt else totals["pos"]
        records_end = nxt.records_before if nxt else totals["n_records"]
        events_end = nxt.events_before if nxt else totals["n_events"]
        if version == FORMAT_VERSION_V2:
            seg_start = start.seg_index
            seg_end = nxt.seg_index if nxt else n_segments
        else:
            seg_start = seg_end = None
        specs.append(ShardSpec(
            index=index,
            ustart=start.pos,
            uend=uend,
            seg_start=seg_start,
            seg_end=seg_end,
            n_strings=start.n_strings,
            last_address=start.last_address,
            next_serial=start.next_serial,
            records_before=start.records_before,
            events_before=start.events_before,
            accesses_before=start.accesses_before,
            n_records=records_end - start.records_before,
            n_events=events_end - start.events_before,
        ))
    return PartitionPlan(
        digest=digest,
        version=version,
        requested_shards=shards,
        shards=tuple(specs),
        strings=tuple(strings),
        n_records=totals["n_records"],
        n_events=totals["n_events"],
    )


def plan_partition(reader: TraceReader, shards: int,
                   checkpoint_every: int = 4096) -> PartitionPlan:
    """Plan a cut of an open trace (v1 or v2) into up to ``shards`` shards.

    v2 traces cut only at segment boundaries, so the effective shard
    count is capped by the segment count; v1 traces cut at scan
    checkpoints (every ``checkpoint_every`` records), which virtually
    always yields the requested count.
    """
    if reader.version == FORMAT_VERSION_V2:
        candidates, totals = _candidates_v2(reader.meta)
        strings = reader.meta["string_table"]
    else:
        strings, candidates, totals = _scan_v1(reader.payload, checkpoint_every)
    if totals["pos"] != len(reader.payload):
        raise TraceFormatError(
            f"planner scan consumed {totals['pos']} of "
            f"{len(reader.payload)} payload bytes"
        )
    return _build_plan(reader.digest, reader.version, shards,
                       candidates, totals, strings)


def plan_partition_meta(meta: dict, shards: int) -> PartitionPlan:
    """Plan from a v2 tail meta alone — no payload read.

    This is the serve-side path: the scheduler seek-reads the tail of a
    stored trace and decides shard ranges without inflating a byte.
    Raises :class:`TraceFormatError` for v1 metas (no segment index).
    """
    if meta.get("version") != FORMAT_VERSION_V2:
        raise TraceFormatError(
            "meta-only planning needs a v2 trace "
            f"(got version {meta.get('version')!r})"
        )
    candidates, totals = _candidates_v2(meta)
    return _build_plan(meta["digest"], FORMAT_VERSION_V2, shards,
                       candidates, totals, meta["string_table"])


__all__ = [
    "PartitionPlan",
    "ShardSpec",
    "plan_partition",
    "plan_partition_meta",
]
