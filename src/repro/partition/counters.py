"""Process-wide partitioned-replay counters.

A tiny module of its own so :mod:`repro.partition.runner` (which bumps
them) and the package ``__init__`` (which re-exports the read side)
never import-cycle.  Surfaced in ``serve stats`` under the
``partition`` subsystem namespace.
"""

from __future__ import annotations

import threading

_lock = threading.Lock()
_stats = {
    "plans": 0,
    "shards_planned": 0,
    "shards_executed": 0,
    "shard_failures": 0,
    "merges": 0,
    "merge_seconds": 0.0,
    "replays": 0,
    "fallbacks": 0,
}


def bump(name: str, amount=1) -> None:
    with _lock:
        _stats[name] += amount


def note_fallback() -> None:
    """Record one fallback-to-monolithic decision (callers own the retry)."""
    bump("fallbacks")


def partition_stats() -> dict:
    """Process-wide partitioned-replay counters (plans, shards, merges)."""
    with _lock:
        return dict(_stats)
