"""The settle loop: merge shard artifacts into one exact replay result.

``settle`` consumes :class:`~repro.partition.shard.ShardArtifact`\\ s in
segment order and runs the monolithic replay loop over their records —
the same handler dispatch, cost billing, shadow dataflow, frame/backtrace
bookkeeping, and cache interleaving as
:meth:`repro.trace.replayer.TraceReplayer.replay`, minus the decode work
(done in parallel by the shards) and minus records the shard filter
proved unobservable.  State *threads through* the artifacts: summary
counters accumulate into one profile, shadow-memory and metadata maps
mutate in segment order inside the attached analyses, and the cache
simulator carries across every cut point — which is what makes the
output bit-identical to a monolithic replay rather than approximately
merged.

Merge integrity: every artifact restates where it believes it sits in
the stream (record/event totals before it, the next frame serial).
``settle`` verifies each claim against the state it actually threaded;
any discrepancy — a shard decoded from a stale plan, artifacts out of
order, a perturbed pickle (the ``partition.merge.corrupt`` fault point
injects exactly this) — raises :class:`PartitionMergeError` before a
single wrong handler fires.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Optional, Sequence, Tuple

from repro import faultline
from repro.errors import VMError
from repro.trace.format import TraceFormatError
from repro.trace.replayer import (
    _HANDLER_DISPATCH_CYCLES,
    _SHADOW_PROP_CYCLES,
    R_ACCESS,
    R_DEFAULT,
    R_EVENT,
    R_MOV,
    R_OR2,
    R_POP,
    R_PUSH,
    R_SET0,
    ReplayVM,
    _materialize,
)
from repro.vm.cache import CacheConfig
from repro.vm.events import EventContext
from repro.vm.profile import Profile
from repro.vm.reporting import Reporter

from repro.partition.shard import ShardArtifact


class PartitionError(VMError):
    """Base class for partitioned-replay failures."""


class PartitionShardError(PartitionError):
    """A shard failed to decode (worker crash, corrupt segment, fault)."""


class PartitionMergeError(PartitionError):
    """Artifact continuity checks failed during the settle merge."""


def _check_continuity(artifact: ShardArtifact, expected_index: int,
                      records_seen: int, events_seen: int,
                      next_serial: int) -> None:
    if artifact.index != expected_index:
        raise PartitionMergeError(
            f"shard artifacts out of order: got index {artifact.index}, "
            f"expected {expected_index}"
        )
    if artifact.records_before != records_seen:
        raise PartitionMergeError(
            f"shard {artifact.index} claims {artifact.records_before} records "
            f"precede it but {records_seen} were settled"
        )
    if artifact.events_before != events_seen:
        raise PartitionMergeError(
            f"shard {artifact.index} claims {artifact.events_before} events "
            f"precede it but {events_seen} were settled"
        )
    if artifact.next_serial_before != next_serial:
        raise PartitionMergeError(
            f"shard {artifact.index} expects frame serial "
            f"{artifact.next_serial_before} but the settled stream is at "
            f"{next_serial}"
        )


def settle(
    artifacts: Iterable[ShardArtifact],
    analyses: Sequence[object],
    cache_config: Optional[CacheConfig] = None,
) -> Tuple[Profile, Reporter, dict]:
    """Fire shard artifacts through ``analyses``; returns (profile,
    reporter, merge stats).

    ``artifacts`` may be a generator — shards settle as they stream in,
    so decode (workers) and settle (here) overlap in wall-clock.
    """
    started = time.perf_counter()
    vm = ReplayVM(cache_config)
    attachables = [_materialize(source) for source in analyses]
    vm.track_shadow = any(a.needs_shadow for a in attachables)
    for attachable in attachables:
        attachable.attach(vm)

    hb = vm.hooks.before
    ha = vm.hooks.after
    profile = vm.profile
    cache_access = vm.cache.access
    track_shadow = vm.track_shadow
    count_event = profile.count_event
    bt_stacks = vm._bt_stacks

    #: serial -> (shadow dict, tid, contributed a backtrace entry)
    frames = {}
    next_serial = 0
    mem_cycles = 0
    records_seen = 0
    events_seen = 0
    saw_summary = False
    n_shards = 0
    per_shard = []

    for artifact in artifacts:
        if faultline.inject("partition.merge.corrupt"):
            # Model a corrupted artifact in flight: shift its claimed
            # stream position.  The continuity check below must catch it.
            artifact = dataclasses.replace(
                artifact, events_before=artifact.events_before + 1
            )
        _check_continuity(artifact, n_shards, records_seen, events_seen,
                          next_serial)
        if saw_summary:
            raise PartitionMergeError(
                f"shard {artifact.index} follows the summary record"
            )
        shard_started = time.perf_counter()
        handler_calls_before = profile.handler_calls

        for rec in artifact.records:
            tag = rec[0]

            if tag == R_ACCESS:
                mem_cycles += cache_access(rec[1], rec[2])

            elif tag == R_EVENT:
                kind = rec[2]
                callbacks = (ha if rec[1] else hb).get(kind)
                if callbacks:
                    # Flush program mem_cycles accumulated so far:
                    # handler bodies bill metadata traffic into the
                    # same profile.
                    profile.mem_cycles += mem_cycles
                    mem_cycles = 0
                    tid = rec[3]
                    context = EventContext(
                        vm,
                        kind,
                        tid,
                        rec[5],
                        rec[6],
                        frames[rec[4]][0],
                        rec[9],
                        rec[10],
                        rec[7],
                        rec[8],
                        rec[11],
                        rec[13],
                    )
                    vm._bt_top = rec[12]
                    vm._bt_tid = tid
                    for callback in callbacks:
                        profile.handler_calls += 1
                        profile.instr_cycles += getattr(
                            callback, "dispatch_cycles",
                            _HANDLER_DISPATCH_CYCLES,
                        )
                        count_event(kind)
                        callback(context)

            elif tag == R_OR2:
                if track_shadow:
                    shadow = frames[rec[1]][0]
                    meta = shadow.get(rec[3], 0) if rec[3] is not None else 0
                    if rec[4] is not None:
                        meta |= shadow.get(rec[4], 0)
                    shadow[rec[2]] = meta
                    profile.instr_cycles += _SHADOW_PROP_CYCLES

            elif tag == R_SET0:
                if track_shadow:
                    frames[rec[1]][0][rec[2]] = 0

            elif tag == R_DEFAULT:
                if track_shadow:
                    frames[rec[1]][0].setdefault(rec[2], 0)

            elif tag == R_MOV:
                if track_shadow:
                    value = 0
                    if rec[4] is not None:
                        value = frames[rec[3]][0].get(rec[4], 0)
                    frames[rec[1]][0][rec[2]] = value

            elif tag == R_PUSH:
                tid, entry = rec[1], rec[2]
                frames[next_serial] = ({}, tid, entry is not None)
                if entry is not None:
                    bt_stacks.setdefault(tid, []).append(entry)
                next_serial += 1

            elif tag == R_POP:
                _, _, has_entry = frames.pop(rec[1])
                if has_entry:
                    bt_stacks[rec[2]].pop()

            else:  # R_SUMMARY
                profile.base_cycles += rec[1]
                profile.instructions += rec[2]
                profile.heap_peak_bytes = rec[4]
                saw_summary = True

        records_seen += artifact.n_records
        events_seen += artifact.n_events
        if next_serial != artifact.next_serial_before + artifact.n_pushes:
            raise PartitionMergeError(
                f"shard {artifact.index} pushed "
                f"{next_serial - artifact.next_serial_before} frames, "
                f"claimed {artifact.n_pushes}"
            )
        n_shards += 1
        per_shard.append({
            "index": artifact.index,
            "n_records": artifact.n_records,
            "n_filtered": artifact.n_filtered,
            "handler_calls": profile.handler_calls - handler_calls_before,
            "settle_seconds": time.perf_counter() - shard_started,
        })

    if not saw_summary:
        raise TraceFormatError("trace has no summary record (truncated?)")
    profile.mem_cycles += mem_cycles
    profile.cache = vm.cache.stats
    stats = {
        "shards": n_shards,
        "records": records_seen,
        "events": events_seen,
        "merge_seconds": time.perf_counter() - started,
        "per_shard": per_shard,
    }
    return profile, vm.reporter, stats


__all__ = [
    "PartitionError",
    "PartitionMergeError",
    "PartitionShardError",
    "settle",
]
