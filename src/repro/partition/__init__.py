"""Partitioned trace replay: parallel decode, exact sequential settle.

One recorded trace is analyzed end-to-end by one VM today; on the
biggest workloads that binds serve/cluster throughput to single-core
speed.  This package splits a replay into shards along the v2 segment
index (or a planner scan of a v1 payload):

* :mod:`repro.partition.planner` — cut a v1 or v2 trace into N
  contiguous shards with balanced record counts, each carrying the
  decoder snapshot (string-table prefix, last access address, frame
  serial, running counters) needed to decode standalone;
* :mod:`repro.partition.shard` — the worker-side task: range-read and
  digest-verify only this shard's segments, decode them into resolved
  record tuples, and pre-filter records the requested analyses can
  never observe (events with no attached hook, shadow ops when no
  analysis needs shadow);
* :mod:`repro.partition.merge` — the settle loop: consume shard
  artifacts *in segment order*, threading frames, shadow registers,
  backtraces, the cache simulator, and the profile through exactly the
  monolithic replay semantics;
* :mod:`repro.partition.runner` — fan shards across a
  :class:`repro.exec.workers.PersistentWorkerPool` (or decode inline)
  and settle results as they stream back.

Why decode-parallel rather than replay-parallel: replayed cost
accounting is *globally* sequential — every access's cycle cost depends
on the cache-simulator state left by all prior program and metadata
accesses, and analysis state (shadow memory, locksets, vector clocks)
depends on every prior handler execution.  Decoding, by contrast, is
stateless given a segment snapshot, and measures 54–90% of monolithic
replay wall-clock across the bundled analyses.  Partitioned replay
therefore parallelizes decode + verification + filtering and keeps
handler execution sequential, which is what makes the headline
invariant cheap to guarantee: **partitioned output is bit-identical to
monolithic replay** for every workload × analysis spec (enforced by
``tests/partition/test_differential.py``).

Process-wide counters are exported through :func:`partition_stats` and
surface in ``serve stats`` under the ``partition`` subsystem namespace.
"""

from __future__ import annotations

from repro.partition.counters import note_fallback, partition_stats
from repro.partition.merge import (
    PartitionError,
    PartitionMergeError,
    PartitionShardError,
)
from repro.partition.planner import PartitionPlan, ShardSpec, plan_partition
from repro.partition.runner import replay_partitioned


__all__ = [
    "PartitionError",
    "PartitionMergeError",
    "PartitionShardError",
    "PartitionPlan",
    "ShardSpec",
    "partition_stats",
    "note_fallback",
    "plan_partition",
    "replay_partitioned",
]
