"""Worker-process task for the analysis daemon.

Runs inside :class:`repro.exec.workers.PersistentWorkerPool` workers.
Everything expensive is memoized per process and the processes are
long-lived, so a warm worker answers a request with zero compile or
decode cost:

* :func:`repro.exec.pool.build_analysis` keeps each analysis compiled
  once per worker for the pool's lifetime;
* the replayer cache below keeps recently used traces decoded, keyed by
  payload digest (content-addressed, so never stale).
"""

from __future__ import annotations

import functools
import os
import time

from repro import faultline
from repro.exec.pool import analysis_fingerprint, build_analysis
from repro.trace.replayer import TraceReplayer
from repro.trace.store import TraceStore

#: dotted task path for PersistentWorkerPool submission
REPLAY_DIGEST_TASK = "repro.serve.tasks:replay_digest"


@functools.lru_cache(maxsize=8)
def _replayer(root: str, digest: str) -> TraceReplayer:
    store = TraceStore(root)
    return TraceReplayer(store.open_by_digest(digest))


def replay_digest(payload: dict) -> dict:
    """Replay one ingested trace through one analysis; cache the result.

    ``payload``: ``{"root": store dir, "digest": trace payload digest,
    "spec": analysis registry key}``.  Returns the result-cache record —
    the same dict a concurrent request for the same key would read from
    disk — including ``baseline_cycles`` so digest-only clients need no
    local copy of the trace.
    """
    root, digest, spec = payload["root"], payload["digest"], payload["spec"]
    # Fault points for the chaos suite: simulate a worker dying or
    # wedging mid-job.  No-ops unless a FaultPlan is installed; the
    # server's degraded-mode inline runner suppresses both (a "worker"
    # crash must never execute in the server process).
    if faultline.inject("worker.crash.midjob"):
        os._exit(23)
    if faultline.inject("worker.hang"):
        while True:
            time.sleep(3600)
    store = TraceStore(root)
    replayer = _replayer(root, digest)
    summary = replayer.trace.summary

    key = TraceStore.result_key(digest, analysis_fingerprint(spec))
    started = time.perf_counter()
    profile, reporter = replayer.replay([build_analysis(spec)])
    wall = time.perf_counter() - started
    record = {
        "spec": spec,
        "trace_digest": digest,
        "workload": replayer.trace.meta.get("workload"),
        "scale": replayer.trace.meta.get("scale"),
        "baseline_cycles": summary["plain_cycles"],
        "instrumented_cycles": profile.cycles,
        "metadata_bytes": profile.metadata_bytes,
        "n_reports": len(list(reporter)),
        "wall_seconds": wall,
    }
    store.store_result(key, record)
    return record
