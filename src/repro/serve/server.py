"""The analysis daemon: an asyncio TCP server over warm replay workers.

``python -m repro.serve --port P --workers N`` starts one.  Clients
(:mod:`repro.serve.client`) submit a recorded trace — or just its
digest, for cache lookups — plus an analysis-registry key, and receive
the replay cost summary over the length-prefixed protocol of
:mod:`repro.serve.protocol`.

Request path, in order:

1. frame decode (read timeout guards slow-loris clients; an oversized
   declared length is rejected before its body is read);
2. spec validation against :data:`repro.exec.pool.ANALYSIS_SPECS`;
3. trace ingest (atomic, content-addressed by payload digest) when the
   request carries bytes;
4. result-cache lookup on ``(trace digest, analysis fingerprint)`` —
   entries are digest-verified on read, corrupt ones quarantined;
5. on miss: bounded admission (``BUSY`` when full), single-flight dedup,
   then a warm :class:`~repro.exec.workers.PersistentWorkerPool` worker
   replays the trace — analyses stay compiled across requests, and a
   crashed or hung worker fails only its own request and is respawned;
6. per-request timeout with the replay left running (its result still
   lands in the cache).

Failure posture: worker crashes/hangs trip the scheduler's circuit
breaker, after which replays run *inline* in the server process
(``degraded`` in stats) until the pool proves healthy again.  A stored
trace that fails digest verification is quarantined and reported as
``UNKNOWN_TRACE`` so the client re-uploads it.  With ``workers=0`` the
server runs in permanent inline mode — slower, but correct.

SIGTERM/SIGINT drain gracefully: new requests get ``SHUTTING_DOWN``,
in-flight replays get a grace period to finish.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket as socketlib
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro import faultline
from repro.exec.pool import ANALYSIS_SPECS, analysis_fingerprint
from repro.exec.workers import PersistentWorkerPool, TaskError, WorkerCrashError
from repro.trace.format import TraceFormatError, TraceReader
from repro.trace.store import StoreCorruptionError, TraceStore, integrity_stats

from repro.serve import protocol
from repro.serve.config import ResilienceConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import BusyError, ReplayScheduler


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port (reported by AnalysisServer.port)
    #: replay worker processes; 0 runs every replay inline in the server
    #: process (degraded but available — useful where fork/spawn is not)
    workers: int = 2
    #: max distinct replays admitted (queued + running) before BUSY;
    #: None -> 4 slots per worker (min 4, so workers=0 still admits)
    queue_capacity: Optional[int] = None
    #: trace/result cache directory; None -> private temp dir
    store_root: Optional[str] = None
    #: per-frame read deadline (slow-loris defense)
    read_timeout: float = 10.0
    #: default per-request replay deadline (client may ask for less)
    request_timeout: float = 120.0
    max_frame: int = protocol.MAX_FRAME_BYTES
    #: how long SIGTERM waits for in-flight replays
    drain_grace: float = 15.0
    #: shard big-trace replays across the worker pool when the server is
    #: otherwise idle (docs/PARTITION.md); 1 disables partitioned replay
    partition_shards: int = 1
    #: minimum recorded trace records before partitioning is worth the
    #: fan-out (smaller traces replay monolithically regardless)
    partition_min_records: int = 50_000
    #: retry/breaker/watchdog knobs (shared with clients and the pool)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    def resolved_capacity(self) -> int:
        if self.queue_capacity:
            return self.queue_capacity
        return max(4, self.workers * 4)


class AnalysisServer:
    """One daemon instance; start/stop from asyncio, or via serve_in_thread."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.metrics = MetricsRegistry()
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        root = self.config.store_root
        if root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="alda-serve-")
            root = self._tempdir.name
        self.store = TraceStore(root)
        self.pool: Optional[PersistentWorkerPool] = None
        self.scheduler: Optional[ReplayScheduler] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._draining = False
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        resilience = self.config.resilience
        if self.config.workers > 0:
            self.pool = PersistentWorkerPool(
                self.config.workers,
                heartbeat_interval=resilience.heartbeat_interval,
                hang_timeout=resilience.hang_timeout,
                reaper_interval=resilience.reaper_interval,
                respawn_window=resilience.respawn_window,
                max_respawns_per_window=resilience.max_respawns_per_window,
            )
        self.scheduler = ReplayScheduler(
            self.pool, self.config.resolved_capacity(), self.metrics,
            resilience=resilience,
            partition_shards=self.config.partition_shards,
            partition_min_records=self.config.partition_min_records,
        )
        if self.pool is not None:
            self.metrics.gauge("workers_alive").set(self.pool.alive_workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.config.host}:{self.port}"

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown())
                )

    async def serve_until_stopped(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new work, let in-flight replays finish."""
        if self._draining:
            return
        self._draining = True
        self.metrics.gauge("draining").set(1)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.scheduler is not None:
            await self.scheduler.drain(self.config.drain_grace)
            self.scheduler.close()
        for conn_writer in list(self._connections):
            with contextlib.suppress(Exception):
                conn_writer.close()
        await asyncio.sleep(0)  # let connection handlers observe the close
        if self._tempdir is not None:
            with contextlib.suppress(OSError):
                self._tempdir.cleanup()
        self._stopped.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(
                        protocol.read_frame(reader, self.config.max_frame),
                        self.config.read_timeout,
                    )
                except asyncio.TimeoutError:
                    self.metrics.counter("read_timeouts").inc()
                    break
                except protocol.FrameTooLarge:
                    self.metrics.counter("bad_frames").inc()
                    self._send_error(writer, "FRAME_TOO_LARGE",
                                     "declared frame length exceeds limit")
                    await writer.drain()
                    break
                except protocol.ProtocolError as exc:
                    self.metrics.counter("bad_frames").inc()
                    self._send_error(writer, "BAD_FRAME", str(exc))
                    await writer.drain()
                    break
                if frame is None:
                    break  # clean EOF
                frame_type, body = frame
                if frame_type == protocol.PING:
                    protocol.write_frame(writer, protocol.PONG)
                elif frame_type == protocol.STATS_REQUEST:
                    writer.write(protocol.encode_json_frame(
                        protocol.STATS, self.snapshot()
                    ))
                elif frame_type == protocol.REQUEST:
                    if faultline.inject("serve.conn.reset"):
                        # Chaos: drop the connection mid-request, the
                        # way a proxy restart or a peer RST would.
                        self.metrics.counter("faults_conn_reset").inc()
                        with contextlib.suppress(Exception):
                            # shutdown() tears down the *connection*, not
                            # just this process's fd — the peer sees the
                            # reset even if a forked worker holds a
                            # leaked duplicate of the socket.
                            sock = writer.get_extra_info("socket")
                            if sock is not None:
                                sock.shutdown(socketlib.SHUT_RDWR)
                        with contextlib.suppress(Exception):
                            writer.transport.abort()
                        break
                    try:
                        await self._handle_request(writer, body)
                    except (ConnectionResetError, BrokenPipeError):
                        raise
                    except Exception as exc:  # noqa: BLE001 - fail the
                        # request, keep the connection and server alive
                        self._send_error(writer, "INTERNAL",
                                         f"{type(exc).__name__}: {exc}")
                elif frame_type == protocol.PUT_TRACE:
                    try:
                        await self._handle_put_trace(writer, body)
                    except (ConnectionResetError, BrokenPipeError):
                        raise
                    except Exception as exc:  # noqa: BLE001
                        self._send_error(writer, "INTERNAL",
                                         f"{type(exc).__name__}: {exc}")
                elif frame_type == protocol.PUT_RESULT:
                    try:
                        await self._handle_put_result(writer, body)
                    except (ConnectionResetError, BrokenPipeError):
                        raise
                    except Exception as exc:  # noqa: BLE001
                        self._send_error(writer, "INTERNAL",
                                         f"{type(exc).__name__}: {exc}")
                elif frame_type == protocol.SHUTDOWN:
                    protocol.write_frame(writer, protocol.PONG)
                    await writer.drain()
                    asyncio.ensure_future(self.shutdown())
                    break
                else:
                    self.metrics.counter("bad_frames").inc()
                    self._send_error(writer, "BAD_FRAME",
                                     f"unexpected frame type {frame_type}")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            return  # loop teardown: exit quietly, socket dies with the loop
        finally:
            self._connections.discard(writer)
            # No await here: this finally also runs under task
            # cancellation at loop teardown, where awaiting would
            # re-raise and spam the loop's exception handler.
            with contextlib.suppress(Exception):
                writer.close()

    def _send_error(self, writer, code: str, message: str) -> None:
        writer.write(protocol.encode_json_frame(
            protocol.ERROR, {"code": code, "message": message}
        ))
        self.metrics.counter("errors_total").inc()

    def _send_busy(self, writer, queue_depth: int, capacity: int) -> None:
        writer.write(protocol.encode_json_frame(
            protocol.BUSY,
            {"queue_depth": queue_depth, "capacity": capacity},
        ))

    # -- request pipeline ----------------------------------------------
    async def _handle_request(self, writer, body: bytes) -> None:
        started = time.perf_counter()
        self.metrics.counter("requests_total").inc()
        try:
            request = protocol.decode_request(body)
        except protocol.ProtocolError as exc:
            self.metrics.counter("bad_frames").inc()
            self._send_error(writer, "BAD_FRAME", str(exc))
            return
        if self._draining:
            self._send_error(writer, "SHUTTING_DOWN", "server is draining")
            return
        if faultline.inject("serve.busy"):
            # Chaos: synthetic backpressure, indistinguishable from a
            # genuinely full admission queue.
            self.metrics.counter("faults_busy").inc()
            self.metrics.counter("busy_total").inc()
            capacity = self.config.resolved_capacity()
            self._send_busy(writer, capacity, capacity)
            return
        if request.spec not in ANALYSIS_SPECS:
            self._send_error(
                writer, "UNKNOWN_SPEC",
                f"unknown analysis spec {request.spec!r}; "
                f"known: {sorted(ANALYSIS_SPECS)}",
            )
            return
        if request.digest is not None:
            try:
                self.store.digest_path(request.digest)
            except ValueError as exc:
                self._send_error(writer, "BAD_FRAME", str(exc))
                return

        loop = asyncio.get_running_loop()
        if request.trace_bytes:
            try:
                reader = await loop.run_in_executor(
                    None, self.store.ingest, request.trace_bytes
                )
            except TraceFormatError as exc:
                self._send_error(writer, "BAD_TRACE", str(exc))
                return
            digest = reader.digest
            self.metrics.counter("traces_ingested").inc()
        else:
            digest = request.digest

        # The fingerprint builds the analysis on first use (lru-cached);
        # keep that compile off the event loop.
        fingerprint = await loop.run_in_executor(
            None, analysis_fingerprint, request.spec
        )
        key = TraceStore.result_key(digest, fingerprint)

        cached = self.store.load_result(key)
        if cached is not None:
            self.metrics.counter("cache_hits").inc()
            if cached.get("baseline_cycles") is None:
                cached = dict(cached)
                cached["baseline_cycles"] = self._baseline_from_trace(digest)
            self._send_result(writer, cached, started, cached_hit=True,
                              single_flight=False)
            return
        self.metrics.counter("cache_misses").inc()

        if self.store.find_by_digest(digest) is None:
            self._send_error(
                writer, "UNKNOWN_TRACE",
                f"no ingested trace with digest {digest}; "
                "submit the trace bytes once first",
            )
            return

        payload = {"root": str(self.store.root), "digest": digest,
                   "spec": request.spec}
        try:
            task, joined = self.scheduler.submit(key, payload)
        except BusyError as exc:
            self._send_busy(writer, exc.queue_depth, exc.capacity)
            return

        timeout = self.config.request_timeout
        if request.timeout is not None:
            timeout = min(timeout, request.timeout)
        try:
            record = await asyncio.wait_for(asyncio.shield(task), timeout)
        except asyncio.TimeoutError:
            self.metrics.counter("request_timeouts").inc()
            self._send_error(
                writer, "TIMEOUT",
                f"replay exceeded {timeout:.1f}s (still running; its result "
                "will be cached)",
            )
            return
        except StoreCorruptionError as exc:
            # Inline replay hit a corrupt stored trace; it is now
            # quarantined, so a re-upload from the client repairs it.
            self._report_corruption(writer, digest, str(exc))
            return
        except WorkerCrashError as exc:
            self.metrics.counter("worker_crashes").inc()
            self._send_error(writer, "WORKER_CRASH", str(exc))
            return
        except TaskError as exc:
            message = str(exc).splitlines()[0]
            if "StoreCorruptionError" in message:
                # Same corruption, detected inside a pool worker and
                # serialized across the pipe as a TaskError.
                self._report_corruption(writer, digest, message)
                return
            self._send_error(writer, "ANALYSIS_ERROR", message)
            return
        self._send_result(writer, record, started, cached_hit=False,
                          single_flight=joined)

    # -- replication (repro.cluster write path) ------------------------
    async def _handle_put_trace(self, writer, body: bytes) -> None:
        """Ingest replicated trace bytes without scheduling a replay."""
        if self._draining:
            self._send_error(writer, "SHUTTING_DOWN", "server is draining")
            return
        if not body:
            self._send_error(writer, "BAD_TRACE", "PUT_TRACE carries no bytes")
            return
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.store.ingest, body)
        except TraceFormatError as exc:
            self._send_error(writer, "BAD_TRACE", str(exc))
            return
        self.metrics.counter("traces_replicated_in").inc()
        protocol.write_frame(writer, protocol.PONG)

    async def _handle_put_result(self, writer, body: bytes) -> None:
        """Store a replay record computed by a peer shard.

        The record is cached under the same ``(digest, fingerprint)``
        key a local replay would produce, so a later digest-only request
        is a cache hit with no replay.  Validation is structural (known
        spec, well-formed digest, the cost fields a RESULT must carry);
        the record's *numbers* are trusted — replicas are peers, and the
        chaos suite holds the correct-or-typed invariant across them.
        """
        if self._draining:
            self._send_error(writer, "SHUTTING_DOWN", "server is draining")
            return
        try:
            digest, spec, record = protocol.decode_put_result(body)
        except protocol.ProtocolError as exc:
            self._send_error(writer, "BAD_RESULT", str(exc))
            return
        if spec not in ANALYSIS_SPECS:
            self._send_error(
                writer, "UNKNOWN_SPEC",
                f"unknown analysis spec {spec!r}; "
                f"known: {sorted(ANALYSIS_SPECS)}",
            )
            return
        try:
            self.store.digest_path(digest)
        except ValueError as exc:
            self._send_error(writer, "BAD_RESULT", str(exc))
            return
        missing = [name for name in ("instrumented_cycles", "metadata_bytes",
                                     "n_reports")
                   if name not in record]
        if missing:
            self._send_error(writer, "BAD_RESULT",
                             f"record misses required fields {missing}")
            return
        loop = asyncio.get_running_loop()
        fingerprint = await loop.run_in_executor(
            None, analysis_fingerprint, spec
        )
        key = TraceStore.result_key(digest, fingerprint)
        await loop.run_in_executor(None, self.store.store_result, key, record)
        self.metrics.counter("results_replicated_in").inc()
        protocol.write_frame(writer, protocol.PONG)

    def _report_corruption(self, writer, digest: str, detail: str) -> None:
        self.metrics.counter("store_corruptions").inc()
        self._send_error(
            writer, "UNKNOWN_TRACE",
            f"stored trace {digest} failed verification and was "
            f"quarantined; re-submit the trace bytes ({detail})",
        )

    def _baseline_from_trace(self, digest: str) -> Optional[int]:
        path = self.store.find_by_digest(digest)
        if path is None:
            return None
        try:
            return TraceReader.read_meta(path)["summary"]["plain_cycles"]
        except (OSError, KeyError, TraceFormatError):
            return None

    def _send_result(self, writer, record: dict, started: float,
                     cached_hit: bool, single_flight: bool) -> None:
        wall_ms = (time.perf_counter() - started) * 1000.0
        latency = "latency_cached_ms" if cached_hit else "latency_replay_ms"
        self.metrics.histogram("request_latency_ms").observe(wall_ms)
        self.metrics.histogram(latency).observe(wall_ms)
        self.metrics.counter("results_total").inc()
        writer.write(protocol.encode_json_frame(protocol.RESULT, {
            "result": record,
            "cached": cached_hit,
            "single_flight": single_flight,
            "wall_ms": wall_ms,
        }))

    # -- stats ----------------------------------------------------------
    def health(self) -> dict:
        """Pool / breaker / fault-injection / store-integrity posture."""
        report = {
            "degraded": (self.scheduler.degraded
                         if self.scheduler is not None else False),
            "faultline": faultline.stats(),
            "store": {
                **integrity_stats(),
                "quarantined": len(self.store.quarantined_entries()),
            },
        }
        if self.scheduler is not None:
            report.update(self.scheduler.health())
        return report

    def snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        # Per-subsystem in-process counters, namespaced in one block:
        # the VM closure-compilation cache (repro.vm.compile) and the
        # instrumentation-elision pass (repro.staticpass).  They cover
        # embedded servers and any recording done in this process; pool
        # workers keep their own caches warm.
        from repro.fuzz import fuzz_stats
        from repro.partition import partition_stats
        from repro.staticpass import staticpass_stats
        from repro.vm.bytecode import bytecode_cache_stats
        from repro.vm.compile import compile_cache_stats

        compile_cache = compile_cache_stats()
        snap["subsystems"] = {
            "vm.compile": compile_cache,
            "vm.compile.bytecode": bytecode_cache_stats(),
            "staticpass": staticpass_stats(),
            "partition": partition_stats(),
            "fuzz": fuzz_stats(),
        }
        # Legacy alias, predates the namespaced block.
        snap["compile_cache"] = compile_cache
        if self.pool is not None:
            snap["gauges"]["workers_alive"] = self.pool.alive_workers
            snap["gauges"]["worker_restarts"] = self.pool.restarts
        if self.scheduler is not None:
            snap["gauges"]["admitted"] = self.scheduler.admitted
        snap["health"] = self.health()
        snap["config"] = {
            "workers": self.config.workers,
            "queue_capacity": self.config.resolved_capacity(),
            "read_timeout": self.config.read_timeout,
            "request_timeout": self.config.request_timeout,
            "store_root": str(self.store.root),
            "partition_shards": self.config.partition_shards,
            "partition_min_records": self.config.partition_min_records,
            "resilience": self.config.resilience.to_dict(),
        }
        return snap


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
class ServerHandle:
    """A server running on a background thread (tests, smoke checks)."""

    def __init__(self, server: AnalysisServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> str:
        return self.server.address

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            ).result(timeout)
            self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(config: Optional[ServeConfig] = None,
                    start_timeout: float = 30.0) -> ServerHandle:
    """Start an AnalysisServer on a daemon thread; returns when listening."""
    config = config or ServeConfig()
    started = threading.Event()
    box: dict = {}

    def runner() -> None:
        async def main() -> None:
            server = AnalysisServer(config)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 - surface to starter
            box["error"] = exc
            started.set()

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise RuntimeError("serve thread failed to start in time")
    if "error" in box:
        raise RuntimeError(f"serve thread failed: {box['error']}")
    return ServerHandle(box["server"], box["loop"], thread)


async def run_server(config: ServeConfig) -> None:
    """CLI entry: start, install signal handlers, serve until drained."""
    server = AnalysisServer(config)
    await server.start()
    server.install_signal_handlers()
    mode = (f"{config.workers} workers" if config.workers
            else "inline (degraded) mode, 0 workers")
    print(f"repro.serve listening on {server.address} "
          f"({mode}, "
          f"queue capacity {config.resolved_capacity()}, "
          f"store {server.store.root})", flush=True)
    await server.serve_until_stopped()
    print("repro.serve drained and stopped", flush=True)
