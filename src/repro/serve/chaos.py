"""Chaos harness: drive a live daemon through injected faults.

:func:`run_chaos` is the executable form of the resilience contract:

* record a workload trace and compute its reference replay result
  *before* any fault is armed;
* install a seeded :class:`~repro.faultline.FaultPlan` (API + the
  ``REPRO_FAULTLINE`` env var, so spawned pool workers inherit it);
* hammer a freshly started server from concurrent resilient clients;
* classify every request: **bit-correct result**, **typed error**, or —
  the one outcome that must never happen — **wrong result**;
* finally check the server still answers ping/stats and drains cleanly.

The invariant a chaos run asserts is *correct or typed, never wrong*:
faults may cost availability (a request may exhaust its retries and
surface a typed error) but never integrity (a request that returns a
RESULT returns the same numbers a fault-free run would).

Reproducibility: the fault schedule derives entirely from the plan
seed, and client retry jitter from ``seed`` — a failing run is re-run
from two integers.

CLI::

    python -m repro.serve chaos --seed 7 --requests 40 \\
        --fault worker.crash.midjob=0.3 --fault serve.busy=0.2
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from repro import faultline
from repro.faultline import FaultPlan, FaultSpec
from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServerBusy,
)
from repro.serve.config import ResilienceConfig
from repro.serve.server import ServeConfig, serve_in_thread

#: Result fields that must be bit-identical to the reference replay.
#: (wall_seconds is a measurement, not a result.)
DETERMINISTIC_FIELDS = (
    "baseline_cycles", "instrumented_cycles", "metadata_bytes", "n_reports",
)

#: Fast-test resilience posture: tight watchdog, quick breaker reset,
#: generous attempts — chaos runs finish in seconds, not minutes.
CHAOS_RESILIENCE = ResilienceConfig(
    max_attempts=8,
    backoff_base=0.02,
    backoff_max=0.25,
    retry_budget=20.0,
    breaker_threshold=4,
    breaker_reset=0.5,
    heartbeat_interval=0.2,
    hang_timeout=5.0,
    reaper_interval=0.5,
)


@dataclass
class ChaosReport:
    """Outcome classification for one chaos run."""

    seed: int
    requests: int
    ok: int = 0
    wrong_results: List[dict] = field(default_factory=list)
    typed_errors: Dict[str, int] = field(default_factory=dict)
    unavailable: int = 0  # retries exhausted / busy / breaker open
    wall_seconds: float = 0.0
    server_survived: bool = False
    drained: bool = False
    health: Optional[dict] = None
    plan_stats: Optional[dict] = None

    @property
    def answered(self) -> int:
        return self.ok + self.unavailable + sum(self.typed_errors.values())

    @property
    def invariant_ok(self) -> bool:
        """Correct-or-typed-never-wrong, and the server outlived the storm."""
        return (not self.wrong_results
                and self.answered == self.requests
                and self.server_survived
                and self.drained)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "requests": self.requests,
            "ok": self.ok,
            "wrong_results": len(self.wrong_results),
            "typed_errors": dict(sorted(self.typed_errors.items())),
            "unavailable": self.unavailable,
            "wall_seconds": self.wall_seconds,
            "server_survived": self.server_survived,
            "drained": self.drained,
            "invariant_ok": self.invariant_ok,
            "plan_stats": self.plan_stats,
        }


def reference_result(store, workload_name: str, scale: int, spec: str) -> dict:
    """Fault-free replay of (workload, scale, spec); the ground truth."""
    from repro.exec.pool import analysis_fingerprint
    from repro.serve.tasks import replay_digest
    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    assert faultline.active_plan() is None, \
        "reference must be computed before the fault plan is installed"
    workload = ALL[workload_name]
    reader = store.get_or_record(workload, scale)
    # replay_digest resolves traces through the by-digest/ namespace
    # (the daemon's ingest path), so mirror the recording there.
    store.ingest(store.trace_path(workload, scale).read_bytes())
    record = replay_digest({
        "root": str(store.root), "digest": reader.digest, "spec": spec,
    })
    # Drop the reference from the result cache: chaos requests must
    # exercise the replay path, not hit a pre-warmed entry.
    key = TraceStore.result_key(reader.digest, analysis_fingerprint(spec))
    cache_path = store._result_path(key)
    if cache_path.exists():
        cache_path.unlink()
    return record


def run_chaos(
    seed: int,
    points: Mapping[str, Union[FaultSpec, float]],
    requests: int = 24,
    concurrency: int = 3,
    workers: int = 2,
    workload: str = "fft",
    scale: int = 1,
    spec: str = "eraser.full",
    resilience: ResilienceConfig = CHAOS_RESILIENCE,
    use_env: bool = True,
    client_timeout: float = 30.0,
) -> ChaosReport:
    """One seeded chaos run against a private server; returns the report.

    ``points`` maps fault-point names to probabilities or
    :class:`FaultSpec` schedules.  The server, its store, and the fault
    plan live and die inside this call; global faultline state is
    restored on exit.
    """
    import tempfile

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    report = ChaosReport(seed=seed, requests=requests)
    plan = FaultPlan(seed=seed, points=points)
    previous_env = os.environ.get(faultline.ENV_VAR)

    with tempfile.TemporaryDirectory(prefix="alda-chaos-") as tmp:
        store = TraceStore(tmp)
        reference = reference_result(store, workload, scale, spec)
        expected = {name: reference[name] for name in DETERMINISTIC_FIELDS}
        trace_bytes = store.trace_path(ALL[workload], scale).read_bytes()
        digest = store.get_or_record(ALL[workload], scale).digest

        try:
            if use_env:
                os.environ[faultline.ENV_VAR] = plan.to_env()
            faultline.install(plan)

            config = ServeConfig(workers=workers, store_root=tmp,
                                 request_timeout=60.0,
                                 resilience=resilience)
            handle = serve_in_thread(config)
            lock = threading.Lock()
            counter = {"next": 0}
            started = time.perf_counter()

            def claim() -> Optional[int]:
                with lock:
                    if counter["next"] >= requests:
                        return None
                    counter["next"] += 1
                    return counter["next"] - 1

            def client_loop(worker_index: int) -> None:
                client = ServeClient(
                    handle.address, timeout=client_timeout,
                    resilience=resilience, retry_seed=seed + worker_index,
                )
                with client:
                    while True:
                        if claim() is None:
                            return
                        try:
                            response = client.submit_digest_first(
                                spec, digest, trace_bytes
                            )
                        except (ServerBusy, RetriesExhausted,
                                CircuitOpenError):
                            with lock:
                                report.unavailable += 1
                            continue
                        except RequestFailed as exc:
                            with lock:
                                code = exc.code or "UNKNOWN"
                                report.typed_errors[code] = (
                                    report.typed_errors.get(code, 0) + 1
                                )
                            continue
                        except OSError as exc:
                            with lock:
                                code = f"transport:{type(exc).__name__}"
                                report.typed_errors[code] = (
                                    report.typed_errors.get(code, 0) + 1
                                )
                            continue
                        record = response["result"]
                        got = {name: record.get(name)
                               for name in DETERMINISTIC_FIELDS}
                        with lock:
                            if got == expected:
                                report.ok += 1
                            else:
                                report.wrong_results.append(
                                    {"expected": expected, "got": got}
                                )

            threads = [
                threading.Thread(target=client_loop, args=(i,),
                                 name=f"chaos-client-{i}", daemon=True)
                for i in range(max(1, concurrency))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report.wall_seconds = time.perf_counter() - started

            # The server must have outlived the storm: answer a clean
            # ping and a stats request, then drain without leftovers.
            with ServeClient(handle.address, timeout=30.0) as probe:
                report.server_survived = probe.ping()
                snap = probe.stats()
                report.health = snap.get("health")
            handle.stop(timeout=30.0)
            report.drained = True
        finally:
            faultline.clear()
            if use_env:
                if previous_env is None:
                    os.environ.pop(faultline.ENV_VAR, None)
                else:
                    os.environ[faultline.ENV_VAR] = previous_env
            report.plan_stats = plan.stats()

    return report


def render_report(report: ChaosReport) -> str:
    lines = [
        f"chaos seed={report.seed}: {report.ok}/{report.requests} bit-correct, "
        f"{report.unavailable} unavailable (typed), "
        f"{sum(report.typed_errors.values())} typed errors, "
        f"{len(report.wrong_results)} WRONG results "
        f"in {report.wall_seconds:.2f}s",
    ]
    for code, count in sorted(report.typed_errors.items()):
        lines.append(f"  error {code}: {count}")
    if report.plan_stats:
        fires = report.plan_stats.get("fires", {})
        lines.append(
            "  faults fired: "
            + (", ".join(f"{point}={count}"
                         for point, count in sorted(fires.items()))
               or "none")
        )
    lines.append(
        f"  server survived: {report.server_survived}, "
        f"drained: {report.drained}, "
        f"invariant: {'OK' if report.invariant_ok else 'VIOLATED'}"
    )
    return "\n".join(lines)
