"""Analysis-as-a-service: a resident daemon over the record/replay core.

One-shot CLI runs pay analysis compile and worker spin-up on every
invocation.  ``repro.serve`` keeps those costs resident: an asyncio TCP
daemon accepts recorded traces (or just their digests) over a
length-prefixed binary protocol, replays them through warm worker
processes that keep analyses compiled across requests, dedupes
concurrent identical work (single-flight), caches results on disk, and
answers repeats in microseconds — turning ALDA analyses into a
queryable service rather than a batch script.

Modules:

* :mod:`repro.serve.protocol` — wire format (frames, error codes);
* :mod:`repro.serve.server` — the daemon: admission control with
  explicit ``BUSY`` backpressure, per-request timeouts, graceful drain;
* :mod:`repro.serve.scheduler` — bounded admission + single-flight +
  degraded-mode inline dispatch behind a circuit breaker;
* :mod:`repro.serve.tasks` — the worker-side replay task;
* :mod:`repro.serve.metrics` — counters/gauges/latency histograms,
  served via ``STATS`` frames;
* :mod:`repro.serve.client` — blocking client (retry/backoff + circuit
  breaker) + the harness adapter behind
  ``python -m repro.harness figN --server HOST:PORT``;
* :mod:`repro.serve.config` — :class:`ResilienceConfig`, every
  retry/backoff/watchdog/breaker knob in one dataclass;
* :mod:`repro.serve.resilience` — the retry-policy and circuit-breaker
  machines themselves;
* :mod:`repro.serve.chaos` — seeded fault-injection runs
  (``python -m repro.serve chaos``), asserting bit-correct-or-typed;
* :mod:`repro.serve.loadgen` — load generator
  (``python -m repro.serve loadgen``).

See ``docs/SERVING.md`` for the protocol and semantics reference, and
``docs/RESILIENCE.md`` for the failure model.
"""

from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServeError,
    ServerBusy,
    run_jobs,
)
from repro.serve.config import ResilienceConfig
from repro.serve.resilience import CircuitBreaker, RetryPolicy
from repro.serve.server import (
    AnalysisServer,
    ServeConfig,
    ServerHandle,
    serve_in_thread,
)

__all__ = [
    "AnalysisServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "RequestFailed",
    "ResilienceConfig",
    "RetriesExhausted",
    "RetryPolicy",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerBusy",
    "ServerHandle",
    "run_jobs",
    "serve_in_thread",
]
