"""Length-prefixed binary wire protocol for the analysis daemon.

Every message is one *frame*::

    +-----------------------------+
    | u32 BE body length          |
    | u8  frame type              |
    | body (length - 1 bytes)     |
    +-----------------------------+

Request frames (client -> server):

=============  ==========================================================
``REQUEST``    submit one replay: ``u32 BE header length`` + UTF-8 JSON
               header + raw trace bytes (may be empty for digest-only /
               cache lookups).  Header keys: ``spec`` (analysis registry
               key, required), ``digest`` (trace payload digest, required
               when no trace bytes follow), ``timeout`` (seconds,
               optional, capped by the server).
``STATS``      admin: request a metrics snapshot (empty body)
``PING``       liveness probe (empty body)
``SHUTDOWN``   admin: ask the server to drain and exit (empty body)
``PUT_TRACE``  replication: ingest raw trace bytes without scheduling a
               replay (body is the trace payload); answered with PONG
``PUT_RESULT`` replication: store a replay record computed by a peer
               shard; JSON body ``{"digest", "spec", "record"}``,
               answered with PONG.  The record lands in the result
               cache under the same ``(digest, fingerprint)`` key a
               local replay would use.
=============  ==========================================================

Response frames (server -> client):

=============  ==========================================================
``RESULT``     JSON: ``result`` (replay cost summary), ``cached``,
               ``single_flight``, ``wall_ms``
``ERROR``      JSON: ``code`` (one of :data:`ERROR_CODES`), ``message``
``BUSY``       JSON: ``queue_depth``, ``capacity`` — admission queue is
               full; the client should back off and retry
``STATS``      JSON metrics snapshot (see :mod:`repro.serve.metrics`)
``PONG``       empty body
=============  ==========================================================

Backpressure semantics: ``BUSY`` is the *only* overload response — the
server never buffers beyond its configured admission capacity, so memory
under overload is bounded and the slow-down is pushed to clients.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import VMError

#: Frame type bytes.
REQUEST = 0x01
RESULT = 0x02
ERROR = 0x03
BUSY = 0x04
STATS_REQUEST = 0x05
STATS = 0x06
PING = 0x07
PONG = 0x08
SHUTDOWN = 0x09
PUT_TRACE = 0x0A
PUT_RESULT = 0x0B

FRAME_NAMES = {
    REQUEST: "REQUEST",
    RESULT: "RESULT",
    ERROR: "ERROR",
    BUSY: "BUSY",
    STATS_REQUEST: "STATS_REQUEST",
    STATS: "STATS",
    PING: "PING",
    PONG: "PONG",
    SHUTDOWN: "SHUTDOWN",
    PUT_TRACE: "PUT_TRACE",
    PUT_RESULT: "PUT_RESULT",
}

#: Error codes carried by ``ERROR`` frames.
ERROR_CODES = (
    "BAD_FRAME",        # malformed frame or request header
    "FRAME_TOO_LARGE",  # declared length exceeds the server's max frame
    "UNKNOWN_SPEC",     # analysis registry key not found
    "UNKNOWN_TRACE",    # digest-only request for a trace never ingested
    "BAD_TRACE",        # trace bytes failed validation
    "BAD_RESULT",       # PUT_RESULT payload failed validation
    "TIMEOUT",          # per-request deadline elapsed
    "WORKER_CRASH",     # the worker died executing this request
    "ANALYSIS_ERROR",   # the replay itself raised
    "SHUTTING_DOWN",    # server is draining; no new work admitted
    "INTERNAL",         # unexpected server-side failure
)

#: Default cap on one frame body.  A scale-1 workload trace is ~50 KiB,
#: so 64 MiB leaves three orders of magnitude of headroom while bounding
#: a malicious or buggy client's memory impact.
MAX_FRAME_BYTES = 64 << 20

_LEN = struct.Struct(">I")
_HDR_LEN = struct.Struct(">I")


class ProtocolError(VMError):
    """Malformed frame, oversized frame, or truncated stream."""


class FrameTooLarge(ProtocolError):
    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(f"frame of {declared} bytes exceeds limit {limit}")
        self.declared = declared
        self.limit = limit


@dataclass
class Request:
    """Decoded REQUEST frame."""

    spec: str
    digest: Optional[str] = None
    timeout: Optional[float] = None
    trace_bytes: bytes = field(default=b"", repr=False)


# ----------------------------------------------------------------------
# encoding (transport-independent)
# ----------------------------------------------------------------------
def encode_frame(frame_type: int, body: bytes = b"") -> bytes:
    return _LEN.pack(len(body) + 1) + bytes([frame_type]) + body


def encode_json_frame(frame_type: int, payload: dict) -> bytes:
    return encode_frame(frame_type, json.dumps(payload, sort_keys=True).encode("utf-8"))


def encode_request(spec: str, digest: Optional[str] = None,
                   timeout: Optional[float] = None,
                   trace_bytes: bytes = b"") -> bytes:
    header = {"spec": spec}
    if digest is not None:
        header["digest"] = digest
    if timeout is not None:
        header["timeout"] = timeout
    raw_header = json.dumps(header, sort_keys=True).encode("utf-8")
    body = _HDR_LEN.pack(len(raw_header)) + raw_header + trace_bytes
    return encode_frame(REQUEST, body)


def decode_request(body: bytes) -> Request:
    """Parse a REQUEST body; raises :class:`ProtocolError` on garbage."""
    if len(body) < _HDR_LEN.size:
        raise ProtocolError("request body too short for header length")
    header_len = _HDR_LEN.unpack_from(body)[0]
    header_end = _HDR_LEN.size + header_len
    if header_end > len(body):
        raise ProtocolError("request header length exceeds body")
    try:
        header = json.loads(body[_HDR_LEN.size:header_end].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request header is not valid JSON: {exc}") from None
    if not isinstance(header, dict) or not isinstance(header.get("spec"), str):
        raise ProtocolError("request header must be an object with a 'spec' key")
    trace_bytes = body[header_end:]
    digest = header.get("digest")
    if digest is not None and not isinstance(digest, str):
        raise ProtocolError("'digest' must be a string")
    if not trace_bytes and digest is None:
        raise ProtocolError("request carries neither trace bytes nor a digest")
    timeout = header.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise ProtocolError("'timeout' must be a number") from None
    return Request(spec=header["spec"], digest=digest, timeout=timeout,
                   trace_bytes=trace_bytes)


def encode_put_result(digest: str, spec: str, record: dict) -> bytes:
    """Frame a peer-computed replay record for cross-shard replication."""
    return encode_json_frame(
        PUT_RESULT, {"digest": digest, "spec": spec, "record": record}
    )


def decode_put_result(body: bytes) -> Tuple[str, str, dict]:
    """Validate a PUT_RESULT body -> (digest, spec, record)."""
    payload = decode_json_body(body)
    digest = payload.get("digest")
    spec = payload.get("spec")
    record = payload.get("record")
    if not isinstance(digest, str) or not digest:
        raise ProtocolError("PUT_RESULT requires a string 'digest'")
    if not isinstance(spec, str) or not spec:
        raise ProtocolError("PUT_RESULT requires a string 'spec'")
    if not isinstance(record, dict) or not record:
        raise ProtocolError("PUT_RESULT requires an object 'record'")
    return digest, spec, record


def decode_json_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# asyncio transport
# ----------------------------------------------------------------------
async def read_frame(reader, max_frame: int = MAX_FRAME_BYTES
                     ) -> Optional[Tuple[int, bytes]]:
    """Read one frame from an asyncio StreamReader.

    Returns ``(frame_type, body)``, or ``None`` on clean EOF before the
    length prefix.  Raises :class:`FrameTooLarge` *before* reading an
    oversized body (the declared length alone condemns the frame) and
    :class:`ProtocolError` on a stream truncated mid-frame.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("stream truncated inside frame length") from None
    length = _LEN.unpack(prefix)[0]
    if length < 1:
        raise ProtocolError("frame body must include a type byte")
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("stream truncated inside frame body") from None
    return body[0], body[1:]


def write_frame(writer, frame_type: int, body: bytes = b"") -> None:
    writer.write(encode_frame(frame_type, body))


# ----------------------------------------------------------------------
# blocking-socket transport (client side)
# ----------------------------------------------------------------------
def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               max_frame: int = MAX_FRAME_BYTES) -> Tuple[int, bytes]:
    """Blocking read of one frame; raises ProtocolError on EOF."""
    prefix = _recv_exactly(sock, _LEN.size)
    length = _LEN.unpack(prefix)[0]
    if length < 1:
        raise ProtocolError("frame body must include a type byte")
    if length > max_frame:
        raise FrameTooLarge(length, max_frame)
    body = _recv_exactly(sock, length)
    return body[0], body[1:]


def send_frame(sock: socket.socket, frame_type: int, body: bytes = b"") -> None:
    sock.sendall(encode_frame(frame_type, body))
