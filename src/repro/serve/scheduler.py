"""Admission control and single-flight dedup for the analysis daemon.

Two invariants the server leans on:

* **Bounded admission.**  At most ``capacity`` *distinct* replays may be
  admitted (queued or running) at once.  The excess is rejected with
  :class:`BusyError` immediately — the server never buffers an unbounded
  backlog, so overload degrades into fast ``BUSY`` responses instead of
  latency collapse.
* **Single flight.**  Concurrent requests for the same
  ``(trace digest, analysis fingerprint)`` key share one execution.
  Followers attach to the leader's task and do not consume admission
  capacity — a thundering herd of identical requests costs one worker
  slot.

Work runs on :class:`repro.exec.workers.PersistentWorkerPool` via a
thread executor sized to the pool, so the event loop never blocks on a
worker pipe.  Tasks are created independently of any client connection
and awaited through ``asyncio.shield`` by callers: a client that times
out or disconnects leaves the replay running, and its result still lands
in the on-disk cache for the next request.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Tuple

from repro.exec.workers import PersistentWorkerPool
from repro.serve.metrics import MetricsRegistry
from repro.serve.tasks import REPLAY_DIGEST_TASK


class BusyError(RuntimeError):
    """Admission queue full; carries the depth/capacity for the BUSY frame."""

    def __init__(self, queue_depth: int, capacity: int) -> None:
        super().__init__(f"admission queue full ({queue_depth}/{capacity})")
        self.queue_depth = queue_depth
        self.capacity = capacity


class ReplayScheduler:
    """Dispatches replay requests to the warm worker pool."""

    def __init__(
        self,
        pool: PersistentWorkerPool,
        capacity: int,
        metrics: MetricsRegistry,
    ) -> None:
        self.pool = pool
        self.capacity = capacity
        self.metrics = metrics
        self._executor = ThreadPoolExecutor(
            max_workers=pool.size, thread_name_prefix="serve-worker-io"
        )
        self._inflight: Dict[str, asyncio.Task] = {}
        self._admitted = 0

    # -- introspection -------------------------------------------------
    @property
    def admitted(self) -> int:
        return self._admitted

    def drain_empty(self) -> bool:
        return not self._inflight

    # -- submission ----------------------------------------------------
    def submit(self, key: str, payload: dict) -> Tuple[asyncio.Task, bool]:
        """Admit (or join) a replay; returns ``(task, joined_existing)``.

        Raises :class:`BusyError` instead of queueing past capacity.
        The returned task is shared: callers must ``asyncio.shield`` it
        so one caller's cancellation cannot kill another's request.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.counter("single_flight_hits").inc()
            return existing, True
        if self._admitted >= self.capacity:
            self.metrics.counter("busy_total").inc()
            raise BusyError(self._admitted, self.capacity)
        self._admitted += 1
        self.metrics.gauge("queue_depth").inc()
        task = asyncio.get_running_loop().create_task(self._execute(payload))
        self._inflight[key] = task
        task.add_done_callback(lambda _t, _key=key: self._release(_key))
        return task, False

    def _release(self, key: str) -> None:
        self._inflight.pop(key, None)
        self._admitted -= 1

    async def _execute(self, payload: dict) -> dict:
        loop = asyncio.get_running_loop()
        in_flight = self.metrics.gauge("in_flight")
        queue_depth = self.metrics.gauge("queue_depth")
        try:
            in_flight.inc()
            # queue_depth counts admitted-not-yet-finished leaders; the
            # executor thread below blocks until a worker frees up, which
            # is exactly the "queued" portion of that gauge.
            return await loop.run_in_executor(
                self._executor, self.pool.call, REPLAY_DIGEST_TASK, payload
            )
        finally:
            in_flight.dec()
            queue_depth.dec()
            self.metrics.gauge("worker_restarts").set(self.pool.restarts)

    # -- lifecycle -----------------------------------------------------
    async def drain(self, grace_seconds: float) -> bool:
        """Wait for in-flight replays to finish; True if fully drained."""
        deadline = asyncio.get_running_loop().time() + grace_seconds
        while self._inflight:
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True

    def close(self) -> None:
        for task in list(self._inflight.values()):
            task.cancel()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.pool.close()
