"""Admission control, single-flight dedup, and degraded-mode dispatch.

Three invariants the server leans on:

* **Bounded admission.**  At most ``capacity`` *distinct* replays may be
  admitted (queued or running) at once.  The excess is rejected with
  :class:`BusyError` immediately — the server never buffers an unbounded
  backlog, so overload degrades into fast ``BUSY`` responses instead of
  latency collapse.
* **Single flight.**  Concurrent requests for the same
  ``(trace digest, analysis fingerprint)`` key share one execution.
  Followers attach to the leader's task and do not consume admission
  capacity — a thundering herd of identical requests costs one worker
  slot.
* **Degraded availability.**  Dispatch onto the worker pool is guarded
  by a :class:`~repro.serve.resilience.CircuitBreaker`: repeated worker
  crashes/hangs trip it, and while it is open — or when the server runs
  with no pool at all (``workers=0``) — replays execute *inline* in the
  server process instead of failing.  Inline execution suppresses the
  ``worker.*`` fault points, so an injected "worker crash" can never
  take the server itself down.  ``degraded`` is visible in stats.

Work runs on :class:`repro.exec.workers.PersistentWorkerPool` via a
thread executor sized to the pool, so the event loop never blocks on a
worker pipe.  Tasks are created independently of any client connection
and awaited through ``asyncio.shield`` by callers: a client that times
out or disconnects leaves the replay running, and its result still lands
in the on-disk cache for the next request.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro.exec.workers import (
    PersistentWorkerPool,
    TaskError,
    WorkerCrashError,
    WorkerHangError,
)
from repro.serve.config import ResilienceConfig
from repro.serve.metrics import MetricsRegistry
from repro.serve.resilience import CircuitBreaker
from repro.serve.tasks import REPLAY_DIGEST_TASK


class BusyError(RuntimeError):
    """Admission queue full; carries the depth/capacity for the BUSY frame."""

    def __init__(self, queue_depth: int, capacity: int) -> None:
        super().__init__(f"admission queue full ({queue_depth}/{capacity})")
        self.queue_depth = queue_depth
        self.capacity = capacity


class ReplayScheduler:
    """Dispatches replay requests to the warm worker pool."""

    def __init__(
        self,
        pool: Optional[PersistentWorkerPool],
        capacity: int,
        metrics: MetricsRegistry,
        resilience: Optional[ResilienceConfig] = None,
        partition_shards: int = 1,
        partition_min_records: int = 50_000,
    ) -> None:
        self.pool = pool
        self.capacity = capacity
        self.metrics = metrics
        self.resilience = resilience or ResilienceConfig()
        self.partition_shards = partition_shards
        self.partition_min_records = partition_min_records
        self.breaker = CircuitBreaker(
            self.resilience.breaker_threshold, self.resilience.breaker_reset
        )
        pool_size = pool.size if pool is not None else 0
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, pool_size), thread_name_prefix="serve-worker-io"
        )
        self._inflight: Dict[str, asyncio.Task] = {}
        self._admitted = 0

    # -- introspection -------------------------------------------------
    @property
    def admitted(self) -> int:
        return self._admitted

    def drain_empty(self) -> bool:
        return not self._inflight

    @property
    def degraded(self) -> bool:
        """True when replays would not run on a healthy worker pool."""
        if self.pool is None or self.pool.size == 0:
            return True
        if self.breaker.state != CircuitBreaker.CLOSED:
            return True
        return self.pool.alive_workers == 0

    def health(self) -> dict:
        """Pool + breaker health, embedded in ``serve stats``."""
        report = {
            "degraded": self.degraded,
            "breaker": self.breaker.snapshot(),
            "inline_replays": self.metrics.counter("inline_replays").value,
        }
        if self.pool is not None:
            report["pool"] = {
                "size": self.pool.size,
                "alive": self.pool.alive_workers,
                "restarts": self.pool.restarts,
                "hangs": self.pool.hangs,
                "reaped": self.pool.reaped,
                "respawn_storms": self.pool.respawn_storms,
            }
        else:
            report["pool"] = None
        return report

    # -- submission ----------------------------------------------------
    def submit(self, key: str, payload: dict) -> Tuple[asyncio.Task, bool]:
        """Admit (or join) a replay; returns ``(task, joined_existing)``.

        Raises :class:`BusyError` instead of queueing past capacity.
        The returned task is shared: callers must ``asyncio.shield`` it
        so one caller's cancellation cannot kill another's request.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.counter("single_flight_hits").inc()
            return existing, True
        if self._admitted >= self.capacity:
            self.metrics.counter("busy_total").inc()
            raise BusyError(self._admitted, self.capacity)
        self._admitted += 1
        self.metrics.gauge("queue_depth").inc()
        task = asyncio.get_running_loop().create_task(self._execute(payload))
        self._inflight[key] = task
        task.add_done_callback(lambda _t, _key=key: self._release(_key))
        return task, False

    def _release(self, key: str) -> None:
        self._inflight.pop(key, None)
        self._admitted -= 1

    def _inline_replay(self, payload: dict) -> dict:
        """Degraded mode: replay in-process, worker faults suppressed.

        ``worker.*`` fault points simulate a *worker process* dying;
        letting them fire here would kill the server, which is exactly
        the blast-radius containment this fallback exists to provide.
        """
        from repro import faultline
        from repro.serve.tasks import replay_digest
        from repro.trace.store import StoreCorruptionError

        with faultline.suppressed("worker.crash.midjob", "worker.hang"):
            try:
                return replay_digest(payload)
            except StoreCorruptionError:
                raise  # typed: the server maps it to UNKNOWN_TRACE
            except Exception as exc:  # noqa: BLE001 - match the pool's
                # TaskError surface so callers handle one failure shape
                raise TaskError(f"{type(exc).__name__}: {exc}") from exc

    def _partition_ready(self) -> bool:
        """Partitioned replay needs an enabled config, a healthy pool of
        at least two workers, and an otherwise idle server — sharding one
        trace's decode across the pool only pays off when no other
        admitted replay is contending for the same workers."""
        return (
            self.partition_shards > 1
            and self.pool is not None
            and self.pool.size >= 2
            and self.breaker.state == CircuitBreaker.CLOSED
            and self.pool.alive_workers >= 2
            and self._admitted <= 1
        )

    def _try_partitioned(self, payload: dict) -> Optional[dict]:
        """RUN_PARTITIONED: shard the decode across the pool, settle here.

        Returns None when the trace is ineligible (too small, missing)
        or when partitioned replay fails its own integrity contract —
        callers then run the usual monolithic path.  A corrupt stored
        trace still raises :class:`StoreCorruptionError` (the file is
        quarantined either way; clients must re-upload).
        """
        import time as _time

        from repro.exec.pool import analysis_fingerprint
        from repro.partition import PartitionError, counters, replay_partitioned
        from repro.trace.format import TraceFormatError
        from repro.trace.store import TraceStore

        store = TraceStore(payload["root"])
        digest, spec = payload["digest"], payload["spec"]
        path = store.find_by_digest(digest)
        if path is None:
            return None
        meta = store.read_tail_meta(path)
        if meta.get("n_records", 0) < self.partition_min_records:
            return None
        self.metrics.counter("partition_attempts").inc()
        try:
            started = _time.perf_counter()
            profile, reporter, stats = replay_partitioned(
                store, path, [spec], self.partition_shards, pool=self.pool
            )
        except (PartitionError, TraceFormatError) as exc:
            counters.note_fallback()
            self.metrics.counter("partition_fallbacks").inc()
            self.metrics.counter(
                "partition_fallback_" + type(exc).__name__).inc()
            return None
        record = {
            "spec": spec,
            "trace_digest": digest,
            "workload": meta.get("workload"),
            "scale": meta.get("scale"),
            "baseline_cycles": meta["summary"]["plain_cycles"],
            "instrumented_cycles": profile.cycles,
            "metadata_bytes": profile.metadata_bytes,
            "n_reports": len(list(reporter)),
            "wall_seconds": _time.perf_counter() - started,
            "partition_shards": stats["planned_shards"],
        }
        key = TraceStore.result_key(digest, analysis_fingerprint(spec))
        store.store_result(key, record)
        self.metrics.counter("partitioned_replays").inc()
        return record

    async def _execute(self, payload: dict) -> dict:
        loop = asyncio.get_running_loop()
        in_flight = self.metrics.gauge("in_flight")
        queue_depth = self.metrics.gauge("queue_depth")
        try:
            in_flight.inc()
            # queue_depth counts admitted-not-yet-finished leaders; the
            # executor thread below blocks until a worker frees up, which
            # is exactly the "queued" portion of that gauge.
            use_pool = (self.pool is not None and self.pool.size > 0
                        and self.breaker.allow())
            if use_pool and self._partition_ready():
                record = await loop.run_in_executor(
                    self._executor, self._try_partitioned, payload
                )
                if record is not None:
                    self.breaker.record_success()
                    return record
                # Ineligible or failed: fall through to monolithic.
            if use_pool:
                try:
                    record = await loop.run_in_executor(
                        self._executor, self.pool.call,
                        REPLAY_DIGEST_TASK, payload,
                    )
                except WorkerHangError:
                    self.metrics.counter("worker_hangs").inc()
                    self.breaker.record_failure()
                    raise
                except WorkerCrashError:
                    self.breaker.record_failure()
                    raise
                self.breaker.record_success()
                return record
            if (self.pool is not None and self.pool.size > 0
                    and not self.resilience.inline_fallback):
                # Breaker open and fallback disabled: fail fast with the
                # crash type clients already retry on.
                raise WorkerCrashError(
                    "worker pool circuit breaker open (inline fallback "
                    "disabled)"
                )
            self.metrics.counter("inline_replays").inc()
            self.metrics.gauge("degraded").set(1)
            return await loop.run_in_executor(
                self._executor, self._inline_replay, payload
            )
        finally:
            in_flight.dec()
            queue_depth.dec()
            if self.pool is not None:
                self.metrics.gauge("worker_restarts").set(self.pool.restarts)
            self.metrics.gauge("degraded").set(1 if self.degraded else 0)

    # -- lifecycle -----------------------------------------------------
    async def drain(self, grace_seconds: float) -> bool:
        """Wait for in-flight replays to finish; True if fully drained."""
        deadline = asyncio.get_running_loop().time() + grace_seconds
        while self._inflight:
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True

    def close(self) -> None:
        for task in list(self._inflight.values()):
            task.cancel()
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.pool is not None:
            self.pool.close()
