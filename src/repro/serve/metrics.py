"""Metrics layer for the analysis daemon: counters, gauges, histograms.

Deliberately dependency-free and cheap on the hot path: a counter
increment is one ``+=`` under a lock shared per registry, and a
histogram observation is one bucket increment (log-spaced bounds, found
by bisection).  Percentiles are estimated from the bucket cumulative
distribution with linear interpolation inside the winning bucket —
the same approach Prometheus takes — so memory stays O(buckets) no
matter how many observations arrive.

A :class:`MetricsRegistry` snapshot is a plain JSON-able dict; the
server ships it verbatim in ``STATS`` frames, and
``python -m repro.serve stats`` renders it for humans.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Dict, List, Optional, Sequence


def _default_bounds() -> List[float]:
    """Log-spaced latency bounds: 0.05 ms .. ~10 minutes, factor 1.35."""
    bounds = []
    value = 0.05
    while value < 600_000.0:
        bounds.append(value)
        value *= 1.35
    return bounds


class Counter:
    """Monotonically increasing count."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, in-flight requests)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: int = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``observe`` takes milliseconds (by convention; the math is
    unit-agnostic).  ``percentile(p)`` interpolates within the bucket
    containing the p-quantile; observations beyond the last bound are
    clamped to the observed maximum.
    """

    def __init__(self, lock: threading.Lock,
                 bounds: Optional[Sequence[float]] = None) -> None:
        self._lock = lock
        self.bounds = list(bounds) if bounds is not None else _default_bounds()
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, p: float) -> float:
        """Estimate the p-th percentile (p in [0, 100])."""
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (self.bounds[index] if index < len(self.bounds)
                         else self.max)
                lower = max(lower, self.min if self.min != float("inf") else lower)
                upper = min(upper, self.max) if self.max else upper
                if upper <= lower:
                    return upper
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * fraction
        return self.max

    def summary(self) -> dict:
        with self._lock:
            if self.count == 0:
                return {"count": 0}
            return {
                "count": self.count,
                "mean": self.total / self.count,
                "min": self.min,
                "max": self.max,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
                # Sparse bucket counts (index -> count over the default
                # log-spaced bounds) so snapshots from several servers
                # can be merged into cluster-wide percentiles — see
                # merge_histogram_summaries.
                "buckets": {
                    str(index): count
                    for index, count in enumerate(self.bucket_counts)
                    if count
                },
            }


def merge_histogram_summaries(summaries: Sequence[dict]) -> dict:
    """Merge per-server histogram summaries into one cluster-wide view.

    Summaries must come from histograms over the *default* log-spaced
    bounds (every serve histogram does).  Bucket counts add exactly;
    percentiles are re-estimated from the merged cumulative
    distribution with the same interpolation a single histogram uses,
    so a cluster-wide p99 is as trustworthy as a single server's.
    """
    bounds = _default_bounds()
    bucket_counts = [0] * (len(bounds) + 1)
    count = 0
    total = 0.0
    minimum = float("inf")
    maximum = 0.0
    for summary in summaries:
        if not summary or not summary.get("count"):
            continue
        count += summary["count"]
        total += summary.get("mean", 0.0) * summary["count"]
        minimum = min(minimum, summary.get("min", minimum))
        maximum = max(maximum, summary.get("max", 0.0))
        for index, bucket_count in (summary.get("buckets") or {}).items():
            bucket_counts[int(index)] += bucket_count
    if count == 0:
        return {"count": 0}
    merged = Histogram(threading.Lock(), bounds)
    merged.bucket_counts = bucket_counts
    merged.count = count
    merged.total = total
    merged.min = minimum
    merged.max = maximum
    return merged.summary()


class MetricsRegistry:
    """Named counters/gauges/histograms with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._started = time.time()

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters.setdefault(name, Counter(self._lock))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges.setdefault(name, Gauge(self._lock))
        return metric

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms.setdefault(
                name, Histogram(self._lock, bounds)
            )
        return metric

    def snapshot(self) -> dict:
        """One consistent-enough view of every metric, JSON-able."""
        snap = {
            "uptime_seconds": time.time() - self._started,
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }
        counters = snap["counters"]
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        if hits + misses:
            snap["cache_hit_rate"] = hits / (hits + misses)
        return snap


def render_health(health: Optional[dict]) -> List[str]:
    """Render the server's health block (pool / breaker / faults / store)."""
    if not health:
        return []
    lines = [f"health: degraded={str(health.get('degraded', False)).lower()}"]
    pool = health.get("pool")
    if pool:
        lines.append(
            f"  pool: alive={pool.get('alive')}/{pool.get('size')} "
            f"restarts={pool.get('restarts')} hangs={pool.get('hangs')} "
            f"reaped={pool.get('reaped')} "
            f"respawn_storms={pool.get('respawn_storms', 0)}"
        )
    else:
        lines.append("  pool: none (inline mode)")
    breaker = health.get("breaker")
    if breaker:
        lines.append(
            f"  breaker: state={breaker.get('state')} "
            f"trips={breaker.get('trips')} "
            f"consecutive_failures={breaker.get('consecutive_failures')}"
        )
    lines.append(f"  inline_replays: {health.get('inline_replays', 0)}")
    faults = health.get("faultline") or {}
    if faults.get("installed"):
        fires = faults.get("fires") or {}
        lines.append(
            f"  faultline: installed seed={faults.get('seed')} "
            f"fired={sum(fires.values())}"
        )
        for point, count in sorted(fires.items()):
            lines.append(f"    {point}: {count}")
    else:
        lines.append("  faultline: not installed")
    store = health.get("store") or {}
    if store:
        lines.append(
            f"  store: verified_reads={store.get('verified_reads', 0)} "
            f"corrupt_detected={store.get('corrupt_detected', 0)} "
            f"quarantined={store.get('quarantined', 0)}"
        )
    return lines


def render_snapshot(snap: dict) -> str:
    """Human-readable STATS rendering for the CLI."""
    lines = [f"uptime: {snap.get('uptime_seconds', 0.0):.1f}s"]
    if "cache_hit_rate" in snap:
        lines.append(f"cache_hit_rate: {snap['cache_hit_rate']:.3f}")
    compile_cache = snap.get("compile_cache")
    if compile_cache is not None:
        lines.append(
            "compile_cache: "
            f"hits={compile_cache.get('hits', 0)} "
            f"misses={compile_cache.get('misses', 0)} "
            f"entries={compile_cache.get('entries', 0)}"
        )
    for subsystem, stats in sorted(snap.get("subsystems", {}).items()):
        if subsystem == "vm.compile":
            continue  # rendered above as the legacy compile_cache line
        rendered = " ".join(f"{key}={value}" for key, value in sorted(stats.items()))
        lines.append(f"{subsystem}: {rendered}")
    lines.extend(render_health(snap.get("health")))
    for name, value in snap.get("counters", {}).items():
        lines.append(f"counter {name}: {value}")
    for name, value in snap.get("gauges", {}).items():
        lines.append(f"gauge {name}: {value}")
    for name, summary in snap.get("histograms", {}).items():
        if summary.get("count"):
            lines.append(
                f"histogram {name}: count={summary['count']} "
                f"mean={summary['mean']:.3f}ms p50={summary['p50']:.3f}ms "
                f"p95={summary['p95']:.3f}ms p99={summary['p99']:.3f}ms "
                f"max={summary['max']:.3f}ms"
            )
        else:
            lines.append(f"histogram {name}: count=0")
    return "\n".join(lines)
