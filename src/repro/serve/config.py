"""Resilience knobs for the serving stack, in one place.

Before this module, retry/backoff/timeout constants were scattered
magic numbers (client retries, worker deadlines, breaker thresholds).
:class:`ResilienceConfig` is the single source of truth: the client's
retry policy and circuit breaker, the worker watchdog, and the
server's degraded-mode fallback all read from it.  The server embeds
its copy in ``serve stats`` (``config.resilience``) so a live
deployment's failure posture is inspectable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ResilienceConfig:
    """Every retry/backoff/watchdog/breaker knob the runtime layers use."""

    # -- client retry policy ------------------------------------------
    #: total attempts per logical request (1 = no retries)
    max_attempts: int = 5
    #: first backoff sleep, seconds; doubles each retry
    backoff_base: float = 0.05
    #: growth factor between consecutive backoffs
    backoff_factor: float = 2.0
    #: per-sleep ceiling, seconds
    backoff_max: float = 2.0
    #: fraction of each backoff randomized away (0 = deterministic)
    backoff_jitter: float = 0.5
    #: cumulative sleep budget per logical request, seconds — retries
    #: stop when the budget is spent even if attempts remain
    retry_budget: float = 15.0
    #: ERROR codes worth retrying on a fresh attempt (transient
    #: server-side failures; transport errors and BUSY always retry)
    retry_codes: Tuple[str, ...] = ("WORKER_CRASH",)

    # -- circuit breaker ----------------------------------------------
    #: consecutive failures before the breaker opens
    breaker_threshold: int = 5
    #: seconds an open breaker waits before letting one probe through
    breaker_reset: float = 5.0

    # -- worker watchdog ----------------------------------------------
    #: seconds between worker heartbeats while a job runs
    heartbeat_interval: float = 0.5
    #: per-job deadline before the watchdog kills the worker;
    #: None disables hang detection
    hang_timeout: Optional[float] = 150.0
    #: seconds between reaper sweeps (respawn dead-idle workers);
    #: None disables the reaper thread
    reaper_interval: Optional[float] = 2.0
    #: sliding window, seconds, for the crash-respawn rate limit
    respawn_window: float = 30.0
    #: respawns allowed inside the window before the pool raises a
    #: typed ``WorkerRespawnStorm`` instead of replacing the worker;
    #: None disables the cap (exponential backoff still applies)
    max_respawns_per_window: Optional[int] = 64

    # -- degraded mode -------------------------------------------------
    #: run replays inline in the server process when the worker pool is
    #: unavailable (dead, breaker open, or configured with 0 workers)
    inline_fallback: bool = True

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["retry_codes"] = list(self.retry_codes)
        return payload
