"""Blocking client for the analysis daemon.

:class:`ServeClient` speaks the framed protocol over one persistent TCP
connection (RPCs are sequential per client; use one client per thread
for concurrency).  :func:`run_jobs` is the harness adapter: it executes
a batch of :class:`~repro.exec.pool.JobSpec` against a server and
returns :class:`~repro.exec.pool.JobResult` rows interchangeable with
``run_batch``'s — same replay, same cost model, same numbers.

Submission is digest-first: the client tries a digest-only request
(zero trace bytes on the wire) and uploads the trace once only when the
server answers ``UNKNOWN_TRACE``.  After the first upload every
subsequent request for that trace, from any client, is digest-only.
"""

from __future__ import annotations

import socket
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.pool import JobResult, JobSpec
from repro.serve import protocol


class ServeError(RuntimeError):
    """Base class for daemon-reported failures."""


class ServerBusy(ServeError):
    """BUSY frame: admission queue full; retry with backoff."""

    def __init__(self, payload: dict) -> None:
        super().__init__(
            f"server busy (queue {payload.get('queue_depth')}"
            f"/{payload.get('capacity')})"
        )
        self.queue_depth = payload.get("queue_depth")
        self.capacity = payload.get("capacity")


class RequestFailed(ServeError):
    """ERROR frame; ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES`."""

    def __init__(self, payload: dict) -> None:
        super().__init__(f"{payload.get('code')}: {payload.get('message')}")
        self.code = payload.get("code")
        self.message = payload.get("message")


def parse_address(address: str) -> Tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"server address must be HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


class ServeClient:
    """One blocking connection to a repro.serve daemon."""

    def __init__(self, address: Union[str, Tuple[str, int]],
                 timeout: float = 300.0) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, self.timeout)
            self._sock.settimeout(self.timeout)
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _rpc(self, raw_frame: bytes) -> Tuple[int, bytes]:
        sock = self._connection()
        try:
            sock.sendall(raw_frame)
            return protocol.recv_frame(sock)
        except (OSError, protocol.ProtocolError):
            self.close()  # poisoned connection: reconnect on next call
            raise

    # -- RPCs ----------------------------------------------------------
    def submit(self, spec: str, trace_bytes: bytes = b"",
               digest: Optional[str] = None,
               timeout: Optional[float] = None) -> dict:
        """Submit one replay; returns the RESULT payload.

        Raises :class:`ServerBusy` on backpressure and
        :class:`RequestFailed` for ERROR frames (``exc.code`` says why,
        e.g. ``UNKNOWN_TRACE`` for a digest the server has never seen).
        """
        frame_type, body = self._rpc(protocol.encode_request(
            spec, digest=digest, timeout=timeout, trace_bytes=trace_bytes
        ))
        if frame_type == protocol.RESULT:
            return protocol.decode_json_body(body)
        if frame_type == protocol.BUSY:
            raise ServerBusy(protocol.decode_json_body(body))
        if frame_type == protocol.ERROR:
            raise RequestFailed(protocol.decode_json_body(body))
        raise ServeError(f"unexpected frame type {frame_type} in response")

    def submit_digest_first(self, spec: str, digest: str,
                            trace_bytes: bytes,
                            timeout: Optional[float] = None) -> dict:
        """Digest-only probe, uploading the trace only on UNKNOWN_TRACE."""
        try:
            return self.submit(spec, digest=digest, timeout=timeout)
        except RequestFailed as exc:
            if exc.code != "UNKNOWN_TRACE":
                raise
        return self.submit(spec, trace_bytes=trace_bytes, timeout=timeout)

    def stats(self) -> dict:
        frame_type, body = self._rpc(protocol.encode_frame(protocol.STATS_REQUEST))
        if frame_type != protocol.STATS:
            raise ServeError(f"expected STATS response, got {frame_type}")
        return protocol.decode_json_body(body)

    def ping(self) -> bool:
        frame_type, _body = self._rpc(protocol.encode_frame(protocol.PING))
        return frame_type == protocol.PONG

    def request_shutdown(self) -> None:
        """Ask the server to drain and exit (admin)."""
        self._rpc(protocol.encode_frame(protocol.SHUTDOWN))
        self.close()


# ----------------------------------------------------------------------
# harness adapter
# ----------------------------------------------------------------------
def run_jobs(
    server: Union[str, ServeClient],
    jobs: Sequence[JobSpec],
    store=None,
) -> List[JobResult]:
    """Execute harness jobs against a daemon; results come back in order.

    Traces are recorded locally (into ``store``, or a temporary
    directory) exactly once per (workload, scale) — the daemon replays
    them remotely, so ``JobResult`` rows are bit-identical to
    :func:`repro.exec.pool.run_batch` on the same jobs.
    """
    import tempfile

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    jobs = list(jobs)
    if not jobs:
        return []

    client = server if isinstance(server, ServeClient) else ServeClient(server)
    owns_client = not isinstance(server, ServeClient)
    tempdir = None
    if store is None:
        tempdir = tempfile.TemporaryDirectory(prefix="alda-client-traces-")
        store = TraceStore(tempdir.name)
    elif not isinstance(store, TraceStore):
        store = TraceStore(store)

    try:
        readers: Dict[Tuple[str, int], tuple] = {}
        for workload_name, scale in sorted({(j.workload, j.scale) for j in jobs}):
            workload = ALL[workload_name]
            reader = store.get_or_record(workload, scale)
            path = store.trace_path(workload, scale)
            readers[(workload_name, scale)] = (reader, path)

        results = []
        for job in jobs:
            reader, path = readers[(job.workload, job.scale)]
            response = client.submit_digest_first(
                job.spec, reader.digest, path.read_bytes()
            )
            record = response["result"]
            baseline = record.get("baseline_cycles")
            if baseline is None:
                baseline = reader.summary["plain_cycles"]
            results.append(JobResult(
                workload=job.workload,
                spec=job.spec,
                label=job.label or job.spec,
                scale=job.scale,
                baseline_cycles=baseline,
                instrumented_cycles=record["instrumented_cycles"],
                metadata_bytes=record["metadata_bytes"],
                n_reports=record["n_reports"],
                wall_seconds=record["wall_seconds"],
                cached=bool(response.get("cached")),
            ))
        return results
    finally:
        if owns_client:
            client.close()
        if tempdir is not None:
            tempdir.cleanup()
