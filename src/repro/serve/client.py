"""Blocking client for the analysis daemon.

:class:`ServeClient` speaks the framed protocol over one persistent TCP
connection (RPCs are sequential per client; use one client per thread
for concurrency).  :func:`run_jobs` is the harness adapter: it executes
a batch of :class:`~repro.exec.pool.JobSpec` against a server and
returns :class:`~repro.exec.pool.JobResult` rows interchangeable with
``run_batch``'s — same replay, same cost model, same numbers.

Submission is digest-first: the client tries a digest-only request
(zero trace bytes on the wire) and uploads the trace once only when the
server answers ``UNKNOWN_TRACE``.  After the first upload every
subsequent request for that trace, from any client, is digest-only.

**Resilience.**  Constructed with a
:class:`~repro.serve.config.ResilienceConfig`, the client retries
transient failures — ``BUSY`` backpressure, connection resets, socket
timeouts, and the transient ERROR codes the config names — with
exponential backoff + jitter under a cumulative sleep budget, behind a
circuit breaker that stops hammering a down server (typed
:class:`CircuitOpenError`) and half-opens on a timer.  Without a
config (the default) every failure surfaces immediately, exactly as
before the resilience layer existed.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.pool import JobResult, JobSpec
from repro.serve import protocol
from repro.serve.config import ResilienceConfig
from repro.serve.resilience import CircuitBreaker, RetryPolicy


class ServeError(RuntimeError):
    """Base class for daemon-reported failures."""


class ServerBusy(ServeError):
    """BUSY frame: admission queue full; retry with backoff."""

    def __init__(self, payload: dict) -> None:
        super().__init__(
            f"server busy (queue {payload.get('queue_depth')}"
            f"/{payload.get('capacity')})"
        )
        self.queue_depth = payload.get("queue_depth")
        self.capacity = payload.get("capacity")


class RequestFailed(ServeError):
    """ERROR frame; ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES`."""

    def __init__(self, payload: dict) -> None:
        super().__init__(f"{payload.get('code')}: {payload.get('message')}")
        self.code = payload.get("code")
        self.message = payload.get("message")


class CircuitOpenError(ServeError):
    """The client's circuit breaker is open; no attempt was made."""

    def __init__(self, snapshot: dict) -> None:
        super().__init__(
            f"circuit breaker open after "
            f"{snapshot.get('consecutive_failures')} consecutive failures"
        )
        self.breaker = snapshot


class RetriesExhausted(ServeError):
    """Backoff attempts/budget spent without a definitive answer."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"request failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


def parse_address(address: str) -> Tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"server address must be HOST:PORT, got {address!r}")
    return host or "127.0.0.1", int(port)


class ServeClient:
    """One blocking connection to a repro.serve daemon."""

    def __init__(self, address: Union[str, Tuple[str, int]],
                 timeout: float = 300.0,
                 resilience: Optional[ResilienceConfig] = None,
                 retry_seed: Optional[int] = None) -> None:
        if isinstance(address, str):
            address = parse_address(address)
        self.address = address
        self.timeout = timeout
        self.resilience = resilience
        self._retry_seed = retry_seed
        self._breaker = (
            CircuitBreaker(resilience.breaker_threshold, resilience.breaker_reset)
            if resilience is not None else None
        )
        self._sock: Optional[socket.socket] = None
        #: per-client resilience counters, merged into loadgen reports
        self.retry_stats = {
            "attempts": 0, "retries": 0, "busy_retried": 0,
            "transport_retried": 0, "code_retried": 0, "breaker_rejections": 0,
        }

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(self.address, self.timeout)
            self._sock.settimeout(self.timeout)
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _rpc(self, raw_frame: bytes) -> Tuple[int, bytes]:
        sock = self._connection()
        try:
            sock.sendall(raw_frame)
            return protocol.recv_frame(sock)
        except (OSError, protocol.ProtocolError):
            self.close()  # poisoned connection: reconnect on next call
            raise

    # -- retry engine --------------------------------------------------
    def _retryable(self, exc: BaseException) -> Optional[str]:
        """Classify an exception for retry; None means surface it."""
        if isinstance(exc, ServerBusy):
            return "busy_retried"
        if isinstance(exc, (OSError, protocol.ProtocolError)):
            return "transport_retried"
        if (isinstance(exc, RequestFailed)
                and exc.code in self.resilience.retry_codes):
            return "code_retried"
        return None

    def _call_resilient(self, attempt_once, extra_retry_codes: Tuple[str, ...] = ()):
        """Run ``attempt_once`` under the retry policy + breaker."""
        config = self.resilience
        policy = RetryPolicy(config, seed=self._retry_seed)
        delays = policy.delays()
        attempts = 0
        while True:
            if not self._breaker.allow():
                self.retry_stats["breaker_rejections"] += 1
                raise CircuitOpenError(self._breaker.snapshot())
            attempts += 1
            self.retry_stats["attempts"] += 1
            try:
                result = attempt_once()
            except Exception as exc:  # noqa: BLE001 - classified below
                # The breaker guards against an *unreachable* server:
                # only transport failures count toward it.  A typed
                # error frame (BUSY, WORKER_CRASH, ...) is the server
                # answering — retryable, but not breaker-worthy.
                if isinstance(exc, (OSError, protocol.ProtocolError)):
                    self._breaker.record_failure()
                reason = self._retryable(exc)
                if reason is None and isinstance(exc, RequestFailed):
                    if exc.code in extra_retry_codes:
                        reason = "code_retried"
                if reason is None:
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise RetriesExhausted(attempts, exc) from exc
                self.retry_stats["retries"] += 1
                self.retry_stats[reason] += 1
                time.sleep(delay)
                continue
            self._breaker.record_success()
            return result

    # -- RPCs ----------------------------------------------------------
    def submit(self, spec: str, trace_bytes: bytes = b"",
               digest: Optional[str] = None,
               timeout: Optional[float] = None) -> dict:
        """Submit one replay; returns the RESULT payload.

        Without a :class:`ResilienceConfig` this raises
        :class:`ServerBusy` on backpressure and :class:`RequestFailed`
        for ERROR frames (``exc.code`` says why, e.g. ``UNKNOWN_TRACE``
        for a digest the server has never seen).  With one, transient
        failures are retried; what still escapes is typed
        (:class:`RetriesExhausted`, :class:`CircuitOpenError`, or the
        non-transient :class:`RequestFailed`).
        """
        if self.resilience is None:
            return self._submit_once(spec, trace_bytes, digest, timeout)
        return self._call_resilient(
            lambda: self._submit_once(spec, trace_bytes, digest, timeout)
        )

    def _submit_once(self, spec: str, trace_bytes: bytes = b"",
                     digest: Optional[str] = None,
                     timeout: Optional[float] = None) -> dict:
        frame_type, body = self._rpc(protocol.encode_request(
            spec, digest=digest, timeout=timeout, trace_bytes=trace_bytes
        ))
        if frame_type == protocol.RESULT:
            return protocol.decode_json_body(body)
        if frame_type == protocol.BUSY:
            raise ServerBusy(protocol.decode_json_body(body))
        if frame_type == protocol.ERROR:
            raise RequestFailed(protocol.decode_json_body(body))
        raise ServeError(f"unexpected frame type {frame_type} in response")

    def submit_digest_first(self, spec: str, digest: str,
                            trace_bytes: bytes,
                            timeout: Optional[float] = None) -> dict:
        """Digest-only probe, uploading the trace only on UNKNOWN_TRACE.

        With resilience configured, the probe+upload pair is one
        retryable unit, and ``UNKNOWN_TRACE`` answered for the *upload*
        is itself transient: it means the server quarantined the stored
        trace as corrupt after ingest, so retrying re-uploads it.
        """
        if self.resilience is None:
            return self._digest_first_once(spec, digest, trace_bytes, timeout)
        return self._call_resilient(
            lambda: self._digest_first_once(spec, digest, trace_bytes, timeout),
            extra_retry_codes=("UNKNOWN_TRACE",),
        )

    def _digest_first_once(self, spec: str, digest: str, trace_bytes: bytes,
                           timeout: Optional[float] = None) -> dict:
        try:
            return self._submit_once(spec, digest=digest, timeout=timeout)
        except RequestFailed as exc:
            if exc.code != "UNKNOWN_TRACE":
                raise
        return self._submit_once(spec, trace_bytes=trace_bytes, timeout=timeout)

    # -- replication RPCs (used by repro.cluster) ----------------------
    def put_trace(self, trace_bytes: bytes) -> None:
        """Replicate raw trace bytes to this server without a replay.

        One-shot (no retry layer): replication is best-effort by design;
        the cluster client counts failures instead of insisting.
        """
        frame_type, body = self._rpc(
            protocol.encode_frame(protocol.PUT_TRACE, trace_bytes)
        )
        if frame_type == protocol.PONG:
            return
        if frame_type == protocol.ERROR:
            raise RequestFailed(protocol.decode_json_body(body))
        raise ServeError(f"unexpected frame type {frame_type} in response")

    def put_result(self, digest: str, spec: str, record: dict) -> None:
        """Replicate a peer-computed replay record into this server's
        result cache (one-shot, like :meth:`put_trace`)."""
        frame_type, body = self._rpc(
            protocol.encode_put_result(digest, spec, record)
        )
        if frame_type == protocol.PONG:
            return
        if frame_type == protocol.ERROR:
            raise RequestFailed(protocol.decode_json_body(body))
        raise ServeError(f"unexpected frame type {frame_type} in response")

    def stats(self) -> dict:
        frame_type, body = self._rpc(protocol.encode_frame(protocol.STATS_REQUEST))
        if frame_type != protocol.STATS:
            raise ServeError(f"expected STATS response, got {frame_type}")
        return protocol.decode_json_body(body)

    def ping(self) -> bool:
        frame_type, _body = self._rpc(protocol.encode_frame(protocol.PING))
        return frame_type == protocol.PONG

    def request_shutdown(self) -> None:
        """Ask the server to drain and exit (admin)."""
        self._rpc(protocol.encode_frame(protocol.SHUTDOWN))
        self.close()


# ----------------------------------------------------------------------
# harness adapter
# ----------------------------------------------------------------------
def run_jobs(
    server: Union[str, ServeClient],
    jobs: Sequence[JobSpec],
    store=None,
    resilience: Optional[ResilienceConfig] = ResilienceConfig(),
) -> List[JobResult]:
    """Execute harness jobs against a daemon; results come back in order.

    Traces are recorded locally (into ``store``, or a temporary
    directory) exactly once per (workload, scale) — the daemon replays
    them remotely, so ``JobResult`` rows are bit-identical to
    :func:`repro.exec.pool.run_batch` on the same jobs.

    When ``server`` is an address, the client is constructed with
    ``resilience`` (default :class:`ResilienceConfig`), so transient
    ``BUSY``/reset/crash responses are retried with backoff instead of
    aborting a whole figure run.  Pass ``resilience=None`` for the old
    fail-fast behavior; a ready-made client — :class:`ServeClient` or
    anything else with ``submit_digest_first`` (e.g. a
    :class:`repro.cluster.ClusterClient`) — is used as-is, whatever its
    policy.
    """
    import tempfile

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    jobs = list(jobs)
    if not jobs:
        return []

    if isinstance(server, (str, tuple)):
        client = ServeClient(server, resilience=resilience)
        owns_client = True
    else:
        client = server  # ServeClient, ClusterClient, or compatible
        owns_client = False
    tempdir = None
    if store is None:
        tempdir = tempfile.TemporaryDirectory(prefix="alda-client-traces-")
        store = TraceStore(tempdir.name)
    elif not isinstance(store, TraceStore):
        store = TraceStore(store)

    try:
        readers: Dict[Tuple[str, int], tuple] = {}
        for workload_name, scale in sorted({(j.workload, j.scale) for j in jobs}):
            workload = ALL[workload_name]
            reader = store.get_or_record(workload, scale)
            path = store.trace_path(workload, scale)
            readers[(workload_name, scale)] = (reader, path)

        results = []
        for job in jobs:
            reader, path = readers[(job.workload, job.scale)]
            response = client.submit_digest_first(
                job.spec, reader.digest, path.read_bytes()
            )
            record = response["result"]
            baseline = record.get("baseline_cycles")
            if baseline is None:
                baseline = reader.summary["plain_cycles"]
            results.append(JobResult(
                workload=job.workload,
                spec=job.spec,
                label=job.label or job.spec,
                scale=job.scale,
                baseline_cycles=baseline,
                instrumented_cycles=record["instrumented_cycles"],
                metadata_bytes=record["metadata_bytes"],
                n_reports=record["n_reports"],
                wall_seconds=record["wall_seconds"],
                cached=bool(response.get("cached")),
            ))
        return results
    finally:
        if owns_client:
            client.close()
        if tempdir is not None:
            tempdir.cleanup()
