"""CLI for the analysis daemon.

Commands::

    python -m repro.serve --port 7091 --workers 4      # run the daemon
    python -m repro.serve stats --server HOST:PORT     # metrics snapshot
    python -m repro.serve loadgen --server HOST:PORT   # load generator
    python -m repro.serve shutdown --server HOST:PORT  # graceful drain
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys


def _serve(argv) -> int:
    from repro.serve.server import ServeConfig, run_server

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the ALDA analysis daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7091,
                        help="TCP port (0 picks a free one; default 7091)")
    parser.add_argument("--workers", type=int, default=2,
                        help="warm replay worker processes (default 2)")
    parser.add_argument("--queue", type=int, default=None, metavar="K",
                        help="admission capacity before BUSY "
                             "(default: 4 per worker)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="trace/result cache directory "
                             "(default: private temp dir)")
    parser.add_argument("--read-timeout", type=float, default=10.0)
    parser.add_argument("--request-timeout", type=float, default=120.0)
    parser.add_argument("--drain-grace", type=float, default=15.0)
    args = parser.parse_args(argv)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue,
        store_root=args.store,
        read_timeout=args.read_timeout,
        request_timeout=args.request_timeout,
        drain_grace=args.drain_grace,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def _stats(argv) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.metrics import render_snapshot

    parser = argparse.ArgumentParser(prog="python -m repro.serve stats")
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    with ServeClient(args.server) as client:
        snap = client.stats()
    if args.as_json:
        print(json.dumps(snap, indent=2, sort_keys=True))
    else:
        print(render_snapshot(snap))
    return 0


def _shutdown(argv) -> int:
    from repro.serve.client import ServeClient

    parser = argparse.ArgumentParser(prog="python -m repro.serve shutdown")
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    args = parser.parse_args(argv)

    with ServeClient(args.server) as client:
        client.request_shutdown()
    print("shutdown requested")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "stats":
        return _stats(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.serve.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "shutdown":
        return _shutdown(argv[1:])
    if argv and argv[0] == "serve":
        argv = argv[1:]
    return _serve(argv)


if __name__ == "__main__":
    sys.exit(main())
