"""CLI for the analysis daemon.

Commands::

    python -m repro.serve --port 7091 --workers 4      # run the daemon
    python -m repro.serve stats --server HOST:PORT     # metrics snapshot
    python -m repro.serve loadgen --server HOST:PORT   # load generator
    python -m repro.serve chaos --seed 7               # fault-injection run
    python -m repro.serve shutdown --server HOST:PORT  # graceful drain
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys


def _serve(argv) -> int:
    from repro.serve.config import ResilienceConfig
    from repro.serve.server import ServeConfig, run_server

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the ALDA analysis daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7091,
                        help="TCP port (0 picks a free one; default 7091)")
    parser.add_argument("--workers", type=int, default=2,
                        help="warm replay worker processes (default 2; "
                             "0 replays inline in the server process)")
    parser.add_argument("--queue", type=int, default=None, metavar="K",
                        help="admission capacity before BUSY "
                             "(default: 4 per worker)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="trace/result cache directory "
                             "(default: private temp dir)")
    parser.add_argument("--read-timeout", type=float, default=10.0)
    parser.add_argument("--request-timeout", type=float, default=120.0)
    parser.add_argument("--drain-grace", type=float, default=15.0)
    parser.add_argument("--partition-shards", type=int, default=1, metavar="N",
                        help="shard big-trace replays across up to N decode "
                             "workers when the server is idle "
                             "(docs/PARTITION.md; default 1 = disabled)")
    parser.add_argument("--partition-min-records", type=int, default=50_000,
                        metavar="R",
                        help="minimum recorded trace records before a replay "
                             "is partitioned (default 50000)")
    defaults = ResilienceConfig()
    parser.add_argument("--hang-timeout", type=float,
                        default=defaults.hang_timeout, metavar="SEC",
                        help="per-job watchdog deadline before a worker is "
                             f"killed (default {defaults.hang_timeout}; "
                             "0 disables)")
    parser.add_argument("--breaker-threshold", type=int,
                        default=defaults.breaker_threshold, metavar="N",
                        help="consecutive worker failures before dispatch "
                             "falls back to inline replay "
                             f"(default {defaults.breaker_threshold})")
    parser.add_argument("--breaker-reset", type=float,
                        default=defaults.breaker_reset, metavar="SEC",
                        help="seconds before an open breaker re-probes the "
                             f"pool (default {defaults.breaker_reset})")
    parser.add_argument("--no-inline-fallback", action="store_true",
                        help="fail requests instead of replaying inline "
                             "when the worker pool is unhealthy")
    args = parser.parse_args(argv)

    resilience = ResilienceConfig(
        hang_timeout=args.hang_timeout if args.hang_timeout else None,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        inline_fallback=not args.no_inline_fallback,
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue,
        store_root=args.store,
        read_timeout=args.read_timeout,
        request_timeout=args.request_timeout,
        drain_grace=args.drain_grace,
        partition_shards=args.partition_shards,
        partition_min_records=args.partition_min_records,
        resilience=resilience,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def _stats(argv) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.metrics import render_snapshot

    parser = argparse.ArgumentParser(prog="python -m repro.serve stats")
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    with ServeClient(args.server) as client:
        snap = client.stats()
    if args.as_json:
        print(json.dumps(snap, indent=2, sort_keys=True))
    else:
        print(render_snapshot(snap))
    return 0


def _parse_fault(raw: str):
    """``point=probability[:max_fires[:skip_first]]`` -> (point, FaultSpec)."""
    from repro.faultline import FaultSpec

    point, sep, schedule = raw.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"fault must look like point=probability, got {raw!r}"
        )
    parts = schedule.split(":")
    try:
        spec = FaultSpec(
            probability=float(parts[0]),
            max_fires=int(parts[1]) if len(parts) > 1 and parts[1] else None,
            skip_first=int(parts[2]) if len(parts) > 2 else 0,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return point, spec


def _chaos(argv) -> int:
    from repro.faultline import FAULT_POINTS
    from repro.serve.chaos import render_report, run_chaos

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve chaos",
        description="Seeded fault-injection run against a private server; "
                    "asserts every request is bit-correct or a typed error.",
    )
    parser.add_argument("--seed", type=int, required=True,
                        help="fault-schedule seed (a failing run is "
                             "reproduced by its seed)")
    parser.add_argument("--fault", action="append", default=None,
                        metavar="POINT=P[:MAX[:SKIP]]", type=_parse_fault,
                        help="arm a fault point, e.g. worker.crash.midjob=0.3 "
                             f"(points: {', '.join(FAULT_POINTS)}); "
                             "repeatable. Default: a mixed storm.")
    parser.add_argument("--requests", type=int, default=24)
    parser.add_argument("--concurrency", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--workload", default="fft")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--analysis", default="eraser.full", metavar="SPEC",
                        help="analysis spec key to replay (default "
                             "eraser.full)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    if args.fault:
        points = dict(args.fault)
    else:
        points = {
            "serve.busy": 0.15,
            "serve.conn.reset": 0.1,
            "worker.crash.midjob": 0.2,
            "store.read.corrupt": 0.1,
            "store.write.partial": 0.1,
        }
    report = run_chaos(
        seed=args.seed, points=points, requests=args.requests,
        concurrency=args.concurrency, workers=args.workers,
        workload=args.workload, scale=args.scale, spec=args.analysis,
    )
    print(render_report(report))
    if args.out:
        import pathlib

        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"[wrote {out_path}]")
    return 0 if report.invariant_ok else 1


def _shutdown(argv) -> int:
    from repro.serve.client import ServeClient

    parser = argparse.ArgumentParser(prog="python -m repro.serve shutdown")
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    args = parser.parse_args(argv)

    with ServeClient(args.server) as client:
        client.request_shutdown()
    print("shutdown requested")
    return 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "stats":
        return _stats(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.serve.loadgen import main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos(argv[1:])
    if argv and argv[0] == "shutdown":
        return _shutdown(argv[1:])
    if argv and argv[0] == "serve":
        argv = argv[1:]
    return _serve(argv)


if __name__ == "__main__":
    sys.exit(main())
