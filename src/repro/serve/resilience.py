"""Client- and scheduler-side resilience primitives.

Two small, dependency-free machines shared across the serving stack:

* :class:`RetryPolicy` — exponential backoff with jitter and a
  cumulative sleep *budget*.  Jitter comes from a seedable RNG so chaos
  tests replay identical retry schedules.
* :class:`CircuitBreaker` — classic closed / open / half-open.  Used by
  :class:`repro.serve.client.ServeClient` to stop hammering a failing
  server, and by :class:`repro.serve.scheduler.ReplayScheduler` to stop
  dispatching onto a flapping worker pool (failing over to inline
  execution instead).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Iterator, Optional

from repro.serve.config import ResilienceConfig


class RetryPolicy:
    """Backoff schedule for one logical request.

    ``delays()`` yields at most ``max_attempts - 1`` sleeps, stopping
    early when the cumulative ``retry_budget`` would be exceeded.
    """

    def __init__(self, config: ResilienceConfig,
                 seed: Optional[int] = None) -> None:
        self.config = config
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        config = self.config
        backoff = config.backoff_base
        spent = 0.0
        for _ in range(max(0, config.max_attempts - 1)):
            delay = min(backoff, config.backoff_max)
            if config.backoff_jitter > 0:
                # full-jitter on the configured fraction: delay keeps a
                # (1 - jitter) floor so retries still spread out
                floor = delay * (1.0 - config.backoff_jitter)
                delay = floor + self._rng.random() * (delay - floor)
            if spent + delay > config.retry_budget:
                return
            spent += delay
            yield delay
            backoff *= config.backoff_factor


class CircuitBreaker:
    """Closed / open / half-open breaker; thread-safe.

    ``allow()`` answers "may I attempt now?":

    * **closed** — yes, always;
    * **open** — no, until ``reset_timeout`` has elapsed, then the
      breaker half-opens and admits exactly one probe;
    * **half-open** — no (someone else holds the probe).

    ``record_success`` closes from any state; ``record_failure`` counts
    toward ``failure_threshold`` and re-opens a half-open breaker
    immediately (the probe failed).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 5.0,
                 clock=time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0  # closed/half-open -> open transitions

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            return self.HALF_OPEN  # would admit a probe
        return self._state

    def allow(self) -> bool:
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if (self._state == self.OPEN
                    and self._clock() - self._opened_at >= self.reset_timeout):
                self._state = self.HALF_OPEN
                return True  # this caller is the probe
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            tripped = (self._state == self.HALF_OPEN
                       or self._consecutive_failures >= self.failure_threshold)
            if tripped and self._state != self.OPEN:
                self.trips += 1
            if tripped:
                self._state = self.OPEN
                self._opened_at = self._clock()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._peek_state(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
            }
