"""Load generator for the analysis daemon.

Replays a request mix against a running server at a target rate and
reports throughput, latency percentiles (overall / cache-hit / cold
replay), and the error/busy breakdown — the amortization story of a
resident daemon in one JSON record::

    python -m repro.serve loadgen --server 127.0.0.1:7091 \\
        --workload fft --spec eraser.full --requests 100 \\
        --concurrency 4 --out benchmarks/artifacts/serve_loadgen.json

Clients retry transient failures (BUSY, resets, worker crashes) through
the resilience layer by default, so ``busy`` counts *exhausted* retry
budgets, not transient rejections; pass ``--no-retry`` for the raw
fail-fast view, and ``--seed`` to make retry jitter reproducible.

Latencies here are measured client-side over the socket, exact (sorted
samples, no histogram estimation), so they compose with the server's
own STATS histograms as an end-to-end check.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import threading
import time
from typing import Callable, List, Optional

from repro.serve.client import (
    CircuitOpenError,
    RequestFailed,
    RetriesExhausted,
    ServeClient,
    ServeError,
    ServerBusy,
)
from repro.serve.config import ResilienceConfig


def percentile(samples: List[float], p: float) -> float:
    """Exact percentile over a sample list (nearest-rank interpolation)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class LoadGen:
    """Fires ``requests`` total requests from ``concurrency`` clients.

    ``client_factory`` (worker index -> client) swaps the per-worker
    client for anything with the ServeClient surface
    (``submit_digest_first`` / ``retry_stats`` / ``close``) — this is
    how :mod:`repro.cluster` points the same generator at a shard ring.
    ``stats_fetcher`` likewise overrides where the post-run server-side
    histogram tails come from (default: STATS from ``address``).
    """

    def __init__(self, address: str, specs: List[str], digest: str,
                 trace_bytes: bytes, requests: int, concurrency: int,
                 rate: Optional[float] = None, timeout: float = 300.0,
                 resilience: Optional[ResilienceConfig] = ResilienceConfig(),
                 seed: Optional[int] = None,
                 client_factory: Optional[Callable[[int], object]] = None,
                 stats_fetcher: Optional[Callable[[], dict]] = None) -> None:
        self.address = address
        self.specs = specs
        self.digest = digest
        self.trace_bytes = trace_bytes
        self.requests = requests
        self.concurrency = max(1, concurrency)
        self.rate = rate
        self.timeout = timeout
        self.resilience = resilience
        self.seed = seed
        self.client_factory = client_factory
        self.stats_fetcher = stats_fetcher
        self._lock = threading.Lock()
        self._next = 0
        self.latencies_ms: List[float] = []
        self.cached_ms: List[float] = []
        self.uncached_ms: List[float] = []
        self.busy = 0
        self.breaker_open = 0
        self.errors: List[str] = []
        self.retry_stats = {
            "attempts": 0, "retries": 0, "busy_retried": 0,
            "transport_retried": 0, "code_retried": 0, "breaker_rejections": 0,
        }

    def _claim(self) -> Optional[int]:
        with self._lock:
            if self._next >= self.requests:
                return None
            index = self._next
            self._next += 1
            return index

    def _worker(self, worker_index: int, started_at: float) -> None:
        if self.client_factory is not None:
            client = self.client_factory(worker_index)
        else:
            retry_seed = None if self.seed is None else self.seed + worker_index
            client = ServeClient(self.address, timeout=self.timeout,
                                 resilience=self.resilience,
                                 retry_seed=retry_seed)
        with client:
            while True:
                index = self._claim()
                if index is None:
                    break
                if self.rate:
                    target = started_at + index / self.rate
                    delay = target - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                spec = self.specs[index % len(self.specs)]
                begin = time.perf_counter()
                try:
                    response = client.submit_digest_first(
                        spec, self.digest, self.trace_bytes
                    )
                except (ServerBusy, RetriesExhausted):
                    with self._lock:
                        self.busy += 1
                    continue
                except CircuitOpenError:
                    with self._lock:
                        self.breaker_open += 1
                    continue
                except RequestFailed as exc:
                    with self._lock:
                        self.errors.append(str(exc))
                    continue
                except (ServeError, OSError) as exc:
                    with self._lock:
                        self.errors.append(f"{type(exc).__name__}: {exc}")
                    continue
                elapsed_ms = (time.perf_counter() - begin) * 1000.0
                with self._lock:
                    self.latencies_ms.append(elapsed_ms)
                    if response.get("cached"):
                        self.cached_ms.append(elapsed_ms)
                    else:
                        self.uncached_ms.append(elapsed_ms)
        with self._lock:
            for key, value in client.retry_stats.items():
                self.retry_stats[key] += value

    def run(self) -> dict:
        started_at = time.perf_counter()
        threads = [
            threading.Thread(target=self._worker, args=(i, started_at),
                             name=f"loadgen-{i}", daemon=True)
            for i in range(self.concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started_at
        completed = len(self.latencies_ms)
        report = {
            "config": {
                "server": self.address,
                "specs": self.specs,
                "trace_digest": self.digest,
                "requests": self.requests,
                "concurrency": self.concurrency,
                "rate": self.rate,
                "retry": self.resilience is not None,
                "seed": self.seed,
            },
            "wall_seconds": wall,
            "completed": completed,
            "busy": self.busy,
            "breaker_open": self.breaker_open,
            "errors": len(self.errors),
            "error_samples": self.errors[:5],
            "resilience": dict(self.retry_stats),
            "throughput_rps": completed / wall if wall > 0 else 0.0,
            "latency_ms": {
                "p50": percentile(self.latencies_ms, 50),
                "p95": percentile(self.latencies_ms, 95),
                "p99": percentile(self.latencies_ms, 99),
                "max": max(self.latencies_ms, default=0.0),
            },
            "cold_replay_ms": {
                "count": len(self.uncached_ms),
                "mean": (sum(self.uncached_ms) / len(self.uncached_ms)
                         if self.uncached_ms else 0.0),
                "p50": percentile(self.uncached_ms, 50),
                "p95": percentile(self.uncached_ms, 95),
                "p99": percentile(self.uncached_ms, 99),
            },
            "cache_hit_ms": {
                "count": len(self.cached_ms),
                "mean": (sum(self.cached_ms) / len(self.cached_ms)
                         if self.cached_ms else 0.0),
                "p50": percentile(self.cached_ms, 50),
                "p95": percentile(self.cached_ms, 95),
                "p99": percentile(self.cached_ms, 99),
            },
            "server_latency_ms": self._server_histograms(),
        }
        cold = report["cold_replay_ms"]["p50"]
        hit = report["cache_hit_ms"]["p50"]
        if cold and hit:
            report["amortization_speedup"] = cold / hit
        return report

    def _server_histograms(self) -> dict:
        """Server-side latency tails from the daemon's STATS histograms.

        Complements the exact client-side samples above: the server's
        log-bucket histograms cover *its* view of every request (and,
        via :func:`repro.cluster.stats.merge_snapshots` in the cluster
        loadgen, all shards at once), so single-node and cluster tails
        are comparable like-for-like.  Best-effort: an unreachable or
        draining server yields ``{}``, never a failed run.
        """
        try:
            if self.stats_fetcher is not None:
                snap = self.stats_fetcher()
            else:
                with ServeClient(self.address, timeout=self.timeout) as client:
                    snap = client.stats()
        except (ServeError, OSError) as exc:
            return {"error": f"{type(exc).__name__}: {exc}"}
        tails = {}
        for name in ("request_latency_ms", "latency_cached_ms",
                     "latency_replay_ms"):
            summary = snap.get("histograms", {}).get(name)
            if not summary or not summary.get("count"):
                continue
            tails[name] = {
                "count": summary["count"],
                "mean": summary.get("mean", 0.0),
                "p50": summary.get("p50", 0.0),
                "p95": summary.get("p95", 0.0),
                "p99": summary.get("p99", 0.0),
                "max": summary.get("max", 0.0),
            }
        return tails


def render_report(report: dict) -> str:
    latency = report["latency_ms"]
    lines = [
        f"completed {report['completed']}/{report['config']['requests']} "
        f"in {report['wall_seconds']:.2f}s "
        f"({report['throughput_rps']:.1f} req/s), "
        f"busy {report['busy']}, errors {report['errors']}",
        f"latency p50 {latency['p50']:.2f}ms  p95 {latency['p95']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms  max {latency['max']:.2f}ms",
        f"cold replay: n={report['cold_replay_ms']['count']} "
        f"p50 {report['cold_replay_ms']['p50']:.2f}ms",
        f"cache hit:   n={report['cache_hit_ms']['count']} "
        f"p50 {report['cache_hit_ms']['p50']:.2f}ms",
    ]
    resilience = report.get("resilience")
    if resilience and resilience.get("retries"):
        lines.append(
            f"retries: {resilience['retries']} "
            f"(busy {resilience['busy_retried']}, "
            f"transport {resilience['transport_retried']}, "
            f"transient-code {resilience['code_retried']}); "
            f"breaker rejections {resilience['breaker_rejections']}"
        )
    server_tail = (report.get("server_latency_ms") or {}).get(
        "request_latency_ms"
    )
    if server_tail:
        lines.append(
            f"server view: p50 {server_tail['p50']:.2f}ms  "
            f"p95 {server_tail['p95']:.2f}ms  p99 {server_tail['p99']:.2f}ms "
            f"(histogram, n={server_tail['count']})"
        )
    if "amortization_speedup" in report:
        lines.append(
            f"amortization: cache hit {report['amortization_speedup']:.1f}x "
            "faster than cold replay"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve loadgen",
        description="Replay a request mix against a repro.serve daemon.",
    )
    parser.add_argument("--server", required=True, metavar="HOST:PORT")
    parser.add_argument("--workload", default="fft",
                        help="workload whose trace the requests replay")
    parser.add_argument("--spec", action="append", default=None,
                        help="analysis spec key(s); repeat for a mix "
                             "(default: eraser.full)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--rate", type=float, default=None,
                        help="target request rate in req/s (default: unpaced)")
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--no-retry", action="store_true",
                        help="fail fast: disable the retry/backoff layer")
    parser.add_argument("--max-attempts", type=int, default=None,
                        help="retry attempts per request "
                             "(default: ResilienceConfig.max_attempts)")
    parser.add_argument("--retry-budget", type=float, default=None,
                        help="cumulative backoff sleep budget in seconds")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed retry jitter for reproducible schedules")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    from repro.trace.store import TraceStore
    from repro.workloads import ALL

    if args.workload not in ALL:
        parser.error(f"unknown workload {args.workload!r}")
    specs = args.spec or ["eraser.full"]

    if args.no_retry:
        resilience = None
    else:
        overrides = {}
        if args.max_attempts is not None:
            overrides["max_attempts"] = args.max_attempts
        if args.retry_budget is not None:
            overrides["retry_budget"] = args.retry_budget
        resilience = ResilienceConfig(**overrides)

    with tempfile.TemporaryDirectory(prefix="alda-loadgen-") as tmp:
        store = TraceStore(tmp)
        workload = ALL[args.workload]
        reader = store.get_or_record(workload, args.scale)
        trace_bytes = store.trace_path(workload, args.scale).read_bytes()

        gen = LoadGen(args.server, specs, reader.digest, trace_bytes,
                      args.requests, args.concurrency, args.rate, args.timeout,
                      resilience=resilience, seed=args.seed)
        report = gen.run()
    report["config"]["workload"] = args.workload
    report["config"]["scale"] = args.scale

    print(render_report(report))
    if args.out:
        import pathlib

        out_path = pathlib.Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[wrote {out_path}]")
    return 0 if not gen.errors else 1
