"""Flow-insensitive, context-insensitive Andersen-style points-to analysis.

Abstract objects are allocation sites:

* ``("stack", fname, reg)``     — an ``Alloca`` result;
* ``("heap", fname, label, i)`` — a ``malloc``/``calloc`` call site;
* ``("global", name)``          — a module global.

Every ``(function, register)`` pair gets a points-to set over those
objects, or the distinguished :data:`TOP` ("may point anywhere") once a
pointer is laundered through arithmetic the analysis does not model.
The analysis is whole-module: call argument/return binding flows sets
between functions (including ``spawn$f`` thread starts), and a
``contents`` map tracks which objects are stored *inside* each object so
loads recover pointers that round-trip through memory.  ``memcpy`` and
``strcpy`` copy contents between their operands' objects.

Because the analysis is context-insensitive, points-to sets are already
in module-global object terms — the mod/ref summaries built on top
(:mod:`repro.staticpass.modref`) need no per-call-site substitution.

The fixpoint is *optimistic*: an address register whose set is still
empty contributes nothing while solving (it may simply not have
converged yet), and a residual pass afterwards accounts for stores the
final solution never attributed to an object (they go to
``stored_unknown``, which conservatively feeds every object's
contents).  Query-time emptiness is conservative the other way:
``address_pts`` reports an unattributable address as :data:`TOP`.

On top of the points-to solution the pass computes an *interprocedural
escape set*: the stack objects some other thread could reach.  A stack
object escapes when its address is passed to a spawned thread or an
extern, laundered through unmodeled arithmetic, returned from its
frame, stored through an unknown address, or stored (transitively)
inside a global or another escaped object.  Passing an address to a
callee that merely loads/stores through it — or to a ``libc`` builtin,
none of which retain pointers — does **not** escape it; that is the
whole point over the intra-procedural analysis in
:mod:`repro.staticpass.escape`, where every call argument escapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

from repro.ir.instructions import Alloca, BinOp, Call, Load, Ret, Store
from repro.ir.module import Module
from repro.staticpass.callgraph import CallGraph, classify_callee

#: "may point anywhere" sentinel for points-to sets.
TOP = "TOP"

Obj = Tuple  # ("stack"|"heap"|"global", ...)
PtsSet = Union[str, FrozenSet[Obj]]  # TOP or a frozenset of objects

#: builtins that copy the pointed-to *contents* of arg 1 into arg 0.
_CONTENT_COPIES = ("memcpy", "strcpy")


@dataclass
class AliasInfo:
    """Solved points-to facts for one module."""

    module: Module
    graph: CallGraph
    #: (fname, reg) -> frozenset of objects, or TOP
    var_pts: Dict[Tuple[str, str], PtsSet] = field(default_factory=dict)
    #: object -> objects stored inside it
    contents: Dict[Obj, FrozenSet[Obj]] = field(default_factory=dict)
    #: objects whose contents may include unmodeled pointers
    contents_top: FrozenSet[Obj] = frozenset()
    #: objects stored through addresses the analysis cannot name
    stored_unknown: FrozenSet[Obj] = frozenset()
    #: objects another thread (or an extern) could reach
    escaped: FrozenSet[Obj] = frozenset()
    #: global address -> global object (for immediate addresses)
    global_addrs: Dict[int, Obj] = field(default_factory=dict)

    def operand_pts(self, fname: str, operand) -> PtsSet:
        """Points-to set of a *value* operand (ints are plain data
        unless they spell a global's address)."""
        if type(operand) is int:
            obj = self.global_addrs.get(operand)
            return frozenset((obj,)) if obj is not None else frozenset()
        pts = self.var_pts.get((fname, operand))
        return frozenset() if pts is None else pts

    def address_pts(self, fname: str, operand) -> PtsSet:
        """Points-to set of an *address* operand; an address the
        analysis cannot attribute to any object is :data:`TOP`."""
        pts = self.operand_pts(fname, operand)
        if pts is TOP or not pts:
            return TOP
        return pts

    def stack_local(self, fname: str, operand) -> bool:
        """True when every object the address may name is a
        non-escaping stack slot — single-thread-confined memory."""
        pts = self.operand_pts(fname, operand)
        if pts is TOP or not pts:
            return False
        return all(obj[0] == "stack" and obj not in self.escaped for obj in pts)


class _Solver:
    def __init__(self, module: Module, graph: CallGraph) -> None:
        self.module = module
        self.graph = graph
        self.pts: Dict[Tuple[str, str], Set[Obj]] = {}
        self.top: Set[Tuple[str, str]] = set()
        self.contents: Dict[Obj, Set[Obj]] = {}
        self.contents_top: Set[Obj] = set()
        self.stored_unknown: Set[Obj] = set()
        #: a value the analysis cannot name was stored somewhere unknown
        self.unknown_everywhere = False
        self.ret_pts: Dict[str, Set[Obj]] = {}
        self.ret_top: Set[str] = set()
        self.laundered: Set[Obj] = set()  # pointer fed to unmodeled arithmetic
        self.extern_args: Set[Obj] = set()
        self.spawn_args: Set[Obj] = set()
        self.returned: Set[Obj] = set()
        self.global_addrs: Dict[int, Obj] = {}
        self.changed = False

    # -- lattice helpers ------------------------------------------------
    def add_var(self, key: Tuple[str, str], objs) -> None:
        if key in self.top:
            return
        if objs is TOP:
            self.top.add(key)
            self.changed = True
            return
        if not objs:
            return
        target = self.pts.setdefault(key, set())
        before = len(target)
        target |= objs
        if len(target) != before:
            self.changed = True

    def var_value(self, fname: str, operand) -> PtsSet:
        if type(operand) is int:
            obj = self.global_addrs.get(operand)
            return frozenset((obj,)) if obj is not None else frozenset()
        key = (fname, operand)
        if key in self.top:
            return TOP
        return frozenset(self.pts.get(key, ()))

    def effective_contents(self, obj: Obj) -> PtsSet:
        if obj in self.contents_top or self.unknown_everywhere:
            return TOP
        return frozenset(self.contents.get(obj, set()) | self.stored_unknown)

    def store_into(self, obj: Obj, value: PtsSet) -> None:
        if value is TOP:
            if obj not in self.contents_top:
                self.contents_top.add(obj)
                self.changed = True
            return
        if not value:
            return
        target = self.contents.setdefault(obj, set())
        before = len(target)
        target |= value
        if len(target) != before:
            self.changed = True

    def store_unknown(self, value: PtsSet) -> None:
        if value is TOP:
            if not self.unknown_everywhere:
                self.unknown_everywhere = True
                self.changed = True
            return
        before = len(self.stored_unknown)
        self.stored_unknown |= value
        if len(self.stored_unknown) != before:
            self.changed = True

    def _grow(self, attr: str, value: Set[Obj]) -> None:
        target = getattr(self, attr)
        before = len(target)
        target |= value
        if len(target) != before:
            self.changed = True

    # -- driver ----------------------------------------------------------
    def solve(self) -> AliasInfo:
        from repro.vm.memory import AddressSpace

        cursor = AddressSpace.GLOBALS_BASE
        for name, size in self.module.globals.items():
            self.global_addrs[cursor] = ("global", name)
            cursor += (size + 63) & ~63  # mirrors Interpreter._layout_globals

        while True:
            self.changed = True
            while self.changed:
                self.changed = False
                self._sweep(residual=False)
            # account for stores through addresses the converged solution
            # never attributed to any object
            self.changed = False
            self._sweep(residual=True)
            if not self.changed:
                break
        escaped = self._close_escapes()
        var_pts: Dict[Tuple[str, str], PtsSet] = {
            key: frozenset(objs) for key, objs in self.pts.items()
        }
        for key in self.top:
            var_pts[key] = TOP
        return AliasInfo(
            module=self.module,
            graph=self.graph,
            var_pts=var_pts,
            contents={o: frozenset(s) for o, s in self.contents.items()},
            contents_top=frozenset(self.contents_top),
            stored_unknown=frozenset(self.stored_unknown),
            escaped=frozenset(escaped),
            global_addrs=dict(self.global_addrs),
        )

    def _sweep(self, residual: bool) -> None:
        for fname, function in self.module.functions.items():
            for label, block in function.blocks.items():
                for index, instr in enumerate(block.instructions):
                    self._transfer(fname, label, index, instr, residual)

    # -- constraint application ------------------------------------------
    def _transfer(self, fname: str, label: str, index: int, instr,
                  residual: bool) -> None:
        if isinstance(instr, Alloca):
            self.add_var((fname, instr.result), {("stack", fname, instr.result)})
        elif isinstance(instr, BinOp):
            lhs = self.var_value(fname, instr.lhs)
            rhs = self.var_value(fname, instr.rhs)
            if instr.op in ("add", "sub"):
                for side in (lhs, rhs):
                    self.add_var((fname, instr.result), side)
            else:
                for side in (lhs, rhs):
                    if side is TOP:
                        self.add_var((fname, instr.result), TOP)
                    elif side:
                        # unmodeled arithmetic launders the pointer
                        self.add_var((fname, instr.result), TOP)
                        self._grow("laundered", side)
        elif isinstance(instr, Load):
            address = self.var_value(fname, instr.address)
            if address is TOP:
                self.add_var((fname, instr.result), TOP)
            else:
                for obj in address:
                    self.add_var(
                        (fname, instr.result), self.effective_contents(obj)
                    )
        elif isinstance(instr, Store):
            value = self.var_value(fname, instr.value)
            address = self.var_value(fname, instr.address)
            if address is TOP:
                self.store_unknown(value)
            elif address:
                for obj in address:
                    self.store_into(obj, value)
            elif residual and type(instr.address) is str:
                # converged yet unattributable register address: the
                # store may hit anything.  (An int immediate that names
                # no global points at untracked memory — benign.)
                self.store_unknown(value)
        elif isinstance(instr, Ret):
            if instr.value is not None:
                value = self.var_value(fname, instr.value)
                if value is TOP:
                    if fname not in self.ret_top:
                        self.ret_top.add(fname)
                        self.changed = True
                else:
                    target = self.ret_pts.setdefault(fname, set())
                    before = len(target)
                    target |= value
                    if len(target) != before:
                        self.changed = True
                    self._grow("returned", set(value))
        elif isinstance(instr, Call):
            self._transfer_call(fname, label, index, instr, residual)

    def _bind_params(self, caller: str, callee: str, args) -> None:
        params = self.module.functions[callee].params
        for param, arg in zip(params, args):
            self.add_var((callee, param), self.var_value(caller, arg))

    def _transfer_call(self, fname: str, label: str, index: int, instr: Call,
                       residual: bool) -> None:
        kind, target = classify_callee(self.module, instr.callee)
        if kind == "direct":
            self._bind_params(fname, target, instr.args)
            if instr.result:
                if target in self.ret_top:
                    self.add_var((fname, instr.result), TOP)
                else:
                    self.add_var(
                        (fname, instr.result),
                        frozenset(self.ret_pts.get(target, ())),
                    )
        elif kind == "spawn":
            self._bind_params(fname, target, instr.args)
            for arg in instr.args:
                value = self.var_value(fname, arg)
                if value is not TOP:
                    self._grow("spawn_args", set(value))
        elif kind == "global_addr":
            if instr.result:
                self.add_var((fname, instr.result), {("global", target)})
        elif kind in ("sync", "join"):
            pass  # lock addresses / thread ids are not retained as pointers
        elif kind == "builtin":
            if target in ("malloc", "calloc") and instr.result:
                self.add_var(
                    (fname, instr.result), {("heap", fname, label, index)}
                )
            elif target in _CONTENT_COPIES and len(instr.args) >= 2:
                self._content_copy(fname, instr, residual)
            # other builtins neither produce nor retain pointers
        else:  # extern: arguments escape, result is unknown
            for arg in instr.args:
                value = self.var_value(fname, arg)
                if value is not TOP:
                    self._grow("extern_args", set(value))
            if instr.result:
                self.add_var((fname, instr.result), TOP)

    def _content_copy(self, fname: str, instr: Call, residual: bool) -> None:
        dst = self.var_value(fname, instr.args[0])
        src = self.var_value(fname, instr.args[1])
        if src is TOP or (not src and residual and type(instr.args[1]) is str):
            inner: PtsSet = TOP  # copying from memory we cannot read
        elif not src:
            return  # unconverged or untracked source: nothing to copy yet
        else:
            objs: Set[Obj] = set()
            inner = objs
            for obj in src:
                got = self.effective_contents(obj)
                if got is TOP:
                    inner = TOP
                    break
                objs |= got
        if dst is TOP or (not dst and residual and type(instr.args[0]) is str):
            self.store_unknown(TOP if inner is TOP else frozenset(inner))
        elif dst:
            for obj in dst:
                self.store_into(obj, TOP if inner is TOP else frozenset(inner))

    # -- escape closure --------------------------------------------------
    def _close_escapes(self) -> Set[Obj]:
        escape: Set[Obj] = set()
        escape |= self.extern_args
        escape |= self.spawn_args
        escape |= self.returned
        escape |= self.laundered
        escape |= self.stored_unknown
        if self.unknown_everywhere:
            escape |= set(self.contents)
            escape |= self.contents_top
        # globals are reachable by any thread: their contents escape
        worklist = [("global", name) for name in self.module.globals]
        worklist.extend(escape)
        seen: Set[Obj] = set(worklist)
        while worklist:
            obj = worklist.pop()
            if obj[0] != "global":
                escape.add(obj)
            inner = self.effective_contents(obj)
            if inner is TOP:
                # The unmodeled pointers themselves surface as TOP
                # addresses (never elidable), but any *concretely*
                # recorded contents are still reachable through this
                # object and must keep escaping.
                inner = self.contents.get(obj, set()) | self.stored_unknown
            for reached in inner:
                if reached not in seen:
                    seen.add(reached)
                    worklist.append(reached)
        return escape


def analyze_aliases(module: Module, graph: Optional[CallGraph] = None) -> AliasInfo:
    """Solve points-to and escape facts for one module."""
    if graph is None:
        from repro.staticpass.callgraph import build_call_graph

        graph = build_call_graph(module)
    return _Solver(module, graph).solve()
