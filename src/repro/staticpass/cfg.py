"""Control-flow graphs over :class:`repro.ir.module.Function`.

``build_cfg`` is the entry point of every static pass: it turns a
function's labeled blocks into an explicit graph (successor and
predecessor edges, reverse-postorder), collects the register definition
map, and rejects structurally malformed functions with *typed* errors
so callers can distinguish "this module is broken" from a crash inside
a pass:

* :class:`MissingLabelError` — a branch or jump names a label the
  function does not define;
* :class:`MissingTerminatorError` — a block is empty or falls through
  off the end of the function (its last instruction is not a
  terminator), or a terminator appears before the end of a block;
* :class:`DuplicateDefinitionError` — a register is defined twice
  (including redefinition of a parameter).  The passes in this package
  assume single static assignment, which :class:`repro.ir.builder.IRBuilder`
  guarantees via fresh register names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.instructions import TERMINATORS, Br, Instruction, Jmp
from repro.ir.module import Function

#: A site names one instruction: (block label, index within the block).
Site = Tuple[str, int]


class StaticPassError(IRError):
    """Base class for structural errors raised by the static passes."""


class CFGError(StaticPassError):
    """The function cannot be turned into a well-formed CFG."""


class MissingLabelError(CFGError):
    """A branch/jump targets a label the function does not define."""


class MissingTerminatorError(CFGError):
    """A block is empty, falls through off the end of the function, or
    places a terminator before the end of the block."""


class DuplicateDefinitionError(CFGError):
    """A register has more than one static definition."""


@dataclass
class BlockNode:
    """One basic block plus its graph edges."""

    label: str
    instructions: List[Instruction]
    succs: List[str] = field(default_factory=list)
    preds: List[str] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1]


@dataclass
class CFG:
    """Explicit control-flow graph for one function.

    ``defs`` maps every register (parameters included) to its defining
    site; parameters are recorded with the pseudo-site ``("<params>",
    position)``.  ``rpo`` lists the labels of the blocks reachable from
    the entry in reverse postorder — the iteration order every forward
    pass in this package uses.
    """

    function: Function
    entry: str
    blocks: Dict[str, BlockNode]
    defs: Dict[str, Site]
    rpo: List[str]

    @property
    def name(self) -> str:
        return self.function.name

    def reachable(self, label: str) -> bool:
        return label in self._rpo_index

    def rpo_index(self, label: str) -> int:
        return self._rpo_index[label]

    def __post_init__(self) -> None:
        self._rpo_index = {label: i for i, label in enumerate(self.rpo)}


def _successors(function: Function, label: str, term: Instruction) -> List[str]:
    if isinstance(term, Br):
        targets = [term.then_label, term.else_label]
    elif isinstance(term, Jmp):
        targets = [term.label]
    else:  # Ret
        return []
    for target in targets:
        if target not in function.blocks:
            raise MissingLabelError(
                f"{function.name}:{label}: branch to missing label {target!r}"
            )
    return targets


def build_cfg(function: Function) -> CFG:
    """Build the CFG for one function, raising typed errors on malformed
    input (see the module docstring for the error taxonomy)."""
    if function.entry not in function.blocks:
        raise MissingLabelError(
            f"{function.name}: entry block {function.entry!r} does not exist"
        )

    defs: Dict[str, Site] = {}
    for position, param in enumerate(function.params):
        if param in defs:
            raise DuplicateDefinitionError(
                f"{function.name}: parameter {param!r} declared twice"
            )
        defs[param] = ("<params>", position)

    blocks: Dict[str, BlockNode] = {}
    for label, block in function.blocks.items():
        instructions = block.instructions
        if not instructions:
            raise MissingTerminatorError(
                f"{function.name}:{label}: empty block (no terminator)"
            )
        if not isinstance(instructions[-1], TERMINATORS):
            raise MissingTerminatorError(
                f"{function.name}:{label}: control falls through off the "
                f"function end (last instruction "
                f"{type(instructions[-1]).__name__} is not a terminator)"
            )
        for index, instr in enumerate(instructions[:-1]):
            if isinstance(instr, TERMINATORS):
                raise MissingTerminatorError(
                    f"{function.name}:{label}[{index}]: terminator in the "
                    f"middle of a block"
                )
        for index, instr in enumerate(instructions):
            result = getattr(instr, "result", None)
            if result:
                if result in defs:
                    raise DuplicateDefinitionError(
                        f"{function.name}:{label}[{index}]: register "
                        f"{result!r} defined twice (first at "
                        f"{defs[result][0]}[{defs[result][1]}])"
                    )
                defs[result] = (label, index)
        blocks[label] = BlockNode(label, instructions)

    for label, node in blocks.items():
        node.succs = _successors(function, label, node.terminator)
    for label, node in blocks.items():
        for succ in node.succs:
            blocks[succ].preds.append(label)

    return CFG(function, function.entry, blocks, defs,
               _reverse_postorder(blocks, function.entry))


def _reverse_postorder(blocks: Dict[str, BlockNode], entry: str) -> List[str]:
    """Iterative DFS postorder, reversed; only reachable blocks appear."""
    seen = {entry}
    order: List[str] = []
    stack: List[Tuple[str, int]] = [(entry, 0)]
    while stack:
        label, edge = stack[-1]
        succs = blocks[label].succs
        if edge < len(succs):
            stack[-1] = (label, edge + 1)
            succ = succs[edge]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(label)
    order.reverse()
    return order


def module_cfgs(module) -> Dict[str, CFG]:
    """CFGs for every function in a module (raises on the first
    malformed one)."""
    return {name: build_cfg(fn) for name, fn in module.functions.items()}


def site_instruction(cfg: CFG, site: Site) -> Optional[Instruction]:
    """The instruction at ``site``, or None if out of range."""
    node = cfg.blocks.get(site[0])
    if node is None or not 0 <= site[1] < len(node.instructions):
        return None
    return node.instructions[site[1]]
