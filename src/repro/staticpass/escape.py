"""Conservative address/escape analysis for alloca-derived registers.

The question the elision pass needs answered per load/store site is:
*is this address provably a stack slot that no other thread (and no
callee) can observe?*  The analysis is deliberately blunt:

* **roots** — registers defined by ``Alloca``;
* **derived** — registers defined by an ``add``/``sub`` whose operands
  include exactly one alloca-derived register (pointer arithmetic off a
  slot; the other operand is treated as a plain offset);
* **escaped** — an alloca whose derived closure is used *anywhere*
  except as a load/store address, as a compare operand, as a branch
  condition, or as the pointer side of further ``add``/``sub``
  arithmetic.  Stored values, call arguments, return values, alloca
  sizes and every other binop all count as escapes — if the address can
  flow into memory, into a callee, or out of the function, another
  thread (or a re-entrant call) could reach the slot and the pass must
  not call it local.

``address_class`` then classifies an address operand: ``"stack_local"``
when it is a register derived only from non-escaping allocas,
``"unknown"`` otherwise (heap pointers, globals, immediates, anything
laundered through unsupported arithmetic).

Soundness note: a *derived* pointer is attributed to its root alloca
even when the offset walks out of the slot's bounds; in-bounds pointer
arithmetic is the same assumption every production race detector's
stack-local filter makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cmp,
    Load,
    Ret,
    Store,
)
from repro.staticpass.cfg import CFG

STACK_LOCAL = "stack_local"
UNKNOWN = "unknown"


@dataclass
class EscapeInfo:
    """Per-function escape facts (see module docstring)."""

    allocas: FrozenSet[str]
    escaped: FrozenSet[str]
    derived_from: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def address_class(self, operand) -> str:
        """``"stack_local"`` or ``"unknown"`` for one address operand."""
        if type(operand) is not str:
            return UNKNOWN  # immediate: globals or hand-written constants
        roots = self.derived_from.get(operand)
        if not roots:
            return UNKNOWN
        if roots & self.escaped:
            return UNKNOWN
        return STACK_LOCAL


def _instructions(cfg: CFG):
    for label, node in cfg.blocks.items():
        for index, instr in enumerate(node.instructions):
            yield label, index, instr


def analyze_escapes(cfg: CFG) -> EscapeInfo:
    allocas: Set[str] = set()
    for _, _, instr in _instructions(cfg):
        if isinstance(instr, Alloca):
            allocas.add(instr.result)

    # Derived closure: fixpoint because blocks are not guaranteed to be
    # topologically ordered (and loops feed registers forward anyway).
    derived: Dict[str, Set[str]] = {root: {root} for root in allocas}
    changed = True
    while changed:
        changed = False
        for _, _, instr in _instructions(cfg):
            if not isinstance(instr, BinOp) or instr.op not in ("add", "sub"):
                continue
            roots: Set[str] = set()
            for operand in (instr.lhs, instr.rhs):
                if type(operand) is str and operand in derived:
                    roots |= derived[operand]
            if roots and roots != derived.get(instr.result, set()):
                derived.setdefault(instr.result, set()).update(roots)
                changed = True

    escaped: Set[str] = set()

    def escape_uses(operands: Iterable[object]) -> None:
        for operand in operands:
            if type(operand) is str and operand in derived:
                escaped.update(derived[operand])

    for _, _, instr in _instructions(cfg):
        if isinstance(instr, Load):
            continue  # address use: allowed
        if isinstance(instr, Store):
            escape_uses([instr.value])  # the *stored value* escapes
        elif isinstance(instr, BinOp):
            if instr.op not in ("add", "sub"):
                escape_uses([instr.lhs, instr.rhs])
        elif isinstance(instr, (Cmp, Br)):
            continue  # compares/branch conditions never leak the address
        elif isinstance(instr, Call):
            escape_uses(instr.args)
        elif isinstance(instr, Ret):
            if instr.value is not None:
                escape_uses([instr.value])
        elif isinstance(instr, Alloca):
            escape_uses([instr.size])

    return EscapeInfo(
        allocas=frozenset(allocas),
        escaped=frozenset(escaped),
        derived_from={reg: frozenset(roots) for reg, roots in derived.items()},
    )


def classify_sites(cfg: CFG, info: EscapeInfo) -> List[Tuple[str, int, str, str]]:
    """Every load/store site with its address class:
    ``(label, index, "load"|"store", class)``."""
    sites = []
    for label, index, instr in _instructions(cfg):
        if isinstance(instr, Load):
            sites.append((label, index, "load", info.address_class(instr.address)))
        elif isinstance(instr, Store):
            sites.append((label, index, "store", info.address_class(instr.address)))
    return sites
