"""Per-function mod/ref summaries over the condensed call graph.

For the elision pass the interesting question at a call site is: *can
executing this callee (transitively) change the verdict an analysis
already rendered for some address?*  For the policy-gated analyses
(race detectors and allocation checkers) analysis state for an address
changes only when

* an instruction hook fires on a load/store of that address — captured
  by the callee's transitive ``mod``/``ref`` object sets (from
  :mod:`repro.staticpass.alias`);
* a synchronization hook fires (``mutex_lock``/``mutex_unlock``) —
  ``sync``;
* a thread is spawned — ``spawn``;
* allocation state changes (``malloc``/``calloc``/``free`` handlers,
  address reuse included) — ``heap``, which can only affect heap
  addresses: the VM's heap, global, and per-thread stack regions are
  disjoint;
* the callee reaches an extern or an exiting builtin whose effects the
  analysis cannot see — ``unknown``.

``libc`` routines that merely move program *bytes* (``memset``,
``memcpy``, ``gets``, …) fire no instruction hooks and are therefore
invisible to analysis state; their pointer effects matter only to the
alias analysis, not here.

Summaries are transitive: computed bottom-up over the SCC condensation,
with every member of a cycle sharing its component's summary.  A spawn
edge contributes only the ``spawn`` flag, not the spawned function's
mod/ref — the thread runs concurrently, and the elision pass separately
restricts cross-step facts to stack-confined addresses in threaded
modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.staticpass.alias import TOP, AliasInfo, Obj
from repro.staticpass.callgraph import CallGraph, classify_callee

#: builtins whose handlers mutate allocation state for the policy analyses.
HEAP_BUILTINS = ("malloc", "calloc", "free")

#: builtins that unwind the program/thread; treated as unknown because a
#: fact flowing past one would survive into code the exit semantics may
#: never run (and ``abort`` reports).
EXIT_BUILTINS = ("program_exit", "abort", "exit_thread")


@dataclass(frozen=True)
class FunctionSummary:
    """Transitive effect summary of one function (and its callees)."""

    mod: FrozenSet[Obj] = frozenset()
    ref: FrozenSet[Obj] = frozenset()
    #: a load/store through an address the alias analysis cannot name
    accesses_unknown: bool = False
    sync: bool = False
    spawn: bool = False
    heap: bool = False
    unknown: bool = False

    @property
    def opaque(self) -> bool:
        """True when no fact can survive a call to this function."""
        return self.sync or self.spawn or self.unknown or self.accesses_unknown

    @property
    def modref(self) -> FrozenSet[Obj]:
        return self.mod | self.ref


def _direct_summary(module: Module, fname: str, aliases: AliasInfo) -> Dict:
    mod: Set[Obj] = set()
    ref: Set[Obj] = set()
    flags = {"accesses_unknown": False, "sync": False, "spawn": False,
             "heap": False, "unknown": False}
    for label, block in module.functions[fname].blocks.items():
        for instr in block.instructions:
            if isinstance(instr, Load):
                pts = aliases.address_pts(fname, instr.address)
                if pts is TOP:
                    flags["accesses_unknown"] = True
                else:
                    ref |= pts
            elif isinstance(instr, Store):
                pts = aliases.address_pts(fname, instr.address)
                if pts is TOP:
                    flags["accesses_unknown"] = True
                else:
                    mod |= pts
            elif isinstance(instr, Call):
                kind, target = classify_callee(module, instr.callee)
                if kind == "sync":
                    flags["sync"] = True
                elif kind == "spawn":
                    flags["spawn"] = True
                elif kind == "builtin":
                    if target in HEAP_BUILTINS:
                        flags["heap"] = True
                    elif target in EXIT_BUILTINS:
                        flags["unknown"] = True
                elif kind == "extern":
                    flags["unknown"] = True
                # direct calls fold in transitively; join/global_addr are pure
    return {"mod": mod, "ref": ref, **flags}


def summarize_module(module: Module, graph: CallGraph,
                     aliases: AliasInfo) -> Dict[str, FunctionSummary]:
    """Transitive :class:`FunctionSummary` per function, bottom-up."""
    direct = {
        fname: _direct_summary(module, fname, aliases)
        for fname in module.functions
    }
    summaries: Dict[str, FunctionSummary] = {}
    for component in graph.sccs:  # bottom-up: callees before callers
        mod: Set[Obj] = set()
        ref: Set[Obj] = set()
        flags = {"accesses_unknown": False, "sync": False, "spawn": False,
                 "heap": False, "unknown": False}
        members = set(component)
        for fname in component:
            own = direct[fname]
            mod |= own["mod"]
            ref |= own["ref"]
            for flag in flags:
                flags[flag] = flags[flag] or own[flag]
            for callee in graph.edges.get(fname, ()):
                if callee in members:
                    continue  # same component: already folded in
                callee_summary = summaries[callee]
                mod |= callee_summary.mod
                ref |= callee_summary.ref
                flags["accesses_unknown"] |= callee_summary.accesses_unknown
                flags["sync"] |= callee_summary.sync
                flags["spawn"] |= callee_summary.spawn
                flags["heap"] |= callee_summary.heap
                flags["unknown"] |= callee_summary.unknown
            if graph.spawn_targets.get(fname):
                flags["spawn"] = True
        summary = FunctionSummary(
            mod=frozenset(mod), ref=frozenset(ref), **flags
        )
        for fname in component:
            summaries[fname] = summary
    return summaries


#: Summary used for calls whose effects need no accounting at all.
PURE = FunctionSummary()

#: Summary for heap-state-changing builtins.
HEAP_EFFECT = FunctionSummary(heap=True)

#: Summary that kills every fact.
OPAQUE = FunctionSummary(unknown=True)


def call_summary(module: Module, summaries: Dict[str, FunctionSummary],
                 callee: str) -> FunctionSummary:
    """Effect summary for one call target (any callee string)."""
    kind, target = classify_callee(module, callee)
    if kind == "direct":
        return summaries[target]
    if kind == "spawn":
        return FunctionSummary(spawn=True)
    if kind == "sync":
        return FunctionSummary(sync=True)
    if kind in ("join", "global_addr"):
        # join: the joining thread's own epoch survives a vector-clock
        # join unchanged, and no per-address state moves; global_addr is
        # pure address materialization.
        return PURE
    if kind == "builtin":
        if target in HEAP_BUILTINS:
            return HEAP_EFFECT
        if target in EXIT_BUILTINS:
            return OPAQUE
        return PURE
    return OPAQUE  # extern


def fact_survives(summary: FunctionSummary, pts) -> bool:
    """May an "already instrumented" fact for an address with points-to
    set ``pts`` survive a call with effect ``summary``?

    Requires the callee to be transparent (no sync/spawn/unknown), the
    address to be attributable (non-``TOP``), disjoint from everything
    the callee transitively loads or stores, and — when the callee
    touches allocation state — backed purely by stack objects, the one
    region ``malloc`` reuse can never clobber.
    """
    if summary.opaque:
        return False
    if pts is TOP or not pts:
        return not summary.heap and not summary.modref
    if pts & summary.modref:
        return False
    if summary.heap:
        return all(obj[0] == "stack" for obj in pts)
    return True
