"""Generic forward dataflow solving plus reaching definitions.

``solve_forward`` is the workhorse every flow-sensitive pass in this
package shares: a worklist fixpoint over the CFG in reverse postorder,
parameterized by the lattice operations (``meet``) and the per-block
``transfer`` function.  Block *out* facts are recomputed from scratch
each visit, so transfer functions may be arbitrary (not just gen/kill
bit vectors).

:func:`reaching_definitions` instantiates it for the classic problem:
which definition sites of each register may reach a program point.
With the SSA-form modules :class:`repro.ir.builder.IRBuilder` produces
every register has exactly one static definition, so the interesting
output is *whether* (not *which of several*) a definition reaches — the
elision pass uses the same block-walk discipline for its availability
analysis (:mod:`repro.staticpass.elide`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Tuple, TypeVar

from repro.staticpass.cfg import CFG, Site

Fact = TypeVar("Fact")


def solve_forward(
    cfg: CFG,
    entry_fact: Fact,
    transfer: Callable[[str, Fact], Fact],
    meet: Callable[[Fact, Fact], Fact],
) -> Dict[str, Fact]:
    """Forward fixpoint; returns the *in* fact of every reachable block.

    ``entry_fact`` seeds the entry block; a block whose predecessors
    have not all produced facts yet meets only the available ones
    (standard optimistic initialization: unvisited predecessors are
    top).
    """
    block_in: Dict[str, Fact] = {cfg.entry: entry_fact}
    block_out: Dict[str, Fact] = {}
    worklist = list(cfg.rpo)
    pending = set(worklist)
    while worklist:
        label = worklist.pop(0)
        pending.discard(label)
        if label != cfg.entry:
            fact: Optional[Fact] = None
            for pred in cfg.blocks[label].preds:
                out = block_out.get(pred)
                if out is None:
                    continue
                fact = out if fact is None else meet(fact, out)
            if fact is None:
                continue  # every predecessor still unvisited
            block_in[label] = fact
        out = transfer(label, block_in[label])
        if block_out.get(label) != out:
            block_out[label] = out
            for succ in cfg.blocks[label].succs:
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return block_in


#: A definition fact: (register, defining site).  Parameters use the
#: pseudo-site ("<params>", position) — see :class:`repro.staticpass.cfg.CFG`.
Definition = Tuple[str, Site]


@dataclass
class ReachingDefinitions:
    """Reaching-definition sets at block entry, plus point queries."""

    cfg: CFG
    block_in: Dict[str, FrozenSet[Definition]]

    def at(self, label: str, index: int) -> FrozenSet[Definition]:
        """Definitions reaching the instruction at ``(label, index)``
        (i.e. just before it executes)."""
        facts = set(self.block_in.get(label, frozenset()))
        for position, instr in enumerate(self.cfg.blocks[label].instructions):
            if position >= index:
                break
            result = getattr(instr, "result", None)
            if result:
                facts = {d for d in facts if d[0] != result}
                facts.add((result, (label, position)))
        return frozenset(facts)

    def reaching(self, label: str, index: int, register: str) -> FrozenSet[Site]:
        """Sites whose definition of ``register`` reaches the point."""
        return frozenset(
            site for reg, site in self.at(label, index) if reg == register
        )


def reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    entry = frozenset(
        (param, ("<params>", position))
        for position, param in enumerate(cfg.function.params)
    )

    def transfer(label: str, facts: FrozenSet[Definition]) -> FrozenSet[Definition]:
        out = set(facts)
        for index, instr in enumerate(cfg.blocks[label].instructions):
            result = getattr(instr, "result", None)
            if result:
                out = {d for d in out if d[0] != result}
                out.add((result, (label, index)))
        return frozenset(out)

    def meet(a: FrozenSet[Definition], b: FrozenSet[Definition]):
        return a | b  # may-reach: union

    return ReachingDefinitions(cfg, solve_forward(cfg, entry, transfer, meet))
