"""Interprocedural analysis bundle consumed by the elision pass.

``analyze_module`` runs the whole-module pipeline once per IR digest —
call graph (:mod:`repro.staticpass.callgraph`), Andersen points-to and
escape (:mod:`repro.staticpass.alias`), transitive mod/ref summaries
(:mod:`repro.staticpass.modref`), and locksets
(:mod:`repro.staticpass.lockset`) — and packages the answers the
elision pass asks behind an :class:`InterprocContext`:

* ``stack_local`` — may this address only name thread-confined stack
  memory?  (Grows the seed's intra-procedural ``stack_local`` tier:
  an alloca handed to a callee that neither stores nor leaks it stays
  local.)
* ``lock_protected`` — is this site's every aliased object consistently
  protected after thread start?
* ``filter_facts`` — which "already instrumented" facts survive this
  call?  (Replaces the seed's calls-clear-everything barrier with
  mod/ref disjointness.)

The context is policy-independent, so one run serves every analysis
attached to the same module; results are memoized process-wide by IR
digest like the elision mask cache, with counters surfaced through
``repro.staticpass.elide.staticpass_stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.instructions import Call
from repro.ir.module import Module
from repro.staticpass.alias import TOP, AliasInfo, analyze_aliases
from repro.staticpass.callgraph import CallGraph, build_call_graph
from repro.staticpass.lockset import LockInfo, analyze_locksets
from repro.staticpass.modref import (
    FunctionSummary,
    call_summary,
    fact_survives,
    summarize_module,
)

SiteKey = Tuple[str, str, int]


@dataclass
class InterprocContext:
    """Whole-module interprocedural facts for one IR digest."""

    module: Module
    graph: CallGraph
    aliases: AliasInfo
    summaries: Dict[str, FunctionSummary]
    locks: LockInfo

    def stack_local(self, fname: str, operand) -> bool:
        """Address provably confined to non-escaping stack slots."""
        return self.aliases.stack_local(fname, operand)

    def lock_protected(self, site: SiteKey) -> bool:
        """Every object the site may touch is consistently protected."""
        return self.locks.lock_protected(site)

    def call_effect(self, callee: str) -> FunctionSummary:
        return call_summary(self.module, self.summaries, callee)

    def _key_pts(self, fname: str, key):
        """Points-to set of an elision fact key (register or imm)."""
        if type(key) is tuple:  # ("imm", value)
            obj = self.aliases.global_addrs.get(key[1])
            return frozenset((obj,)) if obj is not None else TOP
        return self.aliases.address_pts(fname, key)

    def filter_facts(self, fname: str, instr: Call, facts: Dict) -> None:
        """Drop (in place) every fact the call may invalidate."""
        summary = self.call_effect(instr.callee)
        if summary.opaque:
            facts.clear()
            return
        if not summary.heap and not summary.modref:
            return  # transparent call: every fact survives
        for key in list(facts):
            if not fact_survives(summary, self._key_pts(fname, key)):
                del facts[key]


# ----------------------------------------------------------------------
# process-wide memo, keyed by IR digest (policy-independent)
# ----------------------------------------------------------------------
_CACHE: "OrderedDict[str, InterprocContext]" = OrderedDict()
_CACHE_CAPACITY = 32
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0


def interproc_stats() -> Dict[str, int]:
    with _LOCK:
        return {
            "interproc_cache_hits": _HITS,
            "interproc_cache_misses": _MISSES,
            "interproc_modules_cached": len(_CACHE),
        }


def clear_interproc_cache() -> None:
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def analyze_module(module: Module, digest: Optional[str] = None) -> InterprocContext:
    """Build (or recall) the interprocedural bundle for one module."""
    global _HITS, _MISSES
    from repro.vm.compile import ir_digest

    if digest is None:
        digest = ir_digest(module)
    with _LOCK:
        cached = _CACHE.get(digest)
        if cached is not None:
            _CACHE.move_to_end(digest)
            _HITS += 1
            return cached
        _MISSES += 1

    graph = build_call_graph(module)
    aliases = analyze_aliases(module, graph)
    summaries = summarize_module(module, graph, aliases)
    locks = analyze_locksets(module, graph, aliases, summaries)
    context = InterprocContext(module, graph, aliases, summaries, locks)

    with _LOCK:
        _CACHE[digest] = context
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    return context
