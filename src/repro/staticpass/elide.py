"""Instrumentation elision: prove hook sites redundant before they fire.

The pass answers, per load/store site of a subject module, "would this
analysis's observable output (reports and backtraces) change if the
hooks at this site never fired?"  Three site classes can be proved safe:

* ``stack_local`` — the address is an alloca-derived, non-escaping
  stack slot: intra-procedurally via :mod:`repro.staticpass.escape`, or
  interprocedurally via the escape side of
  :mod:`repro.staticpass.alias` (an alloca passed to a callee that
  neither stores nor leaks its address stays local).  Only the owning
  thread can ever touch it, so a race detector's per-address state
  machine can never leave its exclusive state and never report.
  Declared safe by the race-detection policies only.
* ``lock_protected`` — every object the address may name is accessed
  under one common lock on every post-spawn path
  (:mod:`repro.staticpass.lockset`): a consistent lockset can never
  report.  In a module that never spawns, *every* site qualifies — a
  single thread cannot race with itself.  Declared safe by the
  race-detection policies only.
* ``dominated`` — an identical address expression is already
  instrumented on every path to this site, with no redefinition of the
  address register and no invalidating call in between.  Without the
  interprocedural context every call invalidates (it may free, lock,
  spawn, or re-enter the analysis); with it, facts survive calls to
  callees whose transitive mod/ref summary
  (:mod:`repro.staticpass.modref`) is disjoint from the address and
  that neither synchronize, spawn, touch allocation state the address
  could occupy, nor reach unknown code.  Safe for pure *check*
  handlers whose verdict depends only on (address, analysis state):
  the dominating site already rendered the same verdict.  In a
  multithreaded module the fact is tracked only for stack-local
  addresses — between two accesses of a shared address another thread
  may run and change the analysis state.

Per-analysis safety is declared in :data:`POLICIES` (keyed by
``CompileOptions.analysis_name``) and *interlocked* automatically:
an analysis whose load/store insertions touch register metadata
(``$N.m`` arguments, or an ``after`` handler whose return value becomes
the destination register's shadow — e.g. msan, taint) gets no elision
regardless of the declared policy, because skipping a site would change
the metadata dataflow downstream.

The mask produced here is consumed at hook-dispatch time by both VM
backends; see ``Interpreter.register_elision`` and the site-aware hook
lookup in ``repro.vm.compile``.  The invariant — enforced by
``tests/staticpass/test_elision_equivalence.py`` across every bundled
workload × spec — is that elision never changes observable analysis
output; only event counts and costs may drop.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.staticpass.cfg import CFG, CFGError, build_cfg
from repro.staticpass.dominators import dominator_tree
from repro.staticpass.escape import STACK_LOCAL, analyze_escapes
from repro.staticpass.dataflow import solve_forward

#: (function name, block label, instruction index) -> suppressed positions.
SiteKey = Tuple[str, str, int]
SiteMask = Dict[SiteKey, FrozenSet[str]]

_KINDS = ("LoadInst", "StoreInst")


@dataclass(frozen=True)
class ElisionPolicy:
    """Declared elision safety for one analysis.

    ``subscriptions`` records which hook positions the analysis binds
    per instrumentable kind, e.g. ``(("LoadInst", ("after",)),)``; only
    subscribed positions are ever suppressed.
    """

    analysis: str = ""
    skip_stack_local: bool = False
    skip_dominated: bool = False
    skip_lock_protected: bool = False
    #: consult the whole-module context (:mod:`repro.staticpass.interproc`)
    #: for escape, lockset, and cross-call fact survival; ``False``
    #: reproduces the strictly intra-procedural pass.
    interproc: bool = True
    subscriptions: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def positions(self, kind: str) -> Tuple[str, ...]:
        for subscribed_kind, positions in self.subscriptions:
            if subscribed_kind == kind:
                return positions
        return ()

    @property
    def enabled(self) -> bool:
        return bool(
            (self.skip_stack_local or self.skip_dominated
             or self.skip_lock_protected)
            and self.subscriptions
        )


#: Declared safety per analysis name.  Race detectors keep per-address
#: state machines that cannot report without a second thread touching
#: the address; memory-safety checks are pure per-address verdicts, so
#: only dominated re-checks may be skipped.
POLICIES: Dict[str, ElisionPolicy] = {
    "eraser": ElisionPolicy("eraser", skip_stack_local=True,
                            skip_dominated=True, skip_lock_protected=True),
    "fasttrack": ElisionPolicy("fasttrack", skip_stack_local=True,
                               skip_dominated=True, skip_lock_protected=True),
    # uaf verdicts track allocation state, not sharing: lock discipline
    # proves nothing about them, and address reuse forbids treating
    # stack slots specially.
    "uaf": ElisionPolicy("uaf", skip_dominated=True),
}

#: function hook points whose handler effects the interprocedural
#: summaries account for (sync/spawn/allocation flags, and ``join``,
#: whose vector-clock merge leaves the joining thread's own epoch
#: unchanged).  An analysis hooking anything else — other builtins,
#: externs, or non-load/store instruction kinds — falls back to the
#: intra-procedural pass: its state could change at events the
#: summaries do not model.
_SUMMARIZED_FUNC_HOOKS = frozenset(
    {"mutex_lock", "mutex_unlock", "spawn", "join", "malloc", "calloc", "free"}
)


def register_policy(name: str, policy: ElisionPolicy) -> None:
    """Declare elision safety for a custom analysis name."""
    POLICIES[name] = policy


def policy_for(analysis) -> ElisionPolicy:
    """Resolve the effective policy for a :class:`CompiledAnalysis`.

    Starts from the :data:`POLICIES` entry for the analysis name
    (default: no elision), attaches the analysis's actual load/store
    hook subscriptions, and applies the metadata interlock described in
    the module docstring.
    """
    base = POLICIES.get(analysis.name, ElisionPolicy(analysis.name))
    subscriptions: Dict[str, List[str]] = {}
    interproc = base.interproc
    for decl in analysis.info.inserts:
        if decl.point_kind == "func":
            if decl.point_name not in _SUMMARIZED_FUNC_HOOKS:
                interproc = False  # state changes the summaries cannot see
            continue
        if decl.point_name not in _KINDS:
            interproc = False  # hooks on kinds the summaries do not model
            continue
        if any(arg.metadata for arg in decl.args):
            return ElisionPolicy(analysis.name)  # metadata consumer
        handler = analysis.info.funcs[decl.handler]
        if decl.position == "after" and handler.ret_type is not None:
            return ElisionPolicy(analysis.name)  # metadata producer
        positions = subscriptions.setdefault(decl.point_name, [])
        if decl.position not in positions:
            positions.append(decl.position)
    return ElisionPolicy(
        analysis.name,
        skip_stack_local=base.skip_stack_local,
        skip_dominated=base.skip_dominated,
        skip_lock_protected=base.skip_lock_protected,
        interproc=interproc,
        subscriptions=tuple(
            (kind, tuple(sorted(positions)))
            for kind, positions in sorted(subscriptions.items())
        ),
    )


@dataclass
class FunctionElision:
    """Per-function site census."""

    name: str
    considered: int = 0
    stack_local: int = 0
    lock_protected: int = 0
    dominated: int = 0
    unknown: int = 0
    #: dominated sites whose covering access sits in a dominating block
    #: (vs. merged coverage from several paths)
    dominated_by_tree: int = 0


@dataclass
class ElisionReport:
    """Full result of the pass on one (module, policy) pair."""

    policy: ElisionPolicy
    multithreaded: bool
    functions: Dict[str, FunctionElision] = field(default_factory=dict)
    mask: SiteMask = field(default_factory=dict)

    @property
    def considered(self) -> int:
        return sum(f.considered for f in self.functions.values())

    @property
    def elided(self) -> int:
        return sum(
            f.stack_local + f.lock_protected + f.dominated
            for f in self.functions.values()
        )

    def counts(self) -> Dict[str, int]:
        return {
            "considered": self.considered,
            "stack_local": sum(f.stack_local for f in self.functions.values()),
            "lock_protected": sum(
                f.lock_protected for f in self.functions.values()
            ),
            "dominated": sum(f.dominated for f in self.functions.values()),
            "elided": self.elided,
        }


def _is_multithreaded(module: Module) -> bool:
    for function in module.functions.values():
        for block in function.blocks.values():
            for instr in block.instructions:
                if isinstance(instr, Call) and instr.callee.startswith("spawn"):
                    return True
    return False


def _address_key(operand):
    return operand if type(operand) is str else ("imm", operand)


def _analyze_function(cfg: CFG, policy: ElisionPolicy, multithreaded: bool,
                      ctx=None) -> Tuple[FunctionElision, SiteMask]:
    census = FunctionElision(cfg.name)
    mask: SiteMask = {}
    escapes = analyze_escapes(cfg)

    def site_positions(instr) -> Tuple[str, ...]:
        kind = "LoadInst" if isinstance(instr, Load) else "StoreInst"
        return policy.positions(kind)

    def is_stack_local(instr) -> bool:
        if escapes.address_class(instr.address) == STACK_LOCAL:
            return True
        return ctx is not None and ctx.stack_local(cfg.name, instr.address)

    def is_lock_protected(label: str, index: int) -> bool:
        """Lockset tier: single-threaded modules qualify wholesale (a
        lone thread cannot race with itself), threaded ones per site."""
        if not policy.skip_lock_protected or ctx is None:
            return False
        return (not multithreaded
                or ctx.lock_protected((cfg.name, label, index)))

    def generates(instr, label: str, index: int) -> bool:
        """Does this site leave an "already instrumented" fact behind?

        Sites whose hooks are suppressed by the stack-local or lockset
        rules leave none.  In a multithreaded module only stack-local
        addresses (touched by exactly one thread) carry facts across
        steps.
        """
        local = is_stack_local(instr)
        if policy.skip_stack_local and local:
            return False
        if is_lock_protected(label, index):
            return False
        return local or not multithreaded

    # Availability of same-address instrumented accesses: facts map an
    # address key to the byte size guaranteed instrumented on every
    # path.  Redefining the address register kills its facts
    # (loop-carried registers take new values).  Without the
    # interprocedural context every call clears all facts; with it only
    # the facts the callee's transitive summary may invalidate die.
    def transfer(label: str, facts: Dict) -> Dict:
        facts = dict(facts)
        for index, instr in enumerate(cfg.blocks[label].instructions):
            if isinstance(instr, Call):
                if ctx is None:
                    facts.clear()
                else:
                    ctx.filter_facts(cfg.name, instr, facts)
            result = getattr(instr, "result", None)
            if result:
                facts.pop(result, None)
            if isinstance(instr, (Load, Store)) and generates(instr, label, index):
                key = _address_key(instr.address)
                facts[key] = max(facts.get(key, 0), instr.size)
        return facts

    def meet(a: Dict, b: Dict) -> Dict:
        return {key: min(size, b[key]) for key, size in a.items() if key in b}

    want_dominated = policy.skip_dominated
    block_in = (
        solve_forward(cfg, {}, transfer, meet) if want_dominated else {}
    )
    gen_blocks: Dict[object, List[str]] = {}
    if want_dominated:
        for label in cfg.rpo:
            for index, instr in enumerate(cfg.blocks[label].instructions):
                if isinstance(instr, (Load, Store)) and generates(instr, label, index):
                    gen_blocks.setdefault(
                        _address_key(instr.address), []
                    ).append(label)
    dom = dominator_tree(cfg) if want_dominated else None

    for label, node in cfg.blocks.items():
        facts = dict(block_in.get(label, {}))
        local_gens = set()  # keys already instrumented earlier in this block
        for index, instr in enumerate(node.instructions):
            if isinstance(instr, (Load, Store)):
                positions = site_positions(instr)
                if positions:
                    census.considered += 1
                    local = is_stack_local(instr)
                    key = _address_key(instr.address)
                    covered = (
                        want_dominated
                        and label in block_in
                        and facts.get(key, 0) >= instr.size
                    )
                    if policy.skip_stack_local and local:
                        census.stack_local += 1
                        mask[(cfg.name, label, index)] = frozenset(positions)
                    elif is_lock_protected(label, index):
                        census.lock_protected += 1
                        mask[(cfg.name, label, index)] = frozenset(positions)
                    elif covered:
                        census.dominated += 1
                        mask[(cfg.name, label, index)] = frozenset(positions)
                        if key in local_gens or (dom is not None and any(
                            g != label and dom.dominates(g, label)
                            for g in gen_blocks.get(key, ())
                        )):
                            census.dominated_by_tree += 1
                    else:
                        census.unknown += 1
            # replay the transfer so in-block facts stay exact
            if isinstance(instr, Call):
                if ctx is None:
                    facts.clear()
                    local_gens.clear()
                else:
                    ctx.filter_facts(cfg.name, instr, facts)
                    local_gens &= set(facts)
            result = getattr(instr, "result", None)
            if result:
                facts.pop(result, None)
                local_gens.discard(result)
            if isinstance(instr, (Load, Store)) and generates(instr, label, index):
                key = _address_key(instr.address)
                facts[key] = max(facts.get(key, 0), instr.size)
                local_gens.add(key)
    return census, mask


# ----------------------------------------------------------------------
# module-level driver, memoized process-wide like the stage-1 compile
# cache (repro.vm.compile): serve workers and the harness analyze each
# (module, policy) pair exactly once.
# ----------------------------------------------------------------------
_CACHE: "OrderedDict[Tuple[str, ElisionPolicy], ElisionReport]" = OrderedDict()
_CACHE_CAPACITY = 64
_LOCK = threading.Lock()
_HITS = 0
_MISSES = 0
_SITES_CONSIDERED = 0
_SITES_ELIDED = 0


def staticpass_stats() -> Dict[str, int]:
    """Process-wide elision counters (surfaced by ``repro.serve`` under
    the ``staticpass.*`` namespace of the ``stats`` frame)."""
    from repro.staticpass.interproc import interproc_stats

    with _LOCK:
        stats = {
            "mask_cache_hits": _HITS,
            "mask_cache_misses": _MISSES,
            "masks_cached": len(_CACHE),
            "sites_considered": _SITES_CONSIDERED,
            "sites_elided": _SITES_ELIDED,
        }
    stats.update(interproc_stats())
    return stats


def clear_staticpass_cache() -> None:
    from repro.staticpass.interproc import clear_interproc_cache

    global _HITS, _MISSES, _SITES_CONSIDERED, _SITES_ELIDED
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0
        _SITES_CONSIDERED = 0
        _SITES_ELIDED = 0
    clear_interproc_cache()


def analyze_elision(module: Module, policy: ElisionPolicy,
                    digest: Optional[str] = None) -> ElisionReport:
    """Run the full pass; results are memoized by (IR digest, policy)."""
    global _HITS, _MISSES, _SITES_CONSIDERED, _SITES_ELIDED
    from repro.vm.compile import ir_digest

    if digest is None:
        digest = ir_digest(module)
    key = (digest, policy)
    with _LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            return cached
        _MISSES += 1

    report = ElisionReport(policy, _is_multithreaded(module))
    if policy.enabled:
        ctx = None
        if policy.interproc:
            from repro.staticpass.interproc import analyze_module

            ctx = analyze_module(module, digest)
        for name, function in module.functions.items():
            try:
                cfg = build_cfg(function)
            except CFGError:
                # A function the CFG builder rejects gets no elision;
                # the VM validates and executes it independently.
                continue
            census, mask = _analyze_function(
                cfg, policy, report.multithreaded, ctx
            )
            report.functions[name] = census
            report.mask.update(mask)

    with _LOCK:
        _CACHE[key] = report
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
        _SITES_CONSIDERED += report.considered
        _SITES_ELIDED += report.elided
    return report


def elision_mask(module: Module, policy: ElisionPolicy) -> SiteMask:
    """The site mask alone — what ``Interpreter.register_elision`` takes."""
    return analyze_elision(module, policy).mask
