"""Interprocedural lockset analysis: consistently-protected sites.

The classic lockset argument ("Compiling Away the Overhead of Race
Detection", PAPERS.md): if every access to an object *after the first
thread is spawned* holds one common lock, consecutive accesses are
totally ordered by that lock's release/acquire edges and a lockset- or
vector-clock-based race detector can never report on the object.
Accesses *before* any spawn are by the initial thread, which
happens-before everything the spawned threads do.  Eliding the hooks at
every access to such an object therefore preserves observable output.

Two interprocedural dataflows feed the per-site facts:

* **must-held locksets** — forward, meet = intersection.  A lock is
  identified by the points-to object of the ``mutex_lock`` argument
  (:mod:`repro.staticpass.alias`) — but an abstract allocation site may
  denote *many* concrete mutexes (a malloc in a loop, an alloca in a
  function run by several threads), and "every access holds site X"
  does not order accesses holding *different* instances of X.  A lock
  is therefore trackable only when its abstract object is provably a
  **single concrete lock**: a module global, or a stack/heap allocation
  site that executes at most once in any run (its block is on no CFG
  cycle and its function is *single-shot* — reached by exactly one
  static call/spawn site, itself outside any loop in a single-shot
  caller, with no call-graph cycle through it).  An acquire of anything
  else — like an acquire the analysis cannot name at all — adds nothing
  (under-approximation).  A release through a single abstract object
  removes only that object (allocation sites partition concrete memory,
  so it cannot release a lock from any other site); an unnameable
  release clears the set, as does a call into a callee that
  (transitively) synchronizes.  Function entry locksets are the
  intersection over all call sites, propagated callers-first over the
  SCC condensation; members of call cycles start from the empty set.
* **pre-spawn** — forward must-analysis of "no spawn has executed yet
  on any path", meet = conjunction.  Spawned functions, functions on
  spawning cycles, and everything downstream of a spawn are post-spawn.

Aggregation is per object: every post-spawn load/store site contributes
its lockset to the intersection of each object its address may name; a
post-spawn site with an unattributable (``TOP``) address contributes to
*every* object.  An object whose intersection stays non-empty — or that
no post-spawn site can reach — is protected, and a site is
``lock_protected`` when its address is attributable and every object it
may name is protected.

A function the CFG builder rejects makes the whole module unprovable
(its accesses cannot be accounted), so no site is reported protected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Module
from repro.staticpass.alias import TOP, AliasInfo, Obj
from repro.staticpass.callgraph import CallGraph, _tarjan, classify_callee
from repro.staticpass.cfg import CFG, CFGError, build_cfg
from repro.staticpass.dataflow import solve_forward
from repro.staticpass.modref import FunctionSummary

SiteKey = Tuple[str, str, int]

#: dataflow fact: (must-held lock objects, no spawn executed yet)
Fact = Tuple[FrozenSet[Obj], bool]

_ENTRY_MAIN: Fact = (frozenset(), True)
_ENTRY_UNKNOWN: Fact = (frozenset(), False)


@dataclass
class LockInfo:
    """Per-site lock facts for one module."""

    #: sites proven consistently protected (or pre-spawn-only objects)
    protected: FrozenSet[SiteKey] = frozenset()
    #: objects whose every post-spawn access shares a lock
    protected_objects: FrozenSet[Obj] = frozenset()
    #: (fname, label, index) -> (must-held locks, pre-spawn) at the site
    site_facts: Dict[SiteKey, Fact] = field(default_factory=dict)
    #: a function could not be analyzed; nothing is provable
    unprovable: bool = False

    def lock_protected(self, site: SiteKey) -> bool:
        return site in self.protected


def _meet(a: Fact, b: Fact) -> Fact:
    return (a[0] & b[0], a[1] and b[1])


def _loop_blocks(cfg: CFG) -> Set[str]:
    """Labels of blocks on a CFG cycle (self-loops included) — the
    blocks whose instructions may execute more than once per call."""
    sccs, _ = _tarjan(sorted(cfg.blocks), lambda label: cfg.blocks[label].succs)
    looped: Set[str] = set()
    for component in sccs:
        if len(component) > 1:
            looped.update(component)
    for label, node in cfg.blocks.items():
        if label in node.succs:
            looped.add(label)
    return looped


def _single_shot_functions(module: Module, graph: CallGraph,
                           cfgs: Dict[str, CFG],
                           loop_blocks: Dict[str, Set[str]]) -> Set[str]:
    """Functions that provably run at most once in any execution:
    ``main``, plus any function outside every call cycle whose single
    static activation (call *or* spawn) site sits outside any loop in a
    single-shot caller."""
    activation_sites: Dict[str, List[Tuple[str, str]]] = {
        fname: [] for fname in module.functions
    }
    for fname, cfg in cfgs.items():
        for label, node in cfg.blocks.items():
            for instr in node.instructions:
                if not isinstance(instr, Call):
                    continue
                kind, target = classify_callee(module, instr.callee)
                if kind in ("direct", "spawn"):
                    activation_sites[target].append((fname, label))

    single: Set[str] = set()
    if "main" in module.functions and not graph.in_cycle("main") \
            and not activation_sites["main"]:
        single.add("main")
    for component in reversed(graph.sccs):  # top-down: callers first
        for fname in component:
            if fname in single or graph.in_cycle(fname):
                continue
            sites = activation_sites[fname]
            if len(sites) != 1:
                continue
            caller, label = sites[0]
            if caller in single and label not in loop_blocks[caller]:
                single.add(fname)
    return single


def _make_singleton_test(module: Module, graph: CallGraph,
                         cfgs: Dict[str, CFG]) -> Callable[[Obj], bool]:
    """Predicate: does this abstract object denote exactly one concrete
    lock?  True for globals, and for stack/heap allocation sites that
    execute at most once (non-looped block of a single-shot function).
    Only such objects may enter the must-held lockset: one abstract
    site covering many concrete mutexes would let accesses guarded by
    *different* locks look consistently protected."""
    loop_blocks = {fname: _loop_blocks(cfg) for fname, cfg in cfgs.items()}
    single_shot = _single_shot_functions(module, graph, cfgs, loop_blocks)

    def singleton(obj: Obj) -> bool:
        if obj[0] == "global":
            return True
        if obj[0] == "stack":
            _, fname, reg = obj
            label = cfgs[fname].defs.get(reg, (None,))[0]
        elif obj[0] == "heap":
            _, fname, label, _ = obj
        else:
            return False
        return (fname in single_shot and label is not None
                and label not in loop_blocks[fname])

    return singleton


def _transfer_call(module: Module, summaries: Dict[str, FunctionSummary],
                   aliases: AliasInfo, singleton: Callable[[Obj], bool],
                   fname: str, instr: Call, fact: Fact) -> Fact:
    locks, prespawn = fact
    kind, target = classify_callee(module, instr.callee)
    if kind == "sync":
        lock_obj: Optional[Obj] = None
        if instr.args:
            pts = aliases.operand_pts(fname, instr.args[0])
            if pts is not TOP and len(pts) == 1:
                (lock_obj,) = pts
        if target == "mutex_lock":
            if lock_obj is not None and singleton(lock_obj):
                locks = locks | {lock_obj}
            # unnameable / multi-instance acquire: holding *more* than
            # we track is safe for a must-held set
        else:  # mutex_unlock
            if lock_obj is not None:
                # allocation sites partition concrete memory: releasing
                # an instance of this site cannot release a lock from
                # any other (tracked) site, so removing just this
                # object is sound whether or not it is a singleton
                locks = locks - {lock_obj}
            else:
                locks = frozenset()
    elif kind == "direct":
        summary = summaries[target]
        if summary.sync or summary.unknown:
            locks = frozenset()
        if summary.spawn:
            prespawn = False
    elif kind == "spawn":
        prespawn = False
    elif kind == "extern":
        locks = frozenset()  # unknown code: assume it may synchronize
    return (locks, prespawn)


def analyze_locksets(module: Module, graph: CallGraph, aliases: AliasInfo,
                     summaries: Dict[str, FunctionSummary]) -> LockInfo:
    try:
        cfgs = {name: build_cfg(fn) for name, fn in module.functions.items()}
    except CFGError:
        return LockInfo(unprovable=True)

    singleton = _make_singleton_test(module, graph, cfgs)

    def transfer_for(fname):
        def transfer(label: str, fact: Fact) -> Fact:
            for instr in cfgs[fname].blocks[label].instructions:
                if isinstance(instr, Call):
                    fact = _transfer_call(
                        module, summaries, aliases, singleton,
                        fname, instr, fact
                    )
            return fact
        return transfer

    # ------------------------------------------------------------------
    # entry facts, callers-first over the condensation
    # ------------------------------------------------------------------
    entries: Dict[str, Fact] = {}
    if "main" in module.functions:
        entries["main"] = _ENTRY_MAIN
    site_facts: Dict[SiteKey, Fact] = {}

    for component in reversed(graph.sccs):  # top-down: callers first
        members = set(component)
        cyclic = len(component) > 1 or any(
            fname in graph.successors(fname) for fname in component
        )
        can_spawn = any(summaries[fname].spawn for fname in component)
        for fname in component:
            entry = entries.get(fname, _ENTRY_UNKNOWN)
            if cyclic:
                # re-entry may happen with fewer locks / after a spawn
                entry = (frozenset(), entry[1] and not can_spawn)
            cfg = cfgs[fname]
            block_in = solve_forward(cfg, entry, transfer_for(fname), _meet)
            # replay each block to collect per-site facts and call-site
            # contributions to callee entry facts
            for label in cfg.rpo:
                fact = block_in.get(label)
                if fact is None:
                    continue
                for index, instr in enumerate(cfg.blocks[label].instructions):
                    if isinstance(instr, (Load, Store)):
                        site_facts[(fname, label, index)] = fact
                    elif isinstance(instr, Call):
                        kind, target = classify_callee(module, instr.callee)
                        if kind == "direct" and target not in members:
                            prior = entries.get(target)
                            entries[target] = (
                                fact if prior is None else _meet(prior, fact)
                            )
                        elif kind == "spawn":
                            prior = entries.get(target)
                            started: Fact = (frozenset(), False)
                            entries[target] = (
                                started if prior is None
                                else _meet(prior, started)
                            )
                        fact = _transfer_call(
                            module, summaries, aliases, singleton,
                            fname, instr, fact
                        )
    # ------------------------------------------------------------------
    # per-object aggregation
    # ------------------------------------------------------------------
    accessed: Set[Obj] = set()
    contributions: Dict[Obj, List[FrozenSet[Obj]]] = {}
    poison: List[FrozenSet[Obj]] = []  # post-spawn sites aliasing anything
    site_pts: Dict[SiteKey, object] = {}
    for fname, cfg in cfgs.items():
        for label in cfg.blocks:
            for index, instr in enumerate(cfg.blocks[label].instructions):
                if not isinstance(instr, (Load, Store)):
                    continue
                site = (fname, label, index)
                pts = aliases.address_pts(fname, instr.address)
                site_pts[site] = pts
                locks, prespawn = site_facts.get(site, _ENTRY_UNKNOWN)
                if pts is not TOP:
                    accessed |= pts
                if prespawn:
                    continue
                if pts is TOP:
                    poison.append(locks)
                else:
                    for obj in pts:
                        contributions.setdefault(obj, []).append(locks)

    def protected(obj: Obj) -> bool:
        locksets = contributions.get(obj, []) + poison
        if not locksets:
            return True  # no reachable post-spawn access at all
        common = locksets[0]
        for locks in locksets[1:]:
            common = common & locks
            if not common:
                return False
        return bool(common)

    protected_objects = frozenset(obj for obj in accessed if protected(obj))
    protected_sites = frozenset(
        site for site, pts in site_pts.items()
        if pts is not TOP and all(obj in protected_objects for obj in pts)
    )
    return LockInfo(
        protected=protected_sites,
        protected_objects=protected_objects,
        site_facts=site_facts,
    )
