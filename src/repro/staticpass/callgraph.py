"""Module-level call graph with SCC condensation.

The mini-IR has no indirect calls: every ``Call`` names its target
statically, so the call graph is exact.  Targets partition into a small
taxonomy (``classify_callee``) that every interprocedural pass in this
package shares:

* ``direct``      — a function defined in the same module;
* ``spawn``       — ``spawn$f``: starts ``f`` on a new thread;
* ``sync``        — ``mutex_lock`` / ``mutex_unlock``;
* ``join``        — thread join (blocks, transfers no memory effects
  relevant to the elision policies — see ``docs/STATICPASS.md``);
* ``global_addr`` — ``global_addr$g``: materializes a global's address;
* ``builtin``     — a :mod:`repro.vm.libc` routine;
* ``extern``      — anything else (workload ``extern_factory`` targets),
  treated as unknown by every consumer.

``build_call_graph`` also condenses the graph into strongly connected
components (iterative Tarjan).  ``sccs`` lists components bottom-up —
every callee SCC appears before its callers — which is exactly the
order the mod/ref summary propagation wants; reverse it for top-down
problems (entry locksets).  Spawn edges participate in the condensation:
a spawned function is reachable work just like a called one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.ir.instructions import Call
from repro.ir.module import Module

#: ``mutex_lock``/``mutex_unlock`` callee bases.
SYNC_BASES = ("mutex_lock", "mutex_unlock")


def classify_callee(module: Module, callee: str) -> Tuple[str, str]:
    """``(kind, target)`` for one callee string (see module docstring)."""
    if callee in module.functions:
        return ("direct", callee)
    base, _, suffix = callee.partition("$")
    if base == "spawn":
        if suffix in module.functions:
            return ("spawn", suffix)
        return ("extern", callee)  # spawning an undefined target
    if base in SYNC_BASES:
        return ("sync", base)
    if base == "join":
        return ("join", base)
    if base == "global_addr":
        return ("global_addr", suffix)
    from repro.vm.libc import REGISTRY

    if base in REGISTRY:
        return ("builtin", base)
    return ("extern", callee)


@dataclass
class CallGraph:
    """Exact call graph of one module plus its SCC condensation."""

    module: Module
    #: caller -> module functions it calls directly
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: caller -> module functions it spawns as threads
    spawn_targets: Dict[str, Set[str]] = field(default_factory=dict)
    #: caller -> unresolved callee names (externs)
    externs: Dict[str, Set[str]] = field(default_factory=dict)
    #: strongly connected components, bottom-up (callees first)
    sccs: List[Tuple[str, ...]] = field(default_factory=list)
    #: function name -> index into ``sccs``
    scc_of: Dict[str, int] = field(default_factory=dict)

    def successors(self, fname: str) -> Set[str]:
        """Direct plus spawn successors (the condensed graph's edges)."""
        return self.edges.get(fname, set()) | self.spawn_targets.get(fname, set())

    def in_cycle(self, fname: str) -> bool:
        """True when ``fname`` sits on a call cycle (including self-recursion)."""
        component = self.sccs[self.scc_of[fname]]
        if len(component) > 1:
            return True
        return fname in self.successors(fname)

    def spawned_functions(self) -> Set[str]:
        """Every function started as a thread somewhere in the module."""
        spawned: Set[str] = set()
        for targets in self.spawn_targets.values():
            spawned |= targets
        return spawned


def build_call_graph(module: Module) -> CallGraph:
    graph = CallGraph(module)
    for fname, function in module.functions.items():
        graph.edges[fname] = set()
        graph.spawn_targets[fname] = set()
        graph.externs[fname] = set()
        for block in function.blocks.values():
            for instr in block.instructions:
                if not isinstance(instr, Call):
                    continue
                kind, target = classify_callee(module, instr.callee)
                if kind == "direct":
                    graph.edges[fname].add(target)
                elif kind == "spawn":
                    graph.spawn_targets[fname].add(target)
                elif kind == "extern":
                    graph.externs[fname].add(target)
    graph.sccs, graph.scc_of = _tarjan(
        sorted(module.functions), graph.successors
    )
    return graph


def _tarjan(nodes: List[str], successors) -> Tuple[List[Tuple[str, ...]], Dict[str, int]]:
    """Iterative Tarjan SCCs, emitted bottom-up (callees before callers)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Tuple[str, ...]] = []
    scc_of: Dict[str, int] = {}
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # (node, iterator position over its sorted successors)
        work: List[Tuple[str, int]] = [(root, 0)]
        succ_lists: Dict[str, List[str]] = {}
        while work:
            node, position = work[-1]
            if position == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                succ_lists[node] = sorted(successors(node))
            succs = succ_lists[node]
            advanced = False
            while position < len(succs):
                succ = succs[position]
                position += 1
                if succ not in index:
                    work[-1] = (node, position)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                scc_index = len(sccs)
                sccs.append(tuple(sorted(component)))
                for member in component:
                    scc_of[member] = scc_index
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs, scc_of
