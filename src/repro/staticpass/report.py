"""Reusable builders behind ``python -m repro.staticpass report``.

:func:`pair_report` assembles the JSON payload for one
(analysis, workload) pair; :func:`corpus_sweep` runs every bundled pair
and aggregates per-category site counts.  Both raise :class:`ReportError`
with a one-line message for bad names or scales — the CLI (and the
benchmark harness, which reuses these builders for its artifact) never
shows a traceback for user input errors.
"""

from __future__ import annotations

from typing import Dict, List

#: site-count categories, in report column order
CATEGORIES = ("considered", "stack_local", "lock_protected", "dominated",
              "unknown", "elided")


class ReportError(ValueError):
    """A report request names an unknown subject or an invalid scale."""


def _validate(analysis: str, workload: str, scale: int) -> None:
    from repro.exec.pool import ANALYSIS_SPECS
    from repro.workloads import ALL

    if analysis not in ANALYSIS_SPECS:
        raise ReportError(
            f"unknown analysis {analysis!r}; choose from "
            f"{', '.join(sorted(ANALYSIS_SPECS))}"
        )
    if workload not in ALL:
        raise ReportError(
            f"unknown workload {workload!r}; choose from "
            f"{', '.join(sorted(ALL))}"
        )
    if scale < 1:
        raise ReportError(f"--scale must be >= 1, got {scale}")


def _census(f) -> Dict[str, int]:
    return {
        "considered": f.considered,
        "stack_local": f.stack_local,
        "lock_protected": f.lock_protected,
        "dominated": f.dominated,
        "dominated_by_tree": f.dominated_by_tree,
        "unknown": f.unknown,
    }


def pair_report(analysis: str, workload: str, scale: int = 1,
                module=None) -> Dict:
    """The full report payload for one (analysis, workload) pair."""
    from repro.exec.pool import build_analysis
    from repro.staticpass.elide import analyze_elision, policy_for
    from repro.workloads import ALL

    _validate(analysis, workload, scale)
    compiled = build_analysis(analysis)
    if hasattr(compiled, "info"):
        policy = policy_for(compiled)
    else:
        # hand-tuned baselines predate elision: nothing to skip
        from repro.staticpass.elide import ElisionPolicy

        policy = ElisionPolicy(getattr(compiled, "name", analysis))
    if module is None:
        module = ALL[workload].make_module(scale)
    report = analyze_elision(module, policy)
    return {
        "analysis": analysis,
        "workload": workload,
        "scale": scale,
        "policy": {
            "name": policy.analysis,
            "skip_stack_local": policy.skip_stack_local,
            "skip_lock_protected": policy.skip_lock_protected,
            "skip_dominated": policy.skip_dominated,
            "interproc": policy.interproc,
            "enabled": policy.enabled,
        },
        "multithreaded": report.multithreaded,
        "totals": report.counts(),
        "functions": {
            name: _census(f)
            for name, f in sorted(report.functions.items())
        },
    }


def corpus_sweep(scale: int = 1) -> Dict:
    """Every bundled (spec, workload) pair plus per-category aggregates."""
    from repro.exec.pool import ANALYSIS_SPECS
    from repro.workloads import ALL

    if scale < 1:
        raise ReportError(f"--scale must be >= 1, got {scale}")
    modules = {name: ALL[name].make_module(scale) for name in sorted(ALL)}
    pairs: List[Dict] = []
    aggregate = {key: 0 for key in CATEGORIES}
    enabled_pairs = 0
    for analysis in sorted(ANALYSIS_SPECS):
        for workload in sorted(ALL):
            payload = pair_report(analysis, workload, scale,
                                  module=modules[workload])
            totals = dict(payload["totals"])
            totals["unknown"] = totals["considered"] - totals["elided"]
            pairs.append({
                "analysis": analysis,
                "workload": workload,
                "enabled": payload["policy"]["enabled"],
                "multithreaded": payload["multithreaded"],
                "totals": totals,
            })
            if payload["policy"]["enabled"]:
                enabled_pairs += 1
                for key in CATEGORIES:
                    aggregate[key] += totals.get(key, 0)
    return {
        "scale": scale,
        "pairs": pairs,
        "enabled_pairs": enabled_pairs,
        "aggregate": aggregate,
    }
