"""Static analysis over :mod:`repro.ir` modules.

The framework mirrors a classic compiler middle-end, scaled to the
mini-IR: :mod:`repro.staticpass.cfg` builds a control-flow graph per
function (with typed structural errors), :mod:`repro.staticpass.dominators`
computes dominator trees (Cooper–Harvey–Kennedy),
:mod:`repro.staticpass.dataflow` provides a generic forward dataflow
solver plus reaching definitions, and :mod:`repro.staticpass.escape`
classifies alloca-derived addresses as provably stack-local and
non-escaping within one function.

The interprocedural tier reasons across calls:
:mod:`repro.staticpass.callgraph` builds the exact module call graph
with SCC condensation, :mod:`repro.staticpass.alias` solves
Andersen-style points-to plus whole-module escape,
:mod:`repro.staticpass.modref` derives transitive per-function mod/ref
summaries, and :mod:`repro.staticpass.lockset` proves sites
consistently lock-protected; :mod:`repro.staticpass.interproc` bundles
the four behind one memoized context.

On top of those passes, :mod:`repro.staticpass.elide` implements the
instrumentation-elision pass: given a compiled analysis's hook
subscriptions and its declared elision safety, it computes the set of
load/store sites whose hooks are statically redundant
(``stack_local`` / ``lock_protected`` / ``dominated``).  The mask is
consumed by all three VM backends (``repro.vm.compile``,
``repro.vm.bytecode`` — where fully-masked straight-line runs become
fused superinstructions — and the reference loop in
``repro.vm.interpreter``), keeping observable analysis output
bit-identical while dropping event counts and handler work.

``python -m repro.staticpass report <analysis> <workload>`` prints the
per-function elision statistics for any bundled spec/workload pair;
``python -m repro.staticpass report --all`` sweeps the whole corpus.
"""

from repro.staticpass.alias import AliasInfo, analyze_aliases
from repro.staticpass.callgraph import CallGraph, build_call_graph
from repro.staticpass.cfg import (
    CFG,
    BlockNode,
    CFGError,
    DuplicateDefinitionError,
    MissingLabelError,
    MissingTerminatorError,
    StaticPassError,
    build_cfg,
)
from repro.staticpass.dataflow import ReachingDefinitions, reaching_definitions, solve_forward
from repro.staticpass.dominators import DominatorTree, dominator_tree
from repro.staticpass.elide import (
    ElisionPolicy,
    ElisionReport,
    analyze_elision,
    elision_mask,
    policy_for,
    register_policy,
    staticpass_stats,
)
from repro.staticpass.escape import EscapeInfo, analyze_escapes
from repro.staticpass.interproc import InterprocContext, analyze_module
from repro.staticpass.lockset import LockInfo, analyze_locksets
from repro.staticpass.modref import FunctionSummary, summarize_module

__all__ = [
    "CFG",
    "AliasInfo",
    "BlockNode",
    "CFGError",
    "CallGraph",
    "DominatorTree",
    "DuplicateDefinitionError",
    "ElisionPolicy",
    "ElisionReport",
    "EscapeInfo",
    "FunctionSummary",
    "InterprocContext",
    "LockInfo",
    "MissingLabelError",
    "MissingTerminatorError",
    "ReachingDefinitions",
    "StaticPassError",
    "analyze_aliases",
    "analyze_elision",
    "analyze_escapes",
    "analyze_locksets",
    "analyze_module",
    "build_call_graph",
    "build_cfg",
    "dominator_tree",
    "elision_mask",
    "policy_for",
    "reaching_definitions",
    "register_policy",
    "solve_forward",
    "staticpass_stats",
    "summarize_module",
]
