"""Intra-procedural static analysis over :mod:`repro.ir` modules.

The framework mirrors a classic compiler middle-end, scaled to the
mini-IR: :mod:`repro.staticpass.cfg` builds a control-flow graph per
function (with typed structural errors), :mod:`repro.staticpass.dominators`
computes dominator trees (Cooper–Harvey–Kennedy),
:mod:`repro.staticpass.dataflow` provides a generic forward dataflow
solver plus reaching definitions, and :mod:`repro.staticpass.escape`
classifies alloca-derived addresses as provably stack-local and
non-escaping.

On top of those passes, :mod:`repro.staticpass.elide` implements the
instrumentation-elision pass: given a compiled analysis's hook
subscriptions and its declared elision safety, it computes the set of
load/store sites whose hooks are statically redundant.  The mask is
consumed by both VM backends (``repro.vm.compile`` and the reference
loop in ``repro.vm.interpreter``), keeping observable analysis output
bit-identical while dropping event counts and handler work.

``python -m repro.staticpass report <analysis> <workload>`` prints the
per-function elision statistics for any bundled spec/workload pair.
"""

from repro.staticpass.cfg import (
    CFG,
    BlockNode,
    CFGError,
    DuplicateDefinitionError,
    MissingLabelError,
    MissingTerminatorError,
    StaticPassError,
    build_cfg,
)
from repro.staticpass.dataflow import ReachingDefinitions, reaching_definitions, solve_forward
from repro.staticpass.dominators import DominatorTree, dominator_tree
from repro.staticpass.elide import (
    ElisionPolicy,
    ElisionReport,
    analyze_elision,
    elision_mask,
    policy_for,
    register_policy,
    staticpass_stats,
)
from repro.staticpass.escape import EscapeInfo, analyze_escapes

__all__ = [
    "CFG",
    "BlockNode",
    "CFGError",
    "DominatorTree",
    "DuplicateDefinitionError",
    "ElisionPolicy",
    "ElisionReport",
    "EscapeInfo",
    "MissingLabelError",
    "MissingTerminatorError",
    "ReachingDefinitions",
    "StaticPassError",
    "analyze_elision",
    "analyze_escapes",
    "build_cfg",
    "dominator_tree",
    "elision_mask",
    "policy_for",
    "reaching_definitions",
    "register_policy",
    "solve_forward",
    "staticpass_stats",
]
