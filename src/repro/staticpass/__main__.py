"""Elision statistics for bundled analysis specs and workloads.

Usage::

    python -m repro.staticpass report eraser.full bzip2
    python -m repro.staticpass report uaf.alda radix --scale 2 --json

``report`` prints, per subject function, how many load/store hook sites
the analysis subscribes to and how many the elision pass proves
skippable, split by category (``stack_local`` / ``dominated``).  Specs
are the keys of :data:`repro.exec.pool.ANALYSIS_SPECS`; workloads are
the keys of :data:`repro.workloads.ALL`.
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticpass",
        description="Static-analysis reports over repro.ir modules.",
    )
    parser.add_argument("command", choices=("report",))
    parser.add_argument("analysis", help="analysis spec (see repro.exec.pool)")
    parser.add_argument("workload", help="workload name (see repro.workloads)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    from repro.exec.pool import ANALYSIS_SPECS, build_analysis
    from repro.staticpass.elide import analyze_elision, policy_for
    from repro.workloads import ALL

    if args.analysis not in ANALYSIS_SPECS:
        print(
            f"unknown analysis {args.analysis!r}; choose from "
            f"{', '.join(sorted(ANALYSIS_SPECS))}",
            file=sys.stderr,
        )
        return 2
    if args.workload not in ALL:
        print(
            f"unknown workload {args.workload!r}; choose from "
            f"{', '.join(sorted(ALL))}",
            file=sys.stderr,
        )
        return 2

    analysis = build_analysis(args.analysis)
    policy = policy_for(analysis)
    module = ALL[args.workload].make_module(args.scale)
    report = analyze_elision(module, policy)

    if args.as_json:
        payload = {
            "analysis": args.analysis,
            "workload": args.workload,
            "scale": args.scale,
            "policy": {
                "name": policy.analysis,
                "skip_stack_local": policy.skip_stack_local,
                "skip_dominated": policy.skip_dominated,
                "enabled": policy.enabled,
            },
            "multithreaded": report.multithreaded,
            "totals": report.counts(),
            "functions": {
                name: {
                    "considered": f.considered,
                    "stack_local": f.stack_local,
                    "dominated": f.dominated,
                    "dominated_by_tree": f.dominated_by_tree,
                    "unknown": f.unknown,
                }
                for name, f in sorted(report.functions.items())
            },
        }
        print(json.dumps(payload, indent=2))
        return 0

    threading = "multithreaded" if report.multithreaded else "single-threaded"
    print(f"{args.analysis} on {args.workload} (scale {args.scale}, {threading})")
    if not policy.enabled:
        print("  elision disabled for this analysis "
              "(no declared safety or metadata interlock)")
        return 0
    header = f"  {'function':<22} {'sites':>6} {'stack':>6} {'domin':>6} {'kept':>6}"
    print(header)
    for name, f in sorted(report.functions.items()):
        if not f.considered:
            continue
        print(f"  {name:<22} {f.considered:>6} {f.stack_local:>6} "
              f"{f.dominated:>6} {f.unknown:>6}")
    totals = report.counts()
    if totals["considered"]:
        percent = 100.0 * totals["elided"] / totals["considered"]
        print(f"  total: {totals['elided']}/{totals['considered']} static "
              f"sites elided ({percent:.1f}%) — "
              f"stack_local={totals['stack_local']} "
              f"dominated={totals['dominated']}")
    else:
        print("  no load/store hook sites")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
