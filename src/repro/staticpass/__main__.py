"""Elision statistics for bundled analysis specs and workloads.

Usage::

    python -m repro.staticpass report eraser.full bzip2
    python -m repro.staticpass report uaf.alda radix --scale 2 --json
    python -m repro.staticpass report --all --json

``report`` prints, per subject function, how many load/store hook sites
the analysis subscribes to and how many the elision pass proves
skippable, split by category (``stack_local`` / ``lock_protected`` /
``dominated``).  ``--all`` sweeps every bundled (spec, workload) pair
and aggregates the per-category counts.  Specs are the keys of
:data:`repro.exec.pool.ANALYSIS_SPECS`; workloads are the keys of
:data:`repro.workloads.ALL`.  Bad names or a ``--scale`` below 1 exit
with status 2 and a one-line error.
"""

from __future__ import annotations

import argparse
import json
import sys


def _print_pair(payload: dict) -> None:
    threading = (
        "multithreaded" if payload["multithreaded"] else "single-threaded"
    )
    print(f"{payload['analysis']} on {payload['workload']} "
          f"(scale {payload['scale']}, {threading})")
    if not payload["policy"]["enabled"]:
        print("  elision disabled for this analysis "
              "(no declared safety or metadata interlock)")
        return
    header = (f"  {'function':<22} {'sites':>6} {'stack':>6} {'lock':>6} "
              f"{'domin':>6} {'kept':>6}")
    print(header)
    for name, f in payload["functions"].items():
        if not f["considered"]:
            continue
        print(f"  {name:<22} {f['considered']:>6} {f['stack_local']:>6} "
              f"{f['lock_protected']:>6} {f['dominated']:>6} "
              f"{f['unknown']:>6}")
    totals = payload["totals"]
    if totals["considered"]:
        percent = 100.0 * totals["elided"] / totals["considered"]
        print(f"  total: {totals['elided']}/{totals['considered']} static "
              f"sites elided ({percent:.1f}%) — "
              f"stack_local={totals['stack_local']} "
              f"lock_protected={totals['lock_protected']} "
              f"dominated={totals['dominated']}")
    else:
        print("  no load/store hook sites")


def _print_sweep(payload: dict) -> None:
    print(f"corpus sweep (scale {payload['scale']}, "
          f"{payload['enabled_pairs']} elision-enabled pairs)")
    header = (f"  {'analysis':<18} {'workload':<14} {'sites':>6} "
              f"{'stack':>6} {'lock':>6} {'domin':>6} {'kept':>6}")
    print(header)
    for pair in payload["pairs"]:
        if not pair["enabled"] or not pair["totals"]["considered"]:
            continue
        t = pair["totals"]
        print(f"  {pair['analysis']:<18} {pair['workload']:<14} "
              f"{t['considered']:>6} {t['stack_local']:>6} "
              f"{t['lock_protected']:>6} {t['dominated']:>6} "
              f"{t['unknown']:>6}")
    agg = payload["aggregate"]
    if agg["considered"]:
        percent = 100.0 * agg["elided"] / agg["considered"]
        print(f"  total: {agg['elided']}/{agg['considered']} static "
              f"sites elided ({percent:.1f}%) — "
              f"stack_local={agg['stack_local']} "
              f"lock_protected={agg['lock_protected']} "
              f"dominated={agg['dominated']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticpass",
        description="Static-analysis reports over repro.ir modules.",
    )
    parser.add_argument("command", choices=("report",))
    parser.add_argument("analysis", nargs="?",
                        help="analysis spec (see repro.exec.pool)")
    parser.add_argument("workload", nargs="?",
                        help="workload name (see repro.workloads)")
    parser.add_argument("--all", action="store_true", dest="sweep_all",
                        help="sweep every bundled (spec, workload) pair")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    from repro.staticpass.report import ReportError, corpus_sweep, pair_report

    try:
        if args.sweep_all:
            if args.analysis is not None or args.workload is not None:
                print("--all takes no analysis/workload arguments",
                      file=sys.stderr)
                return 2
            payload = corpus_sweep(args.scale)
            if args.as_json:
                print(json.dumps(payload, indent=2))
            else:
                _print_sweep(payload)
            return 0
        if args.analysis is None or args.workload is None:
            print("an analysis and a workload are required unless --all "
                  "is given", file=sys.stderr)
            return 2
        payload = pair_report(args.analysis, args.workload, args.scale)
    except ReportError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        _print_pair(payload)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
