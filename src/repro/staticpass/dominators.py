"""Dominator trees via Cooper–Harvey–Kennedy.

"A Simple, Fast Dominance Algorithm" (Cooper, Harvey & Kennedy, 2001):
iterate ``idom`` to a fixed point over the reverse postorder, meeting
predecessor dominators with the two-finger ``intersect`` walk on
postorder numbers.  For the mini-IR's small, reducible CFGs this
converges in one or two sweeps and beats Lengauer–Tarjan on simplicity
by a mile.

Unreachable blocks have no dominators; ``DominatorTree.dominates``
returns False whenever either endpoint is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.staticpass.cfg import CFG


@dataclass
class DominatorTree:
    """Immediate-dominator map plus tree queries for one CFG."""

    entry: str
    idom: Dict[str, Optional[str]]
    children: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.children:
            for label, parent in self.idom.items():
                if parent is not None:
                    self.children.setdefault(parent, []).append(label)
        self._depth: Dict[str, int] = {}
        for label in self.idom:
            self._compute_depth(label)

    def _compute_depth(self, label: str) -> int:
        cached = self._depth.get(label)
        if cached is not None:
            return cached
        parent = self.idom[label]
        depth = 0 if parent is None else self._compute_depth(parent) + 1
        self._depth[label] = depth
        return depth

    def depth(self, label: str) -> int:
        return self._depth[label]

    def dominates(self, a: str, b: str) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        if a not in self.idom or b not in self.idom:
            return False
        walk: Optional[str] = b
        while walk is not None and self._depth[walk] >= self._depth[a]:
            if walk == a:
                return True
            walk = self.idom[walk]
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)


def dominator_tree(cfg: CFG) -> DominatorTree:
    """Cooper–Harvey–Kennedy over ``cfg.rpo`` (reachable blocks only)."""
    rpo = cfg.rpo
    index = {label: i for i, label in enumerate(rpo)}
    # Postorder number = len - 1 - rpo index; intersect() walks toward
    # higher postorder numbers, i.e. lower rpo indices.
    idom: Dict[str, Optional[str]] = {cfg.entry: cfg.entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            new_idom: Optional[str] = None
            for pred in cfg.blocks[label].preds:
                if pred not in index or idom.get(pred) is None:
                    continue  # unreachable or not yet processed
                new_idom = pred if new_idom is None else intersect(new_idom, pred)
            if new_idom is not None and idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    idom[cfg.entry] = None
    return DominatorTree(cfg.entry, idom)
