"""Auto-shrinker: delta-debug a non-MATCH case to a minimal module.

Given the parameter vector of a failing case, the shrinker re-classifies
candidate reductions of its IR module against a *reduced* matrix — the
baseline cell plus the cell that failed — and greedily keeps any
reduction that still reproduces the same outcome class.  Reduction moves:

* drop chunks of non-terminator instructions per block (sizes 8/4/2/1,
  classic ddmin scheduling);
* drop whole functions that are no longer referenced;
* drop globals that are no longer referenced.

Candidates are cloned through ``parse_module(print_module(...))`` — the
text round-trip is the mutation-isolation mechanism — and gated by
:func:`repro.ir.validate.validate_module`, so every candidate the
predicate sees is a valid program.  The result preserves the failing
seed and matrix cell, which is all a one-line repro needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.fuzz import FuzzError, bump
from repro.fuzz.gen import GenParams, _fuzz_externs, generate
from repro.fuzz.oracle import DEFAULT_MATRIX, CaseOutcome, Oracle
from repro.ir.instructions import Call, TERMINATORS
from repro.ir.module import Module
from repro.ir.text import parse_module, print_module
from repro.ir.validate import validate_module
from repro.workloads.base import Workload

CHUNK_SIZES = (8, 4, 2, 1)


@dataclass
class ShrinkResult:
    """A minimal reproducing module plus its provenance."""

    params: GenParams
    outcome: str
    cell: str
    module_text: str
    original_instructions: int
    final_instructions: int
    candidates_tried: int

    @property
    def removed(self) -> int:
        return self.original_instructions - self.final_instructions


def workload_from_text(text: str, params: GenParams,
                       name: str = "fuzz-shrink") -> Workload:
    """Wrap raw IR text as a workload under the case's run parameters."""
    parse_module(text)  # fail fast on unparsable text
    return Workload(
        name=name,
        suite="fuzz",
        build=lambda scale=1, _t=text: parse_module(_t),
        threads=params.threads,
        extern_factory=_fuzz_externs if params.call_shape == "extern" else None,
    )


def _clone(module: Module) -> Module:
    return parse_module(print_module(module))


def _referenced_names(module: Module) -> Tuple[set, set]:
    """(called function names, referenced global names) over the module."""
    functions, globals_ = set(), set()
    for function in module.functions.values():
        for instruction in function.instructions():
            if not isinstance(instruction, Call):
                continue
            callee = instruction.callee
            if callee.startswith("spawn$"):
                functions.add(callee[len("spawn$"):])
            elif callee.startswith("global_addr$"):
                globals_.add(callee[len("global_addr$"):])
            else:
                functions.add(callee)
    return functions, globals_


def _candidates(module: Module) -> Iterator[Module]:
    """Yield reduction candidates, coarsest first."""
    # 1. unreferenced functions (never main)
    called, _ = _referenced_names(module)
    for name in list(module.functions):
        if name != "main" and name not in called:
            candidate = _clone(module)
            del candidate.functions[name]
            yield candidate

    # 2. instruction chunks per block (terminators stay)
    for fn_name, function in module.functions.items():
        for label, block in function.blocks.items():
            body = len(block.instructions) - 1  # keep the terminator
            for size in CHUNK_SIZES:
                if size > body:
                    continue
                for start in range(0, body, size):
                    candidate = _clone(module)
                    target = candidate.functions[fn_name].blocks[label]
                    del target.instructions[start:start + size]
                    if not target.instructions or \
                            not isinstance(target.instructions[-1], TERMINATORS):
                        continue
                    yield candidate

    # 3. unreferenced globals
    _, used_globals = _referenced_names(module)
    for name in list(module.globals):
        if name not in used_globals:
            candidate = _clone(module)
            del candidate.globals[name]
            yield candidate


def _valid(module: Module) -> bool:
    try:
        validate_module(module)
    except Exception:
        return False
    return True


def _terminates(module: Module, params: GenParams, step_cap: int) -> bool:
    """Reject candidates that stopped terminating (e.g. a dropped loop
    increment): one cheap uninstrumented run under a tight step cap.
    Program *faults* pass through — a faulting candidate may be exactly
    the minimal CRASH reproduction the predicate is looking for."""
    from repro.errors import VMError
    from repro.vm.interpreter import Interpreter

    extern = _fuzz_externs() if params.call_shape == "extern" else None
    try:
        Interpreter(module, extern=extern, max_steps=step_cap).run()
    except VMError as exc:
        if "max_steps" in str(exc):
            return False
    except Exception:
        pass
    return True


def shrink_case(
    params: GenParams,
    failing_cell: str,
    expected_outcome: str,
    *,
    matrix: Sequence[str] = DEFAULT_MATRIX,
    case_timeout: float = 60.0,
    store_root: Optional[str] = None,
    max_candidates: int = 2000,
    classify: Optional[Callable[[Workload], CaseOutcome]] = None,
) -> ShrinkResult:
    """Delta-debug ``params``' module to a minimal one still failing.

    ``failing_cell``/``expected_outcome`` come from the original
    :class:`~repro.fuzz.oracle.CaseOutcome`; the predicate re-runs only
    the baseline cell plus the failing cell.  ``classify`` overrides the
    predicate entirely (tests use this to shrink against synthetic
    failure conditions without a real divergence in the tree).
    """
    bump("shrink_runs")
    if failing_cell == "*":  # divergence: any cell pair may disagree
        reduced_matrix: Tuple[str, ...] = tuple(matrix)
    else:
        reduced_matrix = tuple(dict.fromkeys((matrix[0], failing_cell)))
    oracle: Optional[Oracle] = None
    if classify is None:
        oracle = Oracle(reduced_matrix, store_root=store_root,
                        case_timeout=case_timeout)

        def classify(workload: Workload) -> CaseOutcome:
            return oracle.run_case(params, workload=workload)

    try:
        module = generate(params)
        original_instructions = module.static_instruction_count()
        # Step cap for candidate termination checks: generous headroom
        # over the original program's dynamic footprint.
        from repro.vm.interpreter import Interpreter

        extern = _fuzz_externs() if params.call_shape == "extern" else None
        try:
            plain = Interpreter(_clone(module), extern=extern).run()
            step_cap = max(50_000, 4 * plain.instructions)
        except Exception:
            step_cap = 2_000_000
        baseline = classify(workload_from_text(print_module(module), params))
        if baseline.outcome != expected_outcome:
            raise FuzzError(
                f"case does not reproduce: expected {expected_outcome}, "
                f"got {baseline.outcome} ({baseline.detail})"
            )

        tried = 0
        improved = True
        while improved and tried < max_candidates:
            improved = False
            for candidate in _candidates(module):
                tried += 1
                if tried >= max_candidates:
                    break
                if not _valid(candidate):
                    continue
                if not _terminates(candidate, params, step_cap):
                    continue
                try:
                    text = print_module(candidate)
                    outcome = classify(workload_from_text(text, params))
                except Exception:
                    continue  # candidate broke the harness itself: reject
                if outcome.outcome == expected_outcome:
                    module = candidate
                    improved = True
                    break  # greedy restart from the smaller module

        final_instructions = module.static_instruction_count()
        bump("shrink_removed", original_instructions - final_instructions)
        return ShrinkResult(
            params=params,
            outcome=expected_outcome,
            cell=failing_cell,
            module_text=print_module(module),
            original_instructions=original_instructions,
            final_instructions=final_instructions,
            candidates_tried=tried,
        )
    finally:
        if oracle is not None:
            oracle.close()


def shrink_outcome(outcome: CaseOutcome, **kwargs) -> ShrinkResult:
    """Shrink directly from a failing :class:`CaseOutcome`."""
    failing: List[str] = [
        result.cell for result in outcome.cells if result.status == "error"
    ]
    # A divergence has no erroring cell — any completed pair may disagree,
    # so the predicate keeps the whole matrix ("*").
    cell = failing[0] if failing else "*"
    return shrink_case(outcome.params, cell, outcome.outcome, **kwargs)
