"""The fuzz firehose CLI.

Usage::

    python -m repro.fuzz run --seeds 50 --budget 120
    python -m repro.fuzz run --seeds 200 --budget 600 --events 2000 \\
        --matrix compiled/off/mono/inline,compiled/off/p4/inline --json
    python -m repro.fuzz run --seeds 25 --budget 300 --faults 0.05 --fault-seed 99
    python -m repro.fuzz shrink --seed 17 --cell compiled/inter/mono/inline \\
        --outcome DIVERGENCE
    python -m repro.fuzz corpus replay
    python -m repro.fuzz corpus add --seed 17 --note "pr9 lockset hole"

``run`` sweeps ``--seeds`` sampled parameter vectors (starting at
``--seed-base``) through the differential matrix until done or the
``--budget`` wall-clock (seconds) runs out.  Any ``DIVERGENCE``/``CRASH``
find is auto-shrunk (disable with ``--no-shrink``) and a one-line repro
script is written to ``benchmarks/artifacts/fuzz_repro_<digest>.sh``.
Exit status: 0 all clean, 1 finds, 2 usage (one-line typed error,
matching ``staticpass report``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


def _default_artifacts() -> Path:
    return _repo_root() / "benchmarks" / "artifacts"


def _write_repro_script(artifacts: Path, outcome, matrix, faults: float,
                        fault_seed: int, scale: int) -> Path:
    """Satellite contract: every failure artifact carries the exact
    one-line repro command (seed + parameter vector + matrix cell)."""
    from repro.fuzz.gen import params_digest, params_to_dict

    artifacts.mkdir(parents=True, exist_ok=True)
    digest = params_digest(outcome.params)[:12]
    failing = [r.cell for r in outcome.cells if r.status == "error"]
    cell = failing[0] if failing else "*"
    parts = [
        "PYTHONPATH=src python -m repro.fuzz run",
        f"--seeds 1 --seed-base {outcome.params.seed}",
        f"--events {outcome.params.events}",
        f"--scale {scale}",
        "--budget 600",
        f"--matrix {','.join(cell.name for cell in matrix)}",
    ]
    if faults > 0:
        parts.append(f"--faults {faults} --fault-seed {fault_seed}")
    command = " ".join(parts)
    path = artifacts / f"fuzz_repro_{digest}.sh"
    path.write_text(
        "#!/bin/sh\n"
        f"# fuzz find: {outcome.outcome} (cell {cell})\n"
        f"# detail: {outcome.detail}\n"
        f"# params: {json.dumps(params_to_dict(outcome.params), sort_keys=True)}\n"
        f"{command}\n"
    )
    path.chmod(0o755)
    return path


def _cmd_run(args) -> int:
    from repro.fuzz import FIND_OUTCOMES, FuzzUsageError, fuzz_stats
    from repro.fuzz.faults import fault_plan, installed, suspended
    from repro.fuzz.oracle import DEFAULT_MATRIX, Oracle
    from repro.fuzz.shrink import shrink_outcome

    if args.seeds < 1:
        raise FuzzUsageError(f"--seeds must be >= 1, got {args.seeds}")
    if args.budget < 1:
        raise FuzzUsageError(f"--budget must be >= 1 second, got {args.budget}")
    if args.scale < 1:
        raise FuzzUsageError(f"--scale must be >= 1, got {args.scale}")
    matrix_names = (tuple(cell for cell in args.matrix.split(",") if cell)
                    if args.matrix else DEFAULT_MATRIX)
    fault_mode = args.faults > 0

    started = time.monotonic()
    rows = []
    finds = []
    ran = 0
    plan = fault_plan(args.faults, args.fault_seed) if fault_mode else None
    artifacts = Path(args.artifacts) if args.artifacts else _default_artifacts()

    with Oracle(matrix_names, store_root=args.store,
                case_timeout=args.case_timeout,
                fault_mode=fault_mode) as oracle:
        import contextlib

        with (installed(plan) if plan is not None else contextlib.nullcontext()):
            for seed in range(args.seed_base, args.seed_base + args.seeds):
                if time.monotonic() - started > args.budget:
                    break
                outcome = oracle.run_seed(seed, events=args.events,
                                          scale=args.scale)
                ran += 1
                rows.append({
                    "seed": seed,
                    "outcome": outcome.outcome,
                    "detail": outcome.detail,
                    "elapsed_s": round(outcome.elapsed, 3),
                })
                if outcome.outcome in FIND_OUTCOMES:
                    find = {"seed": seed, "outcome": outcome.outcome,
                            "detail": outcome.detail}
                    script = _write_repro_script(
                        artifacts, outcome, oracle.matrix, args.faults,
                        args.fault_seed, args.scale,
                    )
                    find["repro_script"] = str(script)
                    if not args.no_shrink:
                        try:
                            with suspended():
                                shrunk = shrink_outcome(
                                    outcome, matrix=matrix_names,
                                    case_timeout=args.case_timeout,
                                )
                            shrunk_path = artifacts / (
                                f"fuzz_shrunk_{script.stem.split('_')[-1]}.ir"
                            )
                            shrunk_path.write_text(shrunk.module_text)
                            find["shrunk_ir"] = str(shrunk_path)
                            find["shrunk_instructions"] = shrunk.final_instructions
                        except Exception as exc:  # shrink is best-effort
                            find["shrink_error"] = f"{type(exc).__name__}: {exc}"
                    finds.append(find)

    wall = time.monotonic() - started
    outcomes = {}
    for row in rows:
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    summary = {
        "seeds_requested": args.seeds,
        "seed_base": args.seed_base,
        "cases_run": ran,
        "budget_s": args.budget,
        "wall_s": round(wall, 2),
        "cases_per_s": round(ran / wall, 3) if wall > 0 else 0.0,
        "matrix": [cell for cell in matrix_names],
        "outcomes": outcomes,
        "faults": ({"rate": args.faults, "fault_seed": args.fault_seed,
                    "fires": dict(plan.fires)} if plan is not None else None),
        "finds": finds,
        "stats": fuzz_stats(),
    }
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    if args.as_json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"fuzz run: {ran}/{args.seeds} cases in {wall:.1f}s "
              f"({summary['cases_per_s']}/s) across {len(matrix_names)} cells")
        for name in sorted(outcomes):
            print(f"  {name}: {outcomes[name]}")
        for find in finds:
            print(f"  FIND seed={find['seed']} {find['outcome']}: "
                  f"{find['detail']}")
            print(f"    repro: sh {find['repro_script']}")
    return 1 if finds else 0


def _cmd_shrink(args) -> int:
    from repro.fuzz.gen import sample_params
    from repro.fuzz.oracle import DEFAULT_MATRIX
    from repro.fuzz.shrink import shrink_case

    matrix_names = (tuple(cell for cell in args.matrix.split(",") if cell)
                    if args.matrix else DEFAULT_MATRIX)
    result = shrink_case(
        sample_params(args.seed, events=args.events),
        args.cell,
        args.outcome,
        matrix=matrix_names,
        case_timeout=args.case_timeout,
    )
    payload = {
        "seed": args.seed,
        "cell": result.cell,
        "outcome": result.outcome,
        "original_instructions": result.original_instructions,
        "final_instructions": result.final_instructions,
        "candidates_tried": result.candidates_tried,
        "module": result.module_text,
    }
    if args.out:
        Path(args.out).write_text(result.module_text)
        payload["out"] = args.out
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"shrunk seed {args.seed} ({result.outcome} in {result.cell}): "
              f"{result.original_instructions} -> {result.final_instructions} "
              f"instructions over {result.candidates_tried} candidates")
        print(result.module_text)
    return 0


def _cmd_corpus(args) -> int:
    from repro.fuzz.corpus import (
        default_corpus_dir,
        iter_entries,
        make_entry,
        replay_corpus,
        save_entry,
    )

    corpus_dir = Path(args.dir) if args.dir else default_corpus_dir()
    if args.corpus_command == "list":
        for path, entry in iter_entries(corpus_dir):
            print(f"{path.name}  expected={entry['expected']}  "
                  f"{entry.get('note', '')}")
        return 0
    if args.corpus_command == "replay":
        rows = replay_corpus(corpus_dir, case_timeout=args.case_timeout)
        failed = [row for row in rows if not row["ok"]]
        if args.as_json:
            print(json.dumps({"entries": rows,
                              "failed": len(failed)}, indent=2))
        else:
            for row in rows:
                status = "ok" if row["ok"] else "FAIL"
                print(f"{status}  {row['entry']}  expected={row['expected']} "
                      f"got={row['outcome']}  {row['note']}")
            print(f"corpus replay: {len(rows) - len(failed)}/{len(rows)} green")
        return 1 if failed else 0
    # add
    from repro.fuzz.gen import sample_params

    params = sample_params(args.seed, events=args.events)
    entry = make_entry(params, note=args.note, expected=args.expected)
    path = save_entry(entry, corpus_dir)
    print(f"saved {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Adversarial workload firehose: generate, compare, shrink.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="seeded differential sweep")
    run.add_argument("--seeds", type=int, default=25,
                     help="number of sampled cases")
    run.add_argument("--seed-base", type=int, default=0)
    run.add_argument("--budget", type=float, default=300.0,
                     help="wall-clock budget in seconds")
    run.add_argument("--events", type=int, default=None,
                     help="override the sampled per-case event target")
    run.add_argument("--scale", type=int, default=1)
    run.add_argument("--matrix", default="",
                     help="comma-separated backend/elide/partition/path cells")
    run.add_argument("--faults", type=float, default=0.0,
                     help="fault-injection rate (0 disables)")
    run.add_argument("--fault-seed", type=int, default=1337)
    run.add_argument("--case-timeout", type=float, default=60.0)
    run.add_argument("--store", default=None,
                     help="trace store root (default: fresh temp dir)")
    run.add_argument("--artifacts", default=None,
                     help="failure artifact dir (default benchmarks/artifacts)")
    run.add_argument("--out", default=None, help="write summary JSON here")
    run.add_argument("--json", action="store_true", dest="as_json")
    run.add_argument("--no-shrink", action="store_true")

    shrink = sub.add_parser("shrink", help="delta-debug one failing seed")
    shrink.add_argument("--seed", type=int, required=True)
    shrink.add_argument("--cell", required=True,
                        help="failing matrix cell (or * for divergences)")
    shrink.add_argument("--outcome", default="DIVERGENCE",
                        choices=("DIVERGENCE", "CRASH", "TIMEOUT"))
    shrink.add_argument("--events", type=int, default=None)
    shrink.add_argument("--matrix", default="")
    shrink.add_argument("--case-timeout", type=float, default=60.0)
    shrink.add_argument("--out", default=None, help="write shrunk IR here")
    shrink.add_argument("--json", action="store_true", dest="as_json")

    corpus = sub.add_parser("corpus", help="regression corpus maintenance")
    corpus.add_argument("corpus_command", choices=("list", "replay", "add"))
    corpus.add_argument("--dir", default=None)
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument("--events", type=int, default=None)
    corpus.add_argument("--note", default="")
    corpus.add_argument("--expected", default="MATCH")
    corpus.add_argument("--case-timeout", type=float, default=120.0)
    corpus.add_argument("--json", action="store_true", dest="as_json")

    args = parser.parse_args(argv)

    from repro.fuzz import FuzzError, FuzzUsageError

    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "shrink":
            return _cmd_shrink(args)
        return _cmd_corpus(args)
    except FuzzUsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except FuzzError as exc:
        print(str(exc), file=sys.stderr)
        return 1


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
