"""Differential oracle: one generated workload, many execution paths.

A *matrix cell* names one way to execute an analysis over a workload,
written ``backend/elide/partition/path``:

* backend — ``reference`` | ``compiled`` | ``bytecode``;
* elide — ``off`` | ``intra`` | ``inter`` (staticpass elision tier);
* partition — ``mono`` | ``p1`` | ``p2`` | ``p4`` (replay shards);
* path — ``inline`` (fresh VM in-process) | ``serve`` (through the
  analysis daemon).

Structural constraints (enforced by :func:`parse_cell`): partitioned
cells replay the stored trace (``compiled/off/pN/inline``); serve cells
go through the daemon (``compiled/off/mono/serve``); elision tiers are
an inline-VM feature.  The paper's claim under test: every cell observes
the same events, so **reports are bit-identical everywhere**, cycle and
metadata observables are bit-identical within the elision-off group, and
handler calls fall monotonically off ≥ intra ≥ inter.

Each case is classified as:

* ``MATCH`` — every cell completed and all observables agree;
* ``DIVERGENCE`` — cells completed but reports / trace bytes /
  backtraces / cost observables differ (a real equivalence bug);
* ``CRASH`` — a cell raised an exception that no installed fault plan
  explains;
* ``TIMEOUT`` — the per-case wall-clock cap elapsed (typed
  :class:`repro.fuzz.FuzzTimeout`; checked between cells — the VM is
  pure Python, so the cap is a classification, not a preemption);
* ``TYPED_FAULT`` — only under an installed :mod:`repro.faultline`
  plan: a cell failed with a *typed* error from the resilience
  contract.  An **untyped** error under faults is still ``CRASH``, and
  completed-but-different is still ``DIVERGENCE`` — that is exactly the
  correct-or-typed-never-wrong invariant.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fuzz import (
    OUTCOME_CRASH,
    OUTCOME_DIVERGENCE,
    OUTCOME_MATCH,
    OUTCOME_TIMEOUT,
    OUTCOME_TYPED_FAULT,
    FuzzTimeout,
    FuzzUsageError,
    bump,
)
from repro.fuzz.gen import GenParams, sample_params, synthetic_workload

BACKENDS = ("reference", "compiled", "bytecode")
ELIDE_TIERS = ("off", "intra", "inter")
PARTITIONS = ("mono", "p1", "p2", "p4")
PATHS = ("inline", "serve")

#: The standard 9-cell matrix: one baseline, every backend, every elision
#: tier, two shard counts, and the serve path.
DEFAULT_MATRIX = (
    "reference/off/mono/inline",
    "compiled/off/mono/inline",
    "bytecode/off/mono/inline",
    "compiled/intra/mono/inline",
    "compiled/inter/mono/inline",
    "bytecode/inter/mono/inline",
    "compiled/off/p2/inline",
    "compiled/off/p4/inline",
    "compiled/off/mono/serve",
)

#: Error families the resilience contract is allowed to surface under an
#: installed fault plan (import-light: resolved lazily by name).
_TYPED_FAULT_FAMILIES = (
    ("repro.serve.client", "ServeError"),
    ("repro.partition.merge", "PartitionError"),
    ("repro.trace.store", "StoreCorruptionError"),
    ("repro.trace.format", "TraceFormatError"),
    ("repro.exec.workers", "WorkerCrashError"),
)


def typed_fault_types() -> Tuple[type, ...]:
    """The exception types that count as *typed* under fault injection."""
    import importlib

    types: List[type] = [FuzzTimeout]
    for module_name, class_name in _TYPED_FAULT_FAMILIES:
        module = importlib.import_module(module_name)
        types.append(getattr(module, class_name))
    return tuple(types)


@dataclass(frozen=True)
class Cell:
    """One parsed matrix cell."""

    backend: str
    elide: str
    partition: str
    path: str

    @property
    def name(self) -> str:
        return f"{self.backend}/{self.elide}/{self.partition}/{self.path}"

    @property
    def shards(self) -> int:
        return 1 if self.partition in ("mono", "p1") else int(self.partition[1:])


def parse_cell(text: str) -> Cell:
    """Parse and structurally validate one ``backend/elide/partition/path``."""
    parts = text.strip().split("/")
    if len(parts) != 4:
        raise FuzzUsageError(
            f"bad matrix cell {text!r}: expected backend/elide/partition/path"
        )
    backend, elide, partition, path = parts
    if backend not in BACKENDS:
        raise FuzzUsageError(f"unknown backend {backend!r} in cell {text!r}")
    if elide not in ELIDE_TIERS:
        raise FuzzUsageError(f"unknown elide tier {elide!r} in cell {text!r}")
    if partition not in PARTITIONS:
        raise FuzzUsageError(f"unknown partition {partition!r} in cell {text!r}")
    if path not in PATHS:
        raise FuzzUsageError(f"unknown path {path!r} in cell {text!r}")
    cell = Cell(backend, elide, partition, path)
    if cell.path == "serve" and (cell.elide != "off" or cell.partition != "mono"
                                 or cell.backend != "compiled"):
        raise FuzzUsageError(
            f"cell {text!r}: serve path requires compiled/off/mono"
        )
    if cell.partition not in ("mono",) and (cell.elide != "off"
                                            or cell.backend != "compiled"
                                            or cell.path != "inline"):
        raise FuzzUsageError(
            f"cell {text!r}: partitioned replay requires compiled/off/pN/inline"
        )
    return cell


def parse_matrix(cells: Sequence[str]) -> Tuple[Cell, ...]:
    if not cells:
        raise FuzzUsageError("matrix must name at least one cell")
    parsed = tuple(parse_cell(cell) for cell in cells)
    seen = set()
    for cell in parsed:
        if cell.name in seen:
            raise FuzzUsageError(f"duplicate matrix cell {cell.name!r}")
        seen.add(cell.name)
    return parsed


@dataclass
class Observation:
    """What one completed cell observed."""

    reports: Optional[Tuple[str, ...]]  # None when the path hides text (serve)
    n_reports: int
    cycles: int
    metadata_bytes: int
    handler_calls: Optional[int]  # None on replay paths (handlers re-fire)
    trace_digest: str = ""


@dataclass
class CellResult:
    cell: str
    status: str  # "ok" | "error"
    observation: Optional[Observation] = None
    error_type: str = ""
    error: str = ""


@dataclass
class CaseOutcome:
    """Classification of one generated workload across the matrix."""

    params: GenParams
    outcome: str
    detail: str = ""
    cells: List[CellResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def is_find(self) -> bool:
        return self.outcome in (OUTCOME_DIVERGENCE, OUTCOME_CRASH)


class Oracle:
    """Runs generated workloads through a matrix; owns shared state.

    One instance holds one trace store (shared across cases so the
    compiled recording is reused by partition/serve cells) and, lazily,
    one embedded serve daemon.  Use as a context manager or call
    :meth:`close`.
    """

    def __init__(self, matrix: Sequence[str] = DEFAULT_MATRIX, *,
                 store_root: Optional[str] = None,
                 case_timeout: float = 60.0,
                 fault_mode: bool = False) -> None:
        self.matrix = parse_matrix(tuple(matrix))
        if case_timeout <= 0:
            raise FuzzUsageError(f"case timeout must be > 0, got {case_timeout}")
        self.case_timeout = case_timeout
        self.fault_mode = fault_mode
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if store_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="fuzz-store-")
            store_root = self._tmp.name
        self.store_root = Path(store_root)
        self._store = None
        self._server = None
        self._client = None

    # -- shared infrastructure ----------------------------------------
    @property
    def store(self):
        if self._store is None:
            from repro.trace.store import TraceStore

            self._store = TraceStore(self.store_root)
        return self._store

    def _serve_client(self):
        if self._client is None:
            from repro.serve.client import ServeClient
            from repro.serve.config import ResilienceConfig
            from repro.serve.server import ServeConfig, serve_in_thread

            self._server = serve_in_thread(ServeConfig(
                workers=0,  # degraded inline mode: cheap and deterministic
                store_root=str(self.store_root / "serve"),
            ))
            resilience = ResilienceConfig() if self.fault_mode else None
            self._client = ServeClient(
                ("127.0.0.1", self._server.port),
                resilience=resilience,
                retry_seed=7,
            )
        return self._client

    def close(self) -> None:
        if self._server is not None:
            self._server.stop()
            self._server = None
        self._client = None
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "Oracle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cell execution -----------------------------------------------
    def _run_inline(self, workload, params: GenParams, cell: Cell,
                    scale: int) -> Observation:
        import dataclasses as dc

        from repro.exec.pool import build_analysis
        from repro.staticpass import analyze_elision, policy_for
        from repro.vm.interpreter import Interpreter

        analysis = build_analysis(params.spec)
        module = workload.make_module(scale)
        vm = Interpreter(
            module,
            extern=workload.make_extern(),
            input_lines=list(workload.input_lines),
            track_shadow=analysis.needs_shadow,
            backend=cell.backend,
        )
        analysis.attach(vm, elide=cell.elide != "off")
        if cell.elide == "intra":
            intra = analyze_elision(
                module, dc.replace(policy_for(analysis), interproc=False)
            )
            vm.register_elision(intra.mask)
        profile = vm.run()
        reports = tuple(str(report) for report in vm.reporter)
        return Observation(
            reports=reports,
            n_reports=len(reports),
            cycles=profile.cycles,
            metadata_bytes=profile.metadata_bytes,
            handler_calls=profile.handler_calls,
            trace_digest=self._record_digest(workload, cell.backend, scale),
        )

    def _record_digest(self, workload, backend: str, scale: int) -> str:
        """Record the workload's trace with ``backend``; payload digest.

        The compiled recording goes through (and stays in) the shared
        store; other backends record into memory.  Identical digests
        across backends is the trace-bytes leg of the oracle.
        """
        if backend == "compiled":
            reader = self.store.get_or_record(workload, scale)
            return reader.meta["digest"]
        import io

        from repro.trace.recorder import record_workload

        buffer = io.BytesIO()
        meta = record_workload(workload, scale, buffer, backend=backend)
        return meta["digest"]

    def _run_partitioned(self, workload, params: GenParams, cell: Cell,
                         scale: int) -> Observation:
        from repro.partition.runner import replay_partitioned

        reader = self.store.get_or_record(workload, scale)
        trace_path = self.store.trace_path(workload, scale)
        profile, reporter, _stats = replay_partitioned(
            self.store, trace_path, [params.spec], cell.shards, pool=None,
        )
        reports = tuple(str(report) for report in reporter)
        return Observation(
            reports=reports,
            n_reports=len(reports),
            cycles=profile.cycles,
            metadata_bytes=profile.metadata_bytes,
            handler_calls=None,
            trace_digest=reader.meta["digest"],
        )

    def _run_serve(self, workload, params: GenParams, cell: Cell,
                   scale: int) -> Observation:
        reader = self.store.get_or_record(workload, scale)
        digest = reader.meta["digest"]
        trace_bytes = self.store.trace_path(workload, scale).read_bytes()
        client = self._serve_client()
        response = client.submit_digest_first(params.spec, digest, trace_bytes)
        record = response["result"]
        return Observation(
            reports=None,  # serve results carry counts, not report text
            n_reports=record["n_reports"],
            cycles=record["instrumented_cycles"],
            metadata_bytes=record["metadata_bytes"],
            handler_calls=None,
            trace_digest=digest,
        )

    def _run_cell(self, workload, params: GenParams, cell: Cell,
                  scale: int) -> Observation:
        if cell.path == "serve":
            return self._run_serve(workload, params, cell, scale)
        if cell.shards > 1:
            return self._run_partitioned(workload, params, cell, scale)
        return self._run_inline(workload, params, cell, scale)

    # -- case execution -----------------------------------------------
    def run_case(self, params: GenParams, scale: int = 1,
                 workload=None) -> CaseOutcome:
        """Run one generated workload through every matrix cell.

        ``workload`` overrides the generated module — the shrinker uses
        this to classify candidate reductions under the same params.
        """
        started = time.monotonic()
        bump("cases")
        if workload is None:
            workload = synthetic_workload(params)
        typed = typed_fault_types() if self.fault_mode else (FuzzTimeout,)
        results: List[CellResult] = []
        outcome = None
        detail = ""

        for cell in self.matrix:
            elapsed = time.monotonic() - started
            if elapsed > self.case_timeout:
                timeout = FuzzTimeout(elapsed, self.case_timeout, cell.name)
                results.append(CellResult(
                    cell=cell.name, status="error",
                    error_type=type(timeout).__name__, error=str(timeout),
                ))
                outcome, detail = OUTCOME_TIMEOUT, str(timeout)
                break
            try:
                observation = self._run_cell(workload, params, cell, scale)
            except Exception as exc:  # noqa: BLE001 - classification boundary
                results.append(CellResult(
                    cell=cell.name, status="error",
                    error_type=type(exc).__name__, error=str(exc),
                ))
                if isinstance(exc, FuzzTimeout):
                    outcome, detail = OUTCOME_TIMEOUT, str(exc)
                elif self.fault_mode and isinstance(exc, typed):
                    outcome = OUTCOME_TYPED_FAULT
                    detail = f"{cell.name}: {type(exc).__name__}: {exc}"
                else:
                    outcome = OUTCOME_CRASH
                    detail = f"{cell.name}: {type(exc).__name__}: {exc}"
                break
            results.append(CellResult(
                cell=cell.name, status="ok", observation=observation,
            ))

        if outcome is None:
            mismatch = compare_observations(
                [(r.cell, r.observation) for r in results]
            )
            if mismatch:
                outcome, detail = OUTCOME_DIVERGENCE, mismatch
            else:
                outcome = OUTCOME_MATCH

        bump({
            OUTCOME_MATCH: "matches",
            OUTCOME_DIVERGENCE: "divergences",
            OUTCOME_CRASH: "crashes",
            OUTCOME_TIMEOUT: "timeouts",
            OUTCOME_TYPED_FAULT: "typed_faults",
        }[outcome])
        return CaseOutcome(
            params=params,
            outcome=outcome,
            detail=detail,
            cells=results,
            elapsed=time.monotonic() - started,
        )

    def run_seed(self, case_seed: int, *, events: Optional[int] = None,
                 scale: int = 1) -> CaseOutcome:
        return self.run_case(sample_params(case_seed, events=events), scale)


def compare_observations(
    cells: Sequence[Tuple[str, Optional[Observation]]],
) -> str:
    """Cross-cell equivalence check; returns a mismatch detail or ``""``.

    Checked invariants:

    * trace payload digests identical wherever recorded;
    * report text identical across every cell that exposes it, and
      ``n_reports`` identical everywhere (serve included);
    * ``cycles`` and ``metadata_bytes`` identical across the
      elision-off cells (inline, partitioned, and serve);
    * ``handler_calls`` monotone non-increasing off → intra → inter.
    """
    complete = [(name, obs) for name, obs in cells if obs is not None]
    if not complete:
        return ""
    base_name, base = complete[0]

    digests = {obs.trace_digest for _, obs in complete if obs.trace_digest}
    if len(digests) > 1:
        return f"trace bytes diverge across backends: {sorted(digests)}"

    for name, obs in complete[1:]:
        if obs.n_reports != base.n_reports:
            return (f"report count diverges: {base_name}={base.n_reports} "
                    f"vs {name}={obs.n_reports}")
        if obs.reports is not None and base.reports is not None \
                and obs.reports != base.reports:
            for left, right in zip(base.reports, obs.reports):
                if left != right:
                    return (f"reports diverge between {base_name} and {name}: "
                            f"{left!r} != {right!r}")
            return f"reports diverge between {base_name} and {name}"

    off_cells = [(name, obs) for name, obs in complete if "/off/" in name]
    if off_cells:
        off_name, off = off_cells[0]
        for name, obs in off_cells[1:]:
            if obs.cycles != off.cycles:
                return (f"cycles diverge in elision-off group: "
                        f"{off_name}={off.cycles} vs {name}={obs.cycles}")
            if obs.metadata_bytes != off.metadata_bytes:
                return (f"metadata bytes diverge in elision-off group: "
                        f"{off_name}={off.metadata_bytes} "
                        f"vs {name}={obs.metadata_bytes}")

    tiers: Dict[str, int] = {}
    for name, obs in complete:
        if obs.handler_calls is None:
            continue
        tier = name.split("/")[1]
        tiers[tier] = max(tiers.get(tier, 0), obs.handler_calls)
    ordered = [tiers[t] for t in ("off", "intra", "inter") if t in tiers]
    for higher, lower in zip(ordered, ordered[1:]):
        if lower > higher:
            return (f"handler calls not monotone across elision tiers: "
                    f"{tiers}")
    return ""


def default_params(case_seed: int, events: Optional[int] = None) -> GenParams:
    """Convenience used by CLIs/tests: the standard sampled vector."""
    params = sample_params(case_seed)
    if events is not None:
        params = replace(params, events=events)
    return params
