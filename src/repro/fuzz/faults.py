"""Fuzz-under-fault: the differential oracle composed with faultline.

With a seeded :class:`repro.faultline.FaultPlan` installed, the serve,
store, and partition layers the oracle exercises start failing on the
plan's schedule.  The resilience invariant under test is the same one
the chaos suite holds for the hand-written workloads — **correct or
typed, never wrong** — now over generated programs:

* a case may still ``MATCH`` (faults retried/absorbed by the resilience
  layer, or simply not scheduled on its path);
* a case may fail with a *typed* error (``TYPED_FAULT``) or blow its
  wall-clock cap (``TIMEOUT``);
* a case must never complete with *different* results (``DIVERGENCE``)
  or die with an untyped error (``CRASH``) — either is an invariant
  violation, a find like any other.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Sequence

from repro import faultline
from repro.faultline import FaultPlan, FaultSpec
from repro.fuzz import FIND_OUTCOMES, FuzzUsageError
from repro.fuzz.oracle import DEFAULT_MATRIX, Oracle

#: Fault points on the oracle's own execution paths (worker points are
#: excluded: the oracle's embedded server runs degraded inline mode,
#: which suppresses worker-process faults by design).
DEFAULT_FAULT_POINTS = (
    "serve.busy",
    "serve.conn.reset",
    "store.read.corrupt",
    "store.write.partial",
    "partition.shard.fail",
    "partition.merge.corrupt",
)


def fault_plan(rate: float, seed: int,
               points: Sequence[str] = DEFAULT_FAULT_POINTS) -> FaultPlan:
    """A seeded plan firing each point with probability ``rate``."""
    if not 0.0 < rate <= 1.0:
        raise FuzzUsageError(f"fault rate must be in (0, 1], got {rate}")
    return FaultPlan(seed, {point: FaultSpec(probability=rate)
                            for point in points})


@contextlib.contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    faultline.install(plan)
    try:
        yield plan
    finally:
        faultline.clear()


@contextlib.contextmanager
def suspended() -> Iterator[Optional[FaultPlan]]:
    """Uninstall the active fault plan for the duration; restore on exit.

    Shrinking inside a ``--faults`` sweep must classify its candidates
    fault-free: an installed plan would both mislabel injected faults as
    ``CRASH`` (the shrink oracle runs with ``fault_mode=False``) and let
    candidate runs consume the sweep's shared fault-RNG schedule,
    perturbing the fires of every later seed.
    """
    plan = faultline.active_plan()
    faultline.clear()
    try:
        yield plan
    finally:
        if plan is not None:
            faultline.install(plan)


def run_under_faults(
    seeds: Sequence[int],
    rate: float,
    fault_seed: int = 1337,
    *,
    matrix: Sequence[str] = DEFAULT_MATRIX,
    events: Optional[int] = None,
    case_timeout: float = 60.0,
    store_root: Optional[str] = None,
) -> dict:
    """Sweep ``seeds`` through the matrix under an installed fault plan.

    Returns a summary recording per-outcome counts, the fault-point
    fire counts, and ``invariant_held`` — False iff any case diverged
    or crashed (the never-wrong half of the contract).
    """
    plan = fault_plan(rate, fault_seed)
    outcomes = {}
    violations = []
    with Oracle(matrix, store_root=store_root, case_timeout=case_timeout,
                fault_mode=True) as oracle:
        with installed(plan):
            for seed in seeds:
                outcome = oracle.run_seed(seed, events=events)
                outcomes[outcome.outcome] = outcomes.get(outcome.outcome, 0) + 1
                if outcome.outcome in FIND_OUTCOMES:
                    violations.append({
                        "seed": seed,
                        "outcome": outcome.outcome,
                        "detail": outcome.detail,
                    })
    return {
        "rate": rate,
        "fault_seed": fault_seed,
        "cases": len(seeds),
        "outcomes": outcomes,
        "fault_fires": dict(plan.fires),
        "fault_checks": dict(plan.checks),
        "invariant_held": not violations,
        "violations": violations,
    }
