"""Persistent content-addressed regression corpus.

Every shrunk find becomes a permanent test: a JSON entry under
``tests/fuzz/corpus/`` named by the sha256 of its canonical content
(like :class:`repro.trace.store.TraceStore`, content addressing makes
entries tamper-evident and collision-free).  An entry carries the
parameter vector, optionally the shrunk IR text, the matrix cells to
replay, and the *expected* outcome — ``MATCH`` for a fixed find (the
regression test), or a non-MATCH class for an entry documenting a
still-open bug.

``replay_entry`` runs the entry back through the differential oracle;
``tests/fuzz/test_corpus_replay.py`` parametrizes over the directory so
the corpus replays as ordinary pytest cases, and
``python -m repro.fuzz corpus replay`` does the same from the CLI.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.fuzz import OUTCOMES, FuzzUsageError, bump
from repro.fuzz.gen import (
    GenParams,
    params_from_dict,
    params_to_dict,
    synthetic_workload,
)
from repro.fuzz.oracle import DEFAULT_MATRIX, CaseOutcome, Oracle, parse_matrix


def default_corpus_dir() -> Path:
    """``tests/fuzz/corpus`` resolved from the source checkout layout."""
    return Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"


def entry_digest(entry: dict) -> str:
    """Content digest over everything that defines the entry."""
    canon = json.dumps(
        {key: entry[key] for key in sorted(entry) if key != "digest"},
        sort_keys=True,
    )
    return hashlib.sha256(canon.encode()).hexdigest()


def make_entry(params: GenParams, *, ir: Optional[str] = None,
               cells: Sequence[str] = DEFAULT_MATRIX,
               expected: str = "MATCH", note: str = "") -> dict:
    parse_matrix(tuple(cells))
    if expected not in OUTCOMES:
        raise FuzzUsageError(
            f"unknown expected outcome {expected!r}; "
            f"expected one of {', '.join(OUTCOMES)}"
        )
    entry = {
        "params": params_to_dict(params),
        "ir": ir,
        "cells": list(cells),
        "expected": expected,
        "note": note,
    }
    entry["digest"] = entry_digest(entry)
    return entry


def save_entry(entry: dict, corpus_dir: Optional[Path] = None) -> Path:
    corpus_dir = Path(corpus_dir or default_corpus_dir())
    corpus_dir.mkdir(parents=True, exist_ok=True)
    expected = entry_digest(entry)
    if entry.get("digest") not in (None, expected):
        raise FuzzUsageError(
            f"corpus entry digest mismatch: {entry['digest'][:12]} != {expected[:12]}"
        )
    entry = dict(entry, digest=expected)
    path = corpus_dir / f"{expected[:16]}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def load_entry(path: Path) -> dict:
    try:
        entry = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FuzzUsageError(f"unreadable corpus entry {path}: {exc}") from None
    if entry_digest(entry) != entry.get("digest"):
        raise FuzzUsageError(f"corpus entry {Path(path).name} fails its digest")
    return entry


def iter_entries(corpus_dir: Optional[Path] = None) -> Iterator[Tuple[Path, dict]]:
    corpus_dir = Path(corpus_dir or default_corpus_dir())
    if not corpus_dir.is_dir():
        return
    for path in sorted(corpus_dir.glob("*.json")):
        yield path, load_entry(path)


def replay_entry(entry: dict, *, store_root: Optional[str] = None,
                 case_timeout: float = 120.0) -> CaseOutcome:
    """Run one corpus entry back through the oracle."""
    bump("corpus_replays")
    params = params_from_dict(entry["params"])
    workload = None
    if entry.get("ir"):
        from repro.fuzz.shrink import workload_from_text

        workload = workload_from_text(
            entry["ir"], params, name=f"fuzz-corpus-{entry['digest'][:8]}"
        )
    else:
        workload = synthetic_workload(params)
    with Oracle(tuple(entry["cells"]), store_root=store_root,
                case_timeout=case_timeout) as oracle:
        return oracle.run_case(params, workload=workload)


def replay_corpus(corpus_dir: Optional[Path] = None, *,
                  store_root: Optional[str] = None,
                  case_timeout: float = 120.0) -> List[dict]:
    """Replay every entry; returns one row per entry with pass/fail."""
    rows = []
    for path, entry in iter_entries(corpus_dir):
        outcome = replay_entry(entry, store_root=store_root,
                               case_timeout=case_timeout)
        rows.append({
            "entry": path.name,
            "digest": entry["digest"],
            "note": entry.get("note", ""),
            "expected": entry["expected"],
            "outcome": outcome.outcome,
            "detail": outcome.detail,
            "ok": outcome.outcome == entry["expected"],
        })
    return rows
