"""Adversarial workload firehose (``repro.fuzz``).

The paper's core guarantee — an ALDA analysis observes the same events
and produces the same findings however it is executed — is enforced in
this repro by differential tests over 25 hand-written workloads.  This
package turns that guarantee into a *property* checked over an open-ended
stream of generated programs:

* :mod:`repro.fuzz.gen` — a deterministic seeded generator producing
  valid mini-IR programs from a parameter vector (load/store density,
  malloc/free churn, aliasing depth, loop nesting, lock discipline,
  thread spawn/join patterns, call-graph shape), registrable as
  synthetic entries in the workload registry;
* :mod:`repro.fuzz.oracle` — a differential oracle running each
  generated workload through a configurable execution matrix
  (reference/compiled/bytecode × elision off/intra/interproc ×
  monolithic/partitioned × inline/serve) and classifying the outcome
  as ``MATCH``, ``DIVERGENCE``, ``CRASH``, ``TIMEOUT``, or — under an
  installed fault plan — ``TYPED_FAULT``;
* :mod:`repro.fuzz.shrink` — an auto-shrinker delta-debugging any
  non-``MATCH`` case down to a minimal IR module that still reproduces
  it, preserving the failing seed and matrix cell;
* :mod:`repro.fuzz.corpus` — a content-addressed regression corpus
  (``tests/fuzz/corpus/``) replayed as ordinary pytest cases, so every
  shrunk find becomes a permanent test;
* :mod:`repro.fuzz.faults` — fuzz-under-fault: the oracle composed
  with :mod:`repro.faultline` plans, holding the resilience invariant
  (correct or typed, never wrong) over generated workloads.

CLIs: ``python -m repro.fuzz run | shrink | corpus`` (see
``docs/FUZZ.md``).  In-process counters surface as the
``subsystems.fuzz`` tier of ``python -m repro.serve stats``.
"""

from __future__ import annotations

import threading

from repro.errors import ReproError


class FuzzError(ReproError):
    """Base class for fuzzing-layer failures."""


class FuzzUsageError(FuzzError):
    """Invalid parameter ranges or unknown matrix/fault names (CLI exit 2)."""


class FuzzTimeout(FuzzError):
    """A fuzz case exceeded its per-case wall-clock cap."""

    def __init__(self, elapsed: float, cap: float, cell: str = "") -> None:
        where = f" in cell {cell}" if cell else ""
        super().__init__(
            f"fuzz case exceeded its wall-clock cap{where} "
            f"({elapsed:.2f}s elapsed, cap {cap:.2f}s)"
        )
        self.elapsed = elapsed
        self.cap = cap
        self.cell = cell


#: Case classifications produced by the oracle.
OUTCOME_MATCH = "MATCH"
OUTCOME_DIVERGENCE = "DIVERGENCE"
OUTCOME_CRASH = "CRASH"
OUTCOME_TIMEOUT = "TIMEOUT"
OUTCOME_TYPED_FAULT = "TYPED_FAULT"

OUTCOMES = (
    OUTCOME_MATCH,
    OUTCOME_DIVERGENCE,
    OUTCOME_CRASH,
    OUTCOME_TIMEOUT,
    OUTCOME_TYPED_FAULT,
)

#: Outcomes that count as *finds* — the system misbehaved.
FIND_OUTCOMES = (OUTCOME_DIVERGENCE, OUTCOME_CRASH)

_lock = threading.Lock()
_counters = {
    "modules_generated": 0,
    "cases": 0,
    "matches": 0,
    "divergences": 0,
    "crashes": 0,
    "timeouts": 0,
    "typed_faults": 0,
    "shrink_runs": 0,
    "shrink_removed": 0,
    "corpus_replays": 0,
}


def bump(name: str, amount: int = 1) -> None:
    """Increment one fuzz counter (thread-safe)."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + amount


def fuzz_stats() -> dict:
    """Snapshot of the in-process fuzz counters (``subsystems.fuzz``)."""
    with _lock:
        return dict(_counters)


def reset_stats() -> None:
    """Zero every counter (tests)."""
    with _lock:
        for key in _counters:
            _counters[key] = 0


__all__ = [
    "FIND_OUTCOMES",
    "FuzzError",
    "FuzzTimeout",
    "FuzzUsageError",
    "OUTCOMES",
    "OUTCOME_CRASH",
    "OUTCOME_DIVERGENCE",
    "OUTCOME_MATCH",
    "OUTCOME_TIMEOUT",
    "OUTCOME_TYPED_FAULT",
    "bump",
    "fuzz_stats",
    "reset_stats",
]
