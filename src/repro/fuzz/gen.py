"""Deterministic seeded workload generator.

``generate(params, scale)`` turns a :class:`GenParams` vector into a valid
mini-IR module.  All randomness is drawn from ``random.Random(params.seed)``
at *generation* time, so the same params always produce byte-identical IR
text — across repeated calls, processes, and machines.  ``scale`` only
changes loop trip counts (the op mix is part of the seeded shape), which is
what lets one seed describe both a 2k-event smoke case and a million-event
stress trace.

The parameter vector covers the axes ISSUE/ROADMAP call out:

* ``load_density`` / ``store_density`` — shared-array access mix;
* ``malloc_churn`` — short-lived heap blocks (malloc/store/load/free);
* ``alias_depth`` — length of no-op pointer-copy chains feeding accesses;
* ``loop_nesting`` — 1..3 nested counted loops around the kernel;
* ``lock_discipline`` — ``none`` | ``consistent`` | ``inconsistent`` |
  ``per_iteration`` (a fresh heap mutex per kernel invocation — the
  lock-identity shape that broke the PR-9 lockset tier);
* ``escape_trick`` — park a stack buffer's address in a global via a
  data-dependent (statically TOP) store, then access it from the other
  thread — the escape-after-TOP-store shape of the second PR-9 hole;
* ``threads`` — 1, or 2 via ``spawn$worker``/``join``;
* ``call_shape`` — ``flat`` | ``deep`` (call chain) | ``recursive`` |
  ``scc`` (mutual recursion) | ``extern`` (opaque library call feeding an
  index).

``synthetic_workload(params)`` wraps the generator in an ordinary
:class:`repro.workloads.Workload` (suite ``"fuzz"``) so every downstream
subsystem — harness, trace store, partitioned replay, serve — takes it
with no special cases; ``registered()`` temporarily adds it to the global
workload registry.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import random
from dataclasses import asdict, dataclass, replace
from typing import Iterator, List, Optional, Tuple

from repro.fuzz import FuzzUsageError
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.text import print_module
from repro.ir.validate import validate_module
from repro.workloads import register_workload, unregister_workload
from repro.workloads.base import Workload

LOCK_DISCIPLINES = ("none", "consistent", "inconsistent", "per_iteration")
CALL_SHAPES = ("flat", "deep", "recursive", "scc", "extern")

#: Analysis specs the generator targets (all three carry elision policies,
#: so every oracle matrix cell is meaningful for them).
TARGET_SPECS = ("eraser.full", "fasttrack.alda", "uaf.alda")

#: Shared array size in 64-bit words (power of two: indices are masked).
WORDS = 64
_MASK = WORDS - 1


@dataclass(frozen=True)
class GenParams:
    """Seeded parameter vector describing one generated workload."""

    seed: int
    events: int = 3000
    load_density: float = 0.35
    store_density: float = 0.35
    malloc_churn: float = 0.1
    alias_depth: int = 1
    loop_nesting: int = 1
    lock_discipline: str = "consistent"
    threads: int = 1
    call_shape: str = "flat"
    escape_trick: bool = False
    spec: str = "eraser.full"


def validate_params(params: GenParams) -> None:
    """Raise :class:`FuzzUsageError` on out-of-range parameters."""
    if params.events < 1:
        raise FuzzUsageError(f"events must be >= 1, got {params.events}")
    for field in ("load_density", "store_density", "malloc_churn"):
        value = getattr(params, field)
        if not 0.0 <= value <= 1.0:
            raise FuzzUsageError(f"{field} must be in [0, 1], got {value}")
    if not 0 <= params.alias_depth <= 8:
        raise FuzzUsageError(f"alias_depth must be in [0, 8], got {params.alias_depth}")
    if not 1 <= params.loop_nesting <= 3:
        raise FuzzUsageError(f"loop_nesting must be in [1, 3], got {params.loop_nesting}")
    if params.lock_discipline not in LOCK_DISCIPLINES:
        raise FuzzUsageError(
            f"unknown lock_discipline {params.lock_discipline!r}; "
            f"expected one of {', '.join(LOCK_DISCIPLINES)}"
        )
    if params.threads not in (1, 2):
        raise FuzzUsageError(f"threads must be 1 or 2, got {params.threads}")
    if params.call_shape not in CALL_SHAPES:
        raise FuzzUsageError(
            f"unknown call_shape {params.call_shape!r}; "
            f"expected one of {', '.join(CALL_SHAPES)}"
        )
    if params.spec not in TARGET_SPECS:
        raise FuzzUsageError(
            f"unknown spec {params.spec!r}; "
            f"expected one of {', '.join(TARGET_SPECS)}"
        )


def params_to_dict(params: GenParams) -> dict:
    return asdict(params)


def params_from_dict(data: dict) -> GenParams:
    try:
        params = GenParams(**data)
    except TypeError as exc:
        raise FuzzUsageError(f"bad parameter vector: {exc}") from None
    validate_params(params)
    return params


def params_digest(params: GenParams) -> str:
    """Content digest of the parameter vector (stable across processes)."""
    canon = json.dumps(params_to_dict(params), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()


def sample_params(case_seed: int, *, events: Optional[int] = None) -> GenParams:
    """Derive a full parameter vector from one case seed.

    The distribution deliberately over-weights the adversarial corners:
    per-iteration lock identity, escape tricks, and two-thread sharing
    show up in a large fraction of samples.
    """
    rng = random.Random(case_seed * 0x9E3779B97F4A7C15 + 1)
    threads = 2 if rng.random() < 0.6 else 1
    discipline = rng.choice(
        ("none", "consistent", "consistent", "inconsistent", "per_iteration", "per_iteration")
    )
    # The events draw is consumed even when an override is supplied:
    # otherwise ``--events`` shifts every subsequent draw and a repro
    # command embedding the sampled events regenerates a different vector.
    sampled_events = rng.randrange(800, 5000)
    return GenParams(
        seed=case_seed,
        events=events if events is not None else sampled_events,
        load_density=round(rng.uniform(0.15, 0.5), 3),
        store_density=round(rng.uniform(0.15, 0.5), 3),
        malloc_churn=round(rng.uniform(0.0, 0.3), 3),
        alias_depth=rng.randrange(0, 5),
        loop_nesting=rng.randrange(1, 4),
        lock_discipline=discipline,
        threads=threads,
        call_shape=rng.choice(CALL_SHAPES),
        escape_trick=threads == 2 and rng.random() < 0.4,
        spec=rng.choice(TARGET_SPECS),
    )


# ----------------------------------------------------------------------
# IR generation
# ----------------------------------------------------------------------

def _shared_addr(b: IRBuilder, arr, idx, c1: int, c2: int, alias_depth: int) -> str:
    """Masked address of a shared-array word, behind an alias-copy chain."""
    word = b.and_(b.add(b.mul(idx, c1), c2), _MASK)
    addr = b.add(arr, b.mul(word, 8))
    for _ in range(alias_depth):
        addr = b.add(addr, 0)  # pointer copy: exercises alias chains
    return addr


def _emit_leaf(b: IRBuilder, params: GenParams, ops: List[Tuple]) -> None:
    """The kernel leaf ``touch(arr, idx)``: the seeded shared-access mix."""
    b.function("touch", ["arr", "idx"])
    acc = b.and_("idx", _MASK)
    discipline = params.lock_discipline
    glk = b.global_addr("g_lock") if discipline in ("consistent", "inconsistent") else None
    hlk = b.call("malloc", [64]) if discipline == "per_iteration" else None

    def guard(locked: bool):
        lock = hlk if discipline == "per_iteration" else glk
        if discipline == "per_iteration":
            locked = True
        if locked and lock is not None:
            b.call("mutex_lock", [lock], void=True)
            return lock
        return None

    def unguard(lock) -> None:
        if lock is not None:
            b.call("mutex_unlock", [lock], void=True)

    for op in ops:
        kind = op[0]
        if kind == "load":
            _, c1, c2, locked = op
            addr = _shared_addr(b, "arr", "idx", c1, c2, params.alias_depth)
            lock = guard(locked)
            value = b.load(addr)
            unguard(lock)
            acc = b.xor(acc, value)
        elif kind == "store":
            _, c1, c2, locked = op
            addr = _shared_addr(b, "arr", "idx", c1, c2, params.alias_depth)
            lock = guard(locked)
            b.store(b.add(acc, c2), addr)
            unguard(lock)
        elif kind == "branch_store":
            _, c1, c2, locked = op
            cond = b.cmp("lt", b.and_(acc, 7), 4)
            with b.if_then(cond):
                addr = _shared_addr(b, "arr", "idx", c1, c2, params.alias_depth)
                lock = guard(locked)
                b.store(acc, addr)
                unguard(lock)
        elif kind == "churn":
            _, n_words = op
            block = b.call("malloc", [n_words * 8])
            b.store(acc, block)
            scratch = b.load(block)
            acc = b.xor(acc, scratch)
            b.call("free", [block], void=True)
        else:  # mix
            _, c = op
            acc = b.and_(b.add(b.mul(acc, 3), c), 0xFFFF)

    if hlk is not None:
        b.call("free", [hlk], void=True)
    b.ret(acc)


def _emit_call_shape(b: IRBuilder, shape: str) -> str:
    """Define the call-graph decoration and return the entry callee name."""
    if shape == "flat":
        return "touch"
    if shape == "deep":
        b.function("hop2", ["arr", "idx"])
        b.ret(b.call("touch", ["arr", "idx"]))
        b.function("hop1", ["arr", "idx"])
        b.ret(b.call("hop2", ["arr", b.add("idx", 1)]))
        return "hop1"
    if shape == "recursive":
        b.function("walk", ["arr", "idx", "d"])
        rec = b.block("rec")
        base = b.block("base")
        b.br(b.cmp("gt", "d", 0), rec, base)
        b.position_at(rec)
        here = b.call("touch", ["arr", "idx"])
        rest = b.call("walk", ["arr", b.add("idx", 1), b.sub("d", 1)])
        b.ret(b.xor(here, rest))
        b.position_at(base)
        b.ret(b.call("touch", ["arr", "idx"]))
        return "walk"
    if shape == "scc":
        for name, other in (("ping", "pong"), ("pong", "ping")):
            b.function(name, ["arr", "idx", "d"])
            rec = b.block("rec")
            base = b.block("base")
            b.br(b.cmp("gt", "d", 0), rec, base)
            b.position_at(rec)
            here = b.call("touch", ["arr", "idx"])
            rest = b.call(other, ["arr", b.add("idx", 1), b.sub("d", 1)])
            b.ret(b.xor(here, rest))
            b.position_at(base)
            b.ret(b.call("touch", ["arr", "idx"]))
        return "ping"
    return "touch"  # extern: indirection happens at the call site


def _emit_worker(b: IRBuilder, params: GenParams, inner_trips: List[int],
                 entry_callee: str) -> None:
    """``worker(arr, start, count)``: nested loops driving the kernel."""
    shape = params.call_shape
    b.function("worker", ["arr", "start", "count"])
    acc_slot = b.alloca(8)
    b.store(0, acc_slot)
    slot_addr = b.global_addr("g_slot") if params.escape_trick else None

    with contextlib.ExitStack() as stack:
        indices = [stack.enter_context(b.loop("count"))]
        for trips in inner_trips:
            indices.append(stack.enter_context(b.loop(trips)))
        idx = b.add("start", indices[0])
        for level, reg in enumerate(indices[1:], start=1):
            idx = b.add(idx, b.mul(reg, 2 * level + 1))

        if shape == "extern":
            mixed = b.call("ext_mix", [idx])
            idx = b.and_(mixed, _MASK)
            value = b.call("touch", ["arr", idx])
        elif shape in ("recursive", "scc"):
            value = b.call(entry_callee, ["arr", idx, 2])
        else:
            value = b.call(entry_callee, ["arr", idx])

        if slot_addr is not None:
            # Access main's stack buffer through the escaped pointer.
            stolen = b.load(slot_addr)
            cell = b.add(stolen, b.mul(b.and_(idx, _MASK), 8))
            b.store(b.xor(value, 1), cell)
            value = b.xor(value, b.load(cell))

        current = b.load(acc_slot)
        b.store(b.xor(current, value), acc_slot)

    total = b.global_addr("g_total")
    if params.lock_discipline != "none":
        glk = b.global_addr("g_lock")
        b.call("mutex_lock", [glk], void=True)
        b.store(b.add(b.load(total), b.load(acc_slot)), total)
        b.call("mutex_unlock", [glk], void=True)
    else:
        b.store(b.add(b.load(total), b.load(acc_slot)), total)
    b.ret(0)


def _trip_counts(params: GenParams, scale: int, rng: random.Random,
                 n_ops: int) -> Tuple[int, List[int]]:
    """Pick nested trip counts hitting roughly ``events * scale`` events."""
    inner_trips = [rng.randrange(2, 5) for _ in range(params.loop_nesting - 1)]
    inner_product = 1
    for trips in inner_trips:
        inner_product *= trips
    shape_mult = 3 if params.call_shape in ("recursive", "scc") else 1
    est_per_iter = 10 + shape_mult * (6 + 3 * n_ops + params.alias_depth)
    total_iters = max(2, (params.events * scale) // est_per_iter)
    outer = max(1, total_iters // (inner_product * params.threads))
    return outer, inner_trips


def generate(params: GenParams, scale: int = 1) -> Module:
    """Build the module for ``params`` — deterministic in (params, scale)."""
    validate_params(params)
    if scale < 1:
        raise FuzzUsageError(f"scale must be >= 1, got {scale}")
    rng = random.Random(params.seed ^ 0x5EED_F00D)

    # Seeded op mix for the kernel leaf (static: part of the program shape).
    n_ops = rng.randrange(3, 8)
    ops: List[Tuple] = []
    for _ in range(n_ops):
        roll = rng.random()
        locked = (
            params.lock_discipline == "consistent"
            or (params.lock_discipline == "inconsistent" and rng.random() < 0.5)
        )
        c1, c2 = rng.randrange(1, 8), rng.randrange(0, WORDS)
        if roll < params.load_density:
            ops.append(("load", c1, c2, locked))
        elif roll < params.load_density + params.store_density:
            kind = "branch_store" if rng.random() < 0.25 else "store"
            ops.append((kind, c1, c2, locked))
        elif roll < params.load_density + params.store_density + params.malloc_churn:
            ops.append(("churn", rng.randrange(2, 6)))
        else:
            ops.append(("mix", rng.randrange(1, 64)))
    if not any(op[0] in ("load", "store", "branch_store") for op in ops):
        ops.append(("store", 1, rng.randrange(0, WORDS), params.lock_discipline == "consistent"))

    outer, inner_trips = _trip_counts(params, scale, rng, n_ops)

    b = IRBuilder(Module(f"fuzz_s{params.seed}"))
    b.module.add_global("g_lock", 64)
    b.module.add_global("g_slot", 8)
    b.module.add_global("g_total", 8)

    _emit_leaf(b, params, ops)
    entry_callee = _emit_call_shape(b, params.call_shape)
    _emit_worker(b, params, inner_trips, entry_callee)

    b.function("main")
    arr = b.call("malloc", [WORDS * 8])
    with b.loop(WORDS) as i:
        b.store(b.add(b.mul(i, 7), 3), b.add(arr, b.mul(i, 8)))
    b.store(0, b.global_addr("g_total"))

    if params.escape_trick:
        # Stack buffer escapes through a data-dependent (statically TOP)
        # store into g_slot — after this, "stack-local" is a lie.
        stack_buf = b.alloca(WORDS * 8)
        with b.loop(WORDS) as i:
            b.store(i, b.add(stack_buf, b.mul(i, 8)))
        zero = b.and_(b.load(arr), 0)
        opaque_slot = b.add(b.global_addr("g_slot"), zero)
        b.store(stack_buf, opaque_slot)
    else:
        b.store(arr, b.global_addr("g_slot"))

    if params.threads == 2:
        half = max(1, outer // 2)
        child = b.call("spawn$worker", [arr, half, max(1, outer - half)])
        b.call("worker", [arr, 0, half], void=True)
        b.call("join", [child], void=True)
    else:
        b.call("worker", [arr, 0, outer], void=True)
    b.call("free", [arr], void=True)
    b.ret(0)

    unresolved = validate_module(b.module)
    allowed = {
        "malloc", "calloc", "free", "rand", "join",
        "mutex_lock", "mutex_unlock", "ext_mix",
        "spawn$worker", "global_addr$g_lock", "global_addr$g_slot",
        "global_addr$g_total",
    }
    unexpected = [name for name in unresolved if name not in allowed]
    if unexpected:  # pragma: no cover - generator bug guard
        raise FuzzUsageError(f"generator produced unresolved callees: {unexpected}")
    return b.module


# ----------------------------------------------------------------------
# Workload packaging
# ----------------------------------------------------------------------

def _ext_mix(vm, thread, args) -> int:
    """Deterministic opaque library call (the ``extern`` call shape)."""
    vm.profile.base_cycles += 25
    value = args[0] if args else 0
    return ((value * 2654435761) ^ (value >> 13)) & 0xFFFFFFFF


def _fuzz_externs():
    return {"ext_mix": _ext_mix}


def module_text_digest(module: Module) -> str:
    """sha256 of the printed IR text — the generator's determinism witness."""
    return hashlib.sha256(print_module(module).encode()).hexdigest()


def synthetic_workload(params: GenParams) -> Workload:
    """Wrap ``params`` as a registry-shaped :class:`Workload`."""
    validate_params(params)
    digest8 = module_text_digest(generate(params, 1))[:8]
    return Workload(
        name=f"fuzz-s{params.seed}-{digest8}",
        suite="fuzz",
        build=lambda scale=1: generate(params, scale),
        threads=params.threads,
        extern_factory=_fuzz_externs if params.call_shape == "extern" else None,
        notes=f"generated: params {params_digest(params)[:12]} spec {params.spec}",
    )


@contextlib.contextmanager
def registered(params: GenParams) -> Iterator[Workload]:
    """Temporarily register the synthetic workload in the global registry."""
    workload = synthetic_workload(params)
    register_workload(workload)
    try:
        yield workload
    finally:
        unregister_workload(workload.name)


def scaled(params: GenParams, events: int) -> GenParams:
    """Same shape, different size — ``events`` replaces the size knob."""
    if events < 1:
        raise FuzzUsageError(f"events must be >= 1, got {events}")
    return replace(params, events=events)


# ----------------------------------------------------------------------
# Worker-pool task (cross-process determinism witness)
# ----------------------------------------------------------------------

def digest_task(params_dict: dict) -> dict:
    """Regenerate from a params dict and return content digests.

    Runs inside :class:`repro.exec.workers.PersistentWorkerPool` workers:
    identical digests across processes prove the generator is seeded by
    the vector alone, not process state.
    """
    from repro.trace.recorder import record_workload

    params = params_from_dict(params_dict)
    module = generate(params)
    workload = synthetic_workload(params)
    buffer = io.BytesIO()
    meta = record_workload(workload, 1, buffer)
    return {
        "module_sha": module_text_digest(module),
        "trace_sha": hashlib.sha256(buffer.getvalue()).hexdigest(),
        "payload_digest": meta.get("digest", ""),
        "workload": workload.name,
    }
